#!/usr/bin/env python3
"""Online adaptation to a drifting workload (the Figure 4 scenario).

The arrival rates are not constant in production: this example drives a
*query-inclined* pattern (query rate ramps 10 -> 30 per second while
updates hold at 5) through three deployments of Agenda:

* the static paper-default configuration,
* Quota configured once for the *initial* rates (stale after the ramp),
* Quota with online rate monitoring, re-optimizing every virtual second
  — the full adaptive loop, including the reconfiguration cost charged
  to the server clock.

It prints the response time per 10-second tranche so the divergence as
the workload drifts is visible, mirroring the paper's Figure 4 series.

Run:  python examples/adaptive_reconfiguration.py
"""

import numpy as np

from repro.core import QuotaController, QuotaSystem, calibrated_cost_model
from repro.evaluation import format_series
from repro.graph import barabasi_albert_graph
from repro.ppr import Agenda, PPRParams
from repro.queueing import dynamic_pattern_segments, generate_segmented_workload
from repro.queueing.workload import QUERY

TOTAL_TIME = 40.0
TRANCHE = 10.0


def tranche_response_times(result, total_time, tranche):
    """Mean query response time per [k*tranche, (k+1)*tranche) window."""
    buckets = int(np.ceil(total_time / tranche))
    sums = np.zeros(buckets)
    counts = np.zeros(buckets)
    for completed in result.completed:
        if completed.kind != QUERY:
            continue
        bucket = min(int(completed.arrival // tranche), buckets - 1)
        sums[bucket] += completed.response_time
        counts[bucket] += 1
    return [
        float(sums[i] / counts[i]) if counts[i] else 0.0
        for i in range(buckets)
    ]


def main(seed: int = 0) -> None:
    graph = barabasi_albert_graph(500, attach=3, seed=seed + 13)
    params = PPRParams(alpha=0.2, epsilon=0.5, walk_cap=2000)

    segments = dynamic_pattern_segments(
        "query-inclined", TOTAL_TIME, rng=seed,
        q_range=(10.0, 30.0), u_fixed=5.0,
    )
    workload = generate_segmented_workload(graph, segments, rng=seed + 1)
    print(
        f"query-inclined pattern: lambda_q ramps 10 -> 30 over "
        f"{TOTAL_TIME:.0f}s ({workload.num_queries} queries, "
        f"{workload.num_updates} updates)"
    )

    series: dict[str, list[float]] = {}

    # 1. static default
    default_alg = Agenda(graph.copy(), params)
    default_alg.seed(seed)
    result = QuotaSystem(default_alg).process(workload)
    series["Agenda default"] = [
        v * 1e3 for v in tranche_response_times(result, TOTAL_TIME, TRANCHE)
    ]

    # 2. Quota configured once for the initial rates
    stale_alg = Agenda(graph.copy(), params)
    stale_alg.seed(seed)
    stale_controller = QuotaController(
        calibrated_cost_model(stale_alg, rng=seed + 2),
        extra_starts=[stale_alg.get_hyperparameters()],
    )
    stale_system = QuotaSystem(stale_alg, stale_controller)
    stale_system.configure_static(10.0, 5.0)
    result = stale_system.process(workload)
    series["Quota (stale one-shot)"] = [
        v * 1e3 for v in tranche_response_times(result, TOTAL_TIME, TRANCHE)
    ]

    # 3. Quota with online monitoring + periodic re-optimization
    live_alg = Agenda(graph.copy(), params)
    live_alg.seed(seed)
    live_controller = QuotaController(
        calibrated_cost_model(live_alg, rng=seed + 2),
        extra_starts=[live_alg.get_hyperparameters()],
    )
    live_system = QuotaSystem(
        live_alg, live_controller, reoptimize_every=1.0, rate_window=5.0
    )
    result = live_system.process(workload)
    series["Quota (online, 1s)"] = [
        v * 1e3 for v in tranche_response_times(result, TOTAL_TIME, TRANCHE)
    ]
    print(
        f"\nonline Quota re-optimized {len(live_system.decisions)} times; "
        f"last beta = {{"
        + ", ".join(
            f"{k}: {v:.2e}" for k, v in live_system.decisions[-1].beta.items()
        )
        + "}"
    )

    windows = [f"{int(i * TRANCHE)}-{int((i + 1) * TRANCHE)}s"
               for i in range(int(TOTAL_TIME / TRANCHE))]
    print()
    print(
        format_series(
            "window",
            windows,
            series,
            title="mean query response time (ms) per tranche",
            float_format="{:.2f}",
        )
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="adaptive reconfiguration demo (seeded, reproducible)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed offsetting every RNG in the example "
        "(default 0 reproduces the documented output)",
    )
    main(seed=parser.parse_args().seed)
