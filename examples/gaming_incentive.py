#!/usr/bin/env python3
"""Player win-back incentives (the paper's Tencent scenario).

A player-interaction network evolves as matches are played (edge
inserts) and friendships lapse (edge deletes).  Periodically, an
*active* player issues a top-k PPR query to rank their proximity to
*inactive* players; the closest inactive players receive an invite-back
message (the incentive strategy of [6]).

This example exercises the top-k path of the library: FORA-TopK served
through QuotaSystem, with the invite list extracted from each query via
the query callback, and a comparison of the default vs Quota-tuned
configuration under a match-heavy (update-heavy) workload.

Run:  python examples/gaming_incentive.py
"""

import numpy as np

from repro.core import QuotaController, QuotaSystem, calibrated_cost_model
from repro.evaluation import improvement_percent
from repro.graph import barabasi_albert_graph
from repro.ppr import ForaTopK, PPRParams
from repro.queueing import generate_workload

NUM_PLAYERS = 600
INACTIVE_FRACTION = 0.3
TOP_K = 5

QUERIES_PER_SECOND = 15.0
MATCHES_PER_SECOND = 30.0
WINDOW = 5.0


def main(seed: int = 0) -> None:
    rng = np.random.default_rng(seed + 21)
    graph = barabasi_albert_graph(NUM_PLAYERS, attach=4, seed=seed + 5)
    inactive = set(
        rng.choice(
            NUM_PLAYERS,
            size=int(NUM_PLAYERS * INACTIVE_FRACTION),
            replace=False,
        ).tolist()
    )
    print(
        f"player network: {graph.num_nodes} players, {graph.num_edges} "
        f"interactions; {len(inactive)} inactive players"
    )

    params = PPRParams(alpha=0.2, epsilon=0.5, walk_cap=2000)

    # --- one illustrative invite list ----------------------------------
    demo = ForaTopK(graph.copy(), params, k=50)
    demo.seed(seed)
    active_player = int(
        next(v for v in range(NUM_PLAYERS) if v not in inactive)
    )
    ranked = demo.query(active_player).top_k(100)
    invites = [
        (node, score) for node, score in ranked if node in inactive
    ][:TOP_K]
    print(f"\ninvite-back list for active player {active_player}:")
    for node, score in invites:
        print(f"  player {node:<4d} proximity={score:.4f}")

    # --- workload: proximity queries + match stream --------------------
    workload = generate_workload(
        graph, QUERIES_PER_SECOND, MATCHES_PER_SECOND, WINDOW, rng=seed + 3
    )
    print(
        f"\nserving {workload.num_queries} proximity queries and "
        f"{workload.num_updates} match updates over {WINDOW:.0f}s"
    )

    baseline = ForaTopK(graph.copy(), params, k=TOP_K)
    baseline.seed(seed + 1)
    base = QuotaSystem(baseline).process(workload)
    base_r = base.mean_query_response_time()
    print(f"FORA-TopK (default): {base_r * 1e3:8.2f} ms mean response")

    tuned = ForaTopK(graph.copy(), params, k=TOP_K)
    tuned.seed(seed + 1)
    controller = QuotaController(
        calibrated_cost_model(tuned, rng=seed + 4),
        extra_starts=[tuned.get_hyperparameters()],
    )
    system = QuotaSystem(tuned, controller)
    decision = system.configure_static(
        QUERIES_PER_SECOND, MATCHES_PER_SECOND
    )

    invite_counts: list[int] = []

    def collect_invites(request, estimate, pending):
        ranked = estimate.top_k(50)
        invite_counts.append(
            sum(1 for node, _ in ranked[:TOP_K * 3] if node in inactive)
        )

    quota = system.process(workload, query_callback=collect_invites)
    quota_r = quota.mean_query_response_time()
    print(
        f"Quota-FORA-TopK:     {quota_r * 1e3:8.2f} ms mean response "
        f"({improvement_percent(base_r, quota_r):+.1f}% vs default, "
        f"r_max {decision.beta['r_max']:.2e})"
    )
    print(
        f"average inactive players surfaced per query: "
        f"{np.mean(invite_counts):.1f}"
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="player win-back incentive demo (seeded, reproducible)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed offsetting every RNG in the example "
        "(default 0 reproduces the documented output)",
    )
    main(seed=parser.parse_args().seed)
