#!/usr/bin/env python3
"""Related-pin recommendation (the paper's Pinterest scenario).

Models a bipartite-ish user/pin preference graph.  Every page visit
fires an SSPPR query from the visited pin; the top-scoring other pins
become the "related pins" shown to the user.  Meanwhile users keep
pinning and unpinning, producing a continuous edge-update stream on the
same graph — the query/update mix of Figure 1.

The example builds the preference graph, serves a visit-heavy workload
with FORA+ (fast queries, index rebuilds on update), and shows:

* what a recommendation answer looks like,
* how update pressure inflates query response time at the default
  configuration, and how Quota reconfigures to absorb it,
* how Seed (epsilon_r > 0) lets visits overtake pending pin-updates
  for a further response-time cut.

Run:  python examples/related_pins.py
"""

import numpy as np

from repro.core import QuotaController, QuotaSystem, calibrated_cost_model
from repro.evaluation import improvement_percent
from repro.graph import DynamicGraph
from repro.ppr import ForaPlus, PPRParams
from repro.queueing import generate_workload

NUM_USERS = 300
NUM_PINS = 400
PINS_PER_USER = 8

VISITS_PER_SECOND = 25.0   # lambda_q
PINS_PER_SECOND = 50.0     # lambda_u (update-heavy, as at Pinterest)
WINDOW = 5.0


def build_preference_graph(rng: np.random.Generator) -> DynamicGraph:
    """Users 0..NUM_USERS-1, pins NUM_USERS..NUM_USERS+NUM_PINS-1.

    A pin action creates both directions (user saves pin, pin is saved
    by user), so random walks can hop user -> pin -> user -> pin and
    surface co-preference structure — exactly why PPR works here.
    """
    graph = DynamicGraph(num_nodes=NUM_USERS + NUM_PINS)
    # preferential pin popularity: earlier pins are more popular
    popularity = 1.0 / np.arange(1, NUM_PINS + 1)
    popularity /= popularity.sum()
    for user in range(NUM_USERS):
        pins = rng.choice(
            NUM_PINS, size=PINS_PER_USER, replace=False, p=popularity
        )
        for pin in pins:
            pin_node = NUM_USERS + int(pin)
            graph.add_edge(user, pin_node)
            graph.add_edge(pin_node, user)
    return graph


def show_recommendation(algorithm: ForaPlus, pin_node: int) -> None:
    estimate = algorithm.query(pin_node)
    related = [
        (node, score)
        for node, score in estimate.top_k(20)
        if node >= NUM_USERS and node != pin_node
    ][:5]
    print(f"  related pins for pin #{pin_node - NUM_USERS}:")
    for node, score in related:
        print(f"    pin #{node - NUM_USERS:<4d} ppr={score:.4f}")


def main(seed: int = 0) -> None:
    rng = np.random.default_rng(seed + 11)
    graph = build_preference_graph(rng)
    params = PPRParams(alpha=0.2, epsilon=0.5, walk_cap=2000)
    print(
        f"preference graph: {NUM_USERS} users + {NUM_PINS} pins, "
        f"{graph.num_edges} edges"
    )

    demo = ForaPlus(graph.copy(), params)
    demo.seed(seed)
    show_recommendation(demo, NUM_USERS + 3)

    workload = generate_workload(
        graph, VISITS_PER_SECOND, PINS_PER_SECOND, WINDOW, rng=seed + 2
    )
    print(
        f"\nserving {workload.num_queries} page visits and "
        f"{workload.num_updates} pin updates over {WINDOW:.0f}s "
        f"(lambda_u/lambda_q = {PINS_PER_SECOND / VISITS_PER_SECOND:.0f})"
    )

    # default FORA+ ------------------------------------------------------
    baseline = ForaPlus(graph.copy(), params)
    baseline.seed(seed + 1)
    base = QuotaSystem(baseline).process(workload)
    base_r = base.mean_query_response_time()
    print(f"FORA+ (default):        {base_r * 1e3:8.2f} ms mean response")

    # Quota-configured FORA+ ----------------------------------------------
    tuned = ForaPlus(graph.copy(), params)
    tuned.seed(seed + 1)
    controller = QuotaController(
        calibrated_cost_model(tuned, rng=seed + 3),
        extra_starts=[tuned.get_hyperparameters()],
    )
    system = QuotaSystem(tuned, controller)
    decision = system.configure_static(VISITS_PER_SECOND, PINS_PER_SECOND)
    quota = system.process(workload)
    quota_r = quota.mean_query_response_time()
    print(
        f"Quota-FORA+:            {quota_r * 1e3:8.2f} ms mean response "
        f"({improvement_percent(base_r, quota_r):+.1f}% vs default, "
        f"r_max {decision.beta['r_max']:.2e})"
    )

    # Quota + Seed ---------------------------------------------------------
    seeded = ForaPlus(graph.copy(), params)
    seeded.seed(seed + 1)
    controller2 = QuotaController(
        calibrated_cost_model(seeded, rng=seed + 3),
        extra_starts=[seeded.get_hyperparameters()],
    )
    system2 = QuotaSystem(seeded, controller2, epsilon_r=0.5)
    system2.configure_static(VISITS_PER_SECOND, PINS_PER_SECOND)
    star = system2.process(workload)
    star_r = star.mean_query_response_time()
    print(
        f"Quota-FORA+ with Seed:  {star_r * 1e3:8.2f} ms mean response "
        f"({improvement_percent(base_r, star_r):+.1f}% vs default, "
        f"epsilon_r = 0.5)"
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="related-pin recommendation demo (seeded, reproducible)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed offsetting every RNG in the example "
        "(default 0 reproduces the documented output)",
    )
    main(seed=parser.parse_args().seed)
