#!/usr/bin/env python3
"""Tracking a node's PPR fingerprint through graph evolution.

PPR-based anomaly tracking (the paper cites subset-node anomaly
tracking [21]) watches how a node's proximity distribution *shifts* as
the graph evolves: a sudden change in who a node is close to is an
anomaly signal (fake-engagement rings, compromised accounts, ...).

This example uses :class:`repro.ppr.TrackedPPR` — the incrementally
maintained fixed-source estimate with its exact invariant correction —
to follow a monitored account through two phases:

1. organic drift: random edge churn (the fingerprint barely moves),
2. an attack: a burst of edges funneling the monitored account toward
   a small ring of colluding nodes (the fingerprint lurches).

It reports the L1 shift of the tracked PPR vector per step, the
attack alarm, and validates the tracker against a from-scratch
recomputation.  A single-pair probe (``ppr_single_pair``) then
confirms the proximity jump toward the ring leader.

Run:  python examples/anomaly_tracking.py
"""

import numpy as np

from repro.graph import EdgeUpdate, barabasi_albert_graph
from repro.ppr import PPRParams, TrackedPPR, ppr_exact, ppr_single_pair

MONITORED = 7
RING = (180, 181, 182, 183, 184)
STEPS_ORGANIC = 15
STEPS_ATTACK = 10
ALARM_THRESHOLD = 0.02  # L1 shift per step


def l1_shift(before: np.ndarray, after: np.ndarray) -> float:
    return float(np.abs(after - before).sum())


def main(seed: int = 0) -> None:
    rng = np.random.default_rng(seed + 33)
    graph = barabasi_albert_graph(200, attach=3, seed=seed + 17)
    params = PPRParams(alpha=0.2, epsilon=0.5, walk_cap=4000)
    tracker = TrackedPPR(
        graph, MONITORED, params, r_max=1e-5, seed=seed
    )
    print(
        f"monitoring account {MONITORED} on a {graph.num_nodes}-node "
        f"network ({graph.num_edges} edges)"
    )

    fingerprint = tracker.estimate().values.copy()
    print("\nphase 1: organic churn")
    for step in range(STEPS_ORGANIC):
        u, v = rng.choice(200, size=2, replace=False)
        tracker.apply_update(EdgeUpdate(int(u), int(v)))
        current = tracker.estimate().values
        shift = l1_shift(fingerprint, current)
        fingerprint = current.copy()
        flag = "  <-- ALARM" if shift > ALARM_THRESHOLD else ""
        if step % 5 == 4 or flag:
            print(f"  step {step + 1:2d}: fingerprint shift {shift:.4f}{flag}")

    print("\nphase 2: collusion burst toward the ring", RING)
    alarms = 0
    for step in range(STEPS_ATTACK):
        ring_node = int(rng.choice(RING))
        tracker.apply_update(EdgeUpdate(MONITORED, ring_node))
        # the ring also densifies internally
        a, b = rng.choice(RING, size=2, replace=False)
        tracker.apply_update(EdgeUpdate(int(a), int(b)))
        current = tracker.estimate().values
        shift = l1_shift(fingerprint, current)
        fingerprint = current.copy()
        flag = "  <-- ALARM" if shift > ALARM_THRESHOLD else ""
        alarms += bool(flag)
        print(f"  step {step + 1:2d}: fingerprint shift {shift:.4f}{flag}")
    print(f"\nalarms during attack: {alarms}/{STEPS_ATTACK}")

    # cross-check: the incrementally tracked estimate still matches a
    # from-scratch exact recomputation on the final graph
    exact = ppr_exact(graph, MONITORED, alpha=params.alpha)
    estimate = tracker.estimate()
    worst = max(abs(estimate[v] - exact[v]) for v in range(200))
    print(
        f"tracker vs exact after {tracker.updates_applied} updates: "
        f"max abs error {worst:.5f} (residual mass "
        f"{tracker.residual_mass():.2e})"
    )

    pair = ppr_single_pair(
        graph, MONITORED, RING[0], params, rng=seed + 1
    )
    print(
        f"single-pair probe pi({MONITORED}, {RING[0]}) = {pair.value:.4f} "
        f"(exact {exact[RING[0]]:.4f}) — elevated proximity to the ring"
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="PPR anomaly-tracking demo (seeded, reproducible)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed offsetting every RNG in the example "
        "(default 0 reproduces the documented output)",
    )
    main(seed=parser.parse_args().seed)
