#!/usr/bin/env python3
"""Quickstart: serve a mixed PPR query/update workload with Quota.

Walks through the full pipeline in ~30 lines of user code:

1. build a dynamic graph,
2. pick a base PPR algorithm (Agenda),
3. calibrate its cost model and build the Quota controller,
4. configure for the expected arrival rates,
5. replay a workload and compare response time against the
   paper-default configuration.

Pass ``--cache`` (and optionally ``--cache-epsilon``) to also serve
the Quota run through the staleness-bounded result cache: repeated
query sources are answered from cache while every applied update
charges their entries a Lemma-2-style staleness increment, evicting
past the ``epsilon_c`` budget.

Run:  python examples/quickstart.py [--cache] [--cache-epsilon 0.2]
"""

from repro.cache import PPRCache
from repro.core import QuotaController, QuotaSystem, calibrated_cost_model
from repro.evaluation import improvement_percent
from repro.graph import barabasi_albert_graph
from repro.ppr import Agenda, PPRParams
from repro.queueing import generate_workload

LAMBDA_Q = 20.0  # queries per (virtual) second
LAMBDA_U = 40.0  # edge updates per second
WINDOW = 6.0     # seconds of workload


def main(
    seed: int = 0, cache: bool = False, cache_epsilon: float = 0.2
) -> None:
    graph = barabasi_albert_graph(500, attach=3, seed=seed + 7)
    params = PPRParams(alpha=0.2, epsilon=0.5, walk_cap=2000)
    workload = generate_workload(
        graph, LAMBDA_Q, LAMBDA_U, WINDOW, rng=seed + 1
    )
    print(
        f"graph: n={graph.num_nodes} m={graph.num_edges}; "
        f"workload: {workload.num_queries} queries + "
        f"{workload.num_updates} updates over {WINDOW:.0f}s"
    )

    # --- baseline: Agenda at its paper-default hyperparameters --------
    baseline = Agenda(graph.copy(), params)
    baseline.seed(seed)
    base_result = QuotaSystem(baseline).process(workload)
    base_r = base_result.mean_query_response_time()
    print(f"Agenda (default):      mean response time {base_r * 1e3:8.2f} ms")

    # --- Quota: calibrate, optimize for the workload, replay -----------
    algorithm = Agenda(graph.copy(), params)
    algorithm.seed(seed)
    model = calibrated_cost_model(algorithm, rng=seed)
    controller = QuotaController(
        model, extra_starts=[algorithm.get_hyperparameters()]
    )
    result_cache = PPRCache(epsilon_c=cache_epsilon) if cache else None
    system = QuotaSystem(algorithm, controller, cache=result_cache)
    decision = system.configure_static(LAMBDA_Q, LAMBDA_U)
    print(
        f"Quota picked beta = {{"
        + ", ".join(f"{k}: {v:.2e}" for k, v in decision.beta.items())
        + f"}} in {decision.configure_seconds * 1e3:.0f} ms "
        f"({decision.regime} regime)"
    )
    quota_result = system.process(workload)
    quota_r = quota_result.mean_query_response_time()
    print(f"Quota-Agenda:          mean response time {quota_r * 1e3:8.2f} ms")
    print(
        f"response time reduction: "
        f"{improvement_percent(base_r, quota_r):.1f}%"
    )
    if result_cache is not None:
        stats = result_cache.stats()
        print(
            f"result cache (epsilon_c={cache_epsilon:g}): "
            f"hit rate {stats['hit_rate']:.2f} over "
            f"{stats['lookups']:.0f} lookups"
        )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Quota quickstart (seeded, reproducible)"
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed offsetting every RNG in the example "
        "(default 0 reproduces the documented output)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="serve the Quota run through the staleness-bounded "
        "result cache",
    )
    parser.add_argument(
        "--cache-epsilon",
        type=float,
        default=0.2,
        metavar="EPS_C",
        help="staleness budget per cached entry (default 0.2)",
    )
    cli_args = parser.parse_args()
    main(
        seed=cli_args.seed,
        cache=cli_args.cache,
        cache_epsilon=cli_args.cache_epsilon,
    )
