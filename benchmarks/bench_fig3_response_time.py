"""Figure 3 reproduction: mean query response time vs lambda_u/lambda_q.

The paper's headline experiment: on each dataset, fix lambda_q and
sweep the update/query ratio over {1/8 .. 8}; compare Quota-Agenda
(plus its Seed variant Quota*) against Agenda, FORA, FORA+, FORA*
(FORA+ with Seed), and ResAcc, all replaying the same Poisson workload.

Expected shape (paper §VIII-D): Quota matches or beats every baseline
on almost every cell, with the margin largest at high contention; in
extremely update-heavy cells Quota converges toward the cheap-update
baselines.
"""

from __future__ import annotations

from benchmarks.common import (
    FIG3_SYSTEMS,
    RATIO_LABELS,
    dataset_names,
    dataset_workload,
    ratio_sweep,
    run_system,
)
from repro.evaluation import banner, format_series


SEEDS = (0, 1)  # average replays: measured-time jitter is material
                 # in the near-saturation cells (REPRODUCTION.md §4)


def run_dataset(name: str) -> tuple[list[str], dict[str, list[float]]]:
    ratios = ratio_sweep()
    series: dict[str, list[float]] = {s.label: [] for s in FIG3_SYSTEMS}
    for ratio in ratios:
        sums = {s.label: 0.0 for s in FIG3_SYSTEMS}
        for seed in SEEDS:
            spec, graph, workload, lq, lu = dataset_workload(
                name, ratio, seed=seed
            )
            for system in FIG3_SYSTEMS:
                result = run_system(
                    system, spec, graph, workload, lq, lu, seed=seed
                )
                sums[system.label] += (
                    result.mean_query_response_time() * 1e3
                )
        for label, total in sums.items():
            series[label].append(total / len(SEEDS))
    labels = [RATIO_LABELS[r] for r in ratios]
    return labels, series


def test_fig3_response_time(benchmark, report):
    report(banner("Figure 3: response time (ms) vs update/query ratio"))

    def experiment():
        output = {}
        for name in dataset_names():
            output[name] = run_dataset(name)
        return output

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for name, (labels, series) in results.items():
        report(
            format_series(
                "lambda_u/lambda_q",
                labels,
                series,
                title=f"dataset: {name}",
                float_format="{:.2f}",
            )
        )
        quota = series["Quota"]
        agenda = series["Agenda"]
        wins = sum(1 for q, a in zip(quota, agenda) if q <= a * 1.05)
        report(
            f"-> Quota <= Agenda (5% tolerance) on {wins}/{len(quota)} "
            f"ratios of {name}\n"
        )
