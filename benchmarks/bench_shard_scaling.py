"""Closed-loop load bench: throughput vs shard count (repro.shard).

The first measurement in this repo that can show *multi-core* scaling:
every shard is a separate worker process with its own interpreter, so
PPR compute escapes the GIL that caps the threaded ServingRuntime.  A
``repro.scenarios`` Zipf-hot-set workload (skewed sources — the case
shard-local caches and Seed queues care about) is replayed closed-loop
by a fixed pool of client threads against 1/2/4-shard fleets of the
same total workload; updates broadcast through the versioned fabric
path while queries run.

Honesty notes
-------------
* **Closed-loop**: throughput is ``completed / wall`` with a fixed
  client count, so it measures service capacity, not an open-loop
  arrival process.  p50/p99 are client-observed round-trips (manager
  routing + IPC + runtime), not bare kernel times.
* **Hardware caveat**: scaling requires cores.  On a 1-core container
  the expected curve is *flat-to-degraded* (IPC overhead, no added
  compute) — that is the honest result there, and the JSON artifact
  records ``cpu_count`` so trajectory comparisons don't mix hosts.
  The >=1.5x at 4 shards acceptance bar is asserted only when the
  host actually has >=4 CPUs.
* The equivalence oracle (bit-for-bit sharded == single-runtime) lives
  in ``tests/shard/test_equivalence.py``; this bench checks end-state
  convergence (every shard at the same fabric version, zero order
  faults) rather than re-running it under load.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from benchmarks.common import bench_seed, scoped, write_bench_json
from repro.evaluation import banner, format_table
from repro.graph import erdos_renyi_graph
from repro.obs import MetricsRegistry
from repro.queueing.workload import QUERY, UPDATE, Workload
from repro.scenarios import zipf_hotset
from repro.shard import ShardManager

SHARD_COUNTS = (1, 2, 4)
CLIENTS = 8


@dataclass(slots=True)
class LoadResult:
    """One fleet's closed-loop measurement."""

    shards: int
    wall_s: float
    ok: int
    shed: int
    timeout: int
    failed: int
    updates_applied: int
    p50_ms: float
    p99_ms: float

    @property
    def completed(self) -> int:
        return self.ok + self.shed + self.timeout + self.failed

    @property
    def throughput_qps(self) -> float:
        return self.ok / self.wall_s if self.wall_s > 0 else 0.0


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _drive_fleet(
    manager: ShardManager,
    sources: list[int],
    updates: list[tuple[int, int]],
    clients: int,
) -> LoadResult:
    """Replay the workload closed-loop; return the measurement."""
    counts = {"ok": 0, "shed": 0, "timeout": 0, "failed": 0}
    latencies: list[float] = []
    tally_lock = threading.Lock()
    next_index = [0]

    def client() -> None:
        while True:
            with tally_lock:
                i = next_index[0]
                if i >= len(sources):
                    return
                next_index[0] = i + 1
            t0 = time.perf_counter()
            outcome = manager.query_sync(sources[i], timeout_s=120.0)
            dt = time.perf_counter() - t0
            status = (
                outcome.status
                if outcome.status in counts
                else "failed"
            )
            with tally_lock:
                counts[status] += 1
                if outcome.ok:
                    latencies.append(dt)

    applied = [0]

    def updater() -> None:
        for u, v in updates:
            outcome = manager.update(u, v)
            if outcome.acked_shards:
                applied[0] += 1
            # pace the stream so updates interleave with queries
            # instead of front-loading all broadcasts
            time.sleep(0.002)

    threads = [
        threading.Thread(target=client, name=f"client-{i}", daemon=True)
        for i in range(clients)
    ]
    update_thread = threading.Thread(
        target=updater, name="updater", daemon=True
    )
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    update_thread.start()
    for thread in threads:
        thread.join()
    update_thread.join()
    wall = time.perf_counter() - started
    return LoadResult(
        shards=manager.num_shards,
        wall_s=wall,
        ok=counts["ok"],
        shed=counts["shed"],
        timeout=counts["timeout"],
        failed=counts["failed"],
        updates_applied=applied[0],
        p50_ms=_percentile(latencies, 0.50) * 1e3,
        p99_ms=_percentile(latencies, 0.99) * 1e3,
    )


def test_shard_scaling(report):
    seed = bench_seed()
    n_nodes = scoped(300, 2_000)
    graph = erdos_renyi_graph(n_nodes, scoped(0.02, 0.004), seed=seed)
    scenario = zipf_hotset(
        t_end=scoped(5.0, 20.0),
        lambda_q=scoped(60.0, 120.0),
        lambda_u=scoped(6.0, 12.0),
    )
    workload: Workload = scenario.compile(graph, rng=seed + 7)
    sources = [r.source for r in workload.requests if r.kind == QUERY]
    updates = [
        (r.update.u, r.update.v)
        for r in workload.requests
        if r.kind == UPDATE and r.update is not None
    ]
    walk_cap = scoped(400, 2_000)

    report(banner("Extension: sharded serving scaling (worker processes)"))
    report(
        f"scenario {scenario.name}: {len(sources)} queries + "
        f"{len(updates)} updates over n={graph.num_nodes} "
        f"m={graph.num_edges}; {CLIENTS} closed-loop clients; "
        f"host has {os.cpu_count()} CPU core(s)"
    )

    results: list[LoadResult] = []
    for shards in SHARD_COUNTS:
        manager = ShardManager(
            graph,
            shards,
            backend="process",
            algorithm="FORA",
            walk_cap=walk_cap,
            seed=seed,
            max_inflight_per_shard=CLIENTS * 4,
            metrics=MetricsRegistry(),
        )
        try:
            result = _drive_fleet(manager, sources, updates, CLIENTS)
            health = manager.healthz()
            # convergence: every shard observed the same gap-free
            # broadcast sequence, and none died on an order fault
            assert manager.healthy_shard_count() == shards, health
            versions = {
                shard["applied_broadcasts"] for shard in health["shards"]
            }
            assert versions == {manager.fabric_version}, versions
            order_faults = manager.metrics.snapshot()["counters"].get(
                "shard.order_faults", 0
            )
            assert order_faults == 0, f"{order_faults} order faults"
        finally:
            manager.stop()
        results.append(result)

    base = results[0]
    rows = [
        [
            r.shards,
            r.wall_s,
            r.ok,
            r.shed + r.timeout,
            r.updates_applied,
            r.throughput_qps,
            (r.throughput_qps / base.throughput_qps)
            if base.throughput_qps > 0
            else 0.0,
            r.p50_ms,
            r.p99_ms,
        ]
        for r in results
    ]
    report(
        format_table(
            ["shards", "wall (s)", "ok", "shed", "updates",
             "qps", "speedup", "p50 (ms)", "p99 (ms)"],
            rows,
        )
    )
    cpus = os.cpu_count() or 1
    speedup_at_max = rows[-1][6]
    if cpus >= 4:
        report(
            f"-> {speedup_at_max:.2f}x at {SHARD_COUNTS[-1]} shards on "
            f"{cpus} cores (bar: >=1.5x)"
        )
        assert speedup_at_max >= 1.5, (
            f"expected >=1.5x scaling at {SHARD_COUNTS[-1]} shards on "
            f"a {cpus}-core host, measured {speedup_at_max:.2f}x"
        )
    else:
        report(
            f"-> {speedup_at_max:.2f}x at {SHARD_COUNTS[-1]} shards on "
            f"{cpus} core(s): flat-to-degraded is the expected honest "
            "result without spare cores (IPC overhead, no added "
            "compute); re-run on a multi-core host for the scaling "
            "claim"
        )

    # every query must resolve one way or another (closed loop: no loss)
    for r in results:
        assert r.completed == len(sources), (r.shards, r.completed)

    artifact = write_bench_json(
        "shard_scaling",
        {
            "scenario": scenario.name,
            "clients": CLIENTS,
            "queries": len(sources),
            "updates": len(updates),
            "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
            "walk_cap": walk_cap,
            "fleets": [
                {
                    "shards": r.shards,
                    "wall_s": round(r.wall_s, 4),
                    "ok": r.ok,
                    "shed": r.shed,
                    "timeout": r.timeout,
                    "failed": r.failed,
                    "updates_applied": r.updates_applied,
                    "throughput_qps": round(r.throughput_qps, 2),
                    "speedup_vs_1_shard": round(
                        r.throughput_qps / base.throughput_qps, 3
                    )
                    if base.throughput_qps > 0
                    else None,
                    "p50_ms": round(r.p50_ms, 3),
                    "p99_ms": round(r.p99_ms, 3),
                }
                for r in results
            ],
        },
    )
    report(f"-> machine-readable results: {artifact}")
