"""Shared fixtures for the reproduction benchmarks.

Every bench prints its paper-style table through the ``report``
fixture, which both bypasses pytest's output capture (so the tables
appear in ``pytest benchmarks/ --benchmark-only`` output) and appends
them to ``benchmarks/results/<bench>.txt`` for EXPERIMENTS.md.
"""

import gc
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _warm_up_interpreter():
    """Exercise the hot paths once before any measurement.

    The first measured cell of a fresh process otherwise pays for cold
    caches, lazy numpy/scipy imports, and CPU frequency ramp-up, which
    skews its comparison against later cells.
    """
    from repro.evaluation.runner import build_algorithm
    from repro.graph import EdgeUpdate, barabasi_albert_graph

    graph = barabasi_albert_graph(200, attach=3, seed=99)
    for name in ("Agenda", "FORA+"):
        algorithm = build_algorithm(name, graph.copy(), 1000, seed=0)
        for i in range(3):
            algorithm.apply_update(EdgeUpdate(i, 100 + i))
            algorithm.query(i)
    yield


@pytest.fixture(autouse=True)
def _no_gc_during_benches():
    """Disable the garbage collector inside every bench.

    Benches compare *measured* operation times; accuracy callbacks
    (ppr_exact) allocate heavily, and a GC pause landing inside one
    measured run but not its counterpart skews the comparison.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        gc.collect()
        if was_enabled:
            gc.enable()


@pytest.fixture
def report(request, capsys):
    """Print-through + persist reporter for bench tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / f"{request.node.name}.txt"
    handle = out_path.open("w", encoding="utf-8")

    def _report(text: str) -> None:
        with capsys.disabled():
            print(text)
        handle.write(text + "\n")
        handle.flush()

    yield _report
    handle.close()
