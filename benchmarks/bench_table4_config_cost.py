"""Table IV reproduction: configuration cost of Quota vs search baselines.

Grid Search, Random Search, and Bayesian Optimization must *measure*
each candidate's response time by replaying a probe workload through
the live system; Quota solves its calibrated model in closed form.

Expected shape: the black-box searches cost seconds-to-minutes (and
scale with graph size, since every evaluation runs real PPR work);
Quota configures in well under a second on every dataset, orders of
magnitude faster — and the configurations found are comparable.
"""

from __future__ import annotations

from benchmarks.common import scoped
from repro.baselines import (
    BayesianOptimizationSearch,
    GridSearch,
    RandomSearch,
)
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.core.system import QuotaSystem
from repro.evaluation import banner, format_table, get_dataset
from repro.evaluation.runner import build_algorithm
from repro.queueing import generate_workload


def make_evaluator(spec, graph, workload, lq, lu):
    """Black-box objective: replay the probe workload, return R_q."""

    def evaluate(beta):
        algorithm = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
        algorithm.set_hyperparameters(**beta)
        result = QuotaSystem(algorithm).process(workload)
        return result.mean_query_response_time()

    return evaluate


def run_dataset(name: str, probe_window: float, budgets):
    spec = get_dataset(name)
    graph = spec.build(seed=5)
    lq = spec.lambda_q
    lu = lq
    workload = generate_workload(graph, lq, lu, probe_window, rng=11)
    evaluate = make_evaluator(spec, graph, workload, lq, lu)
    param_names = ["r_max", "r_max_b"]

    searchers = [
        GridSearch(grid=budgets["grid"]),
        RandomSearch(num_samples=budgets["random"]),
        BayesianOptimizationSearch(
            num_initial=3, num_iterations=budgets["bayes"] - 3
        ),
    ]
    row = [name]
    for searcher in searchers:
        outcome = searcher.search(evaluate, param_names, rng=0)
        row.append(outcome.elapsed_seconds)

    algorithm = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
    model = calibrated_cost_model(algorithm, num_queries=3, rng=12)
    controller = QuotaController(
        model, extra_starts=[algorithm.get_hyperparameters()]
    )
    decision = controller.configure(lq, lu)
    row.append(decision.configure_seconds)
    return row


def test_table4_config_cost(benchmark, report):
    report(banner("Table IV: time cost of configuration (seconds)"))
    names = scoped(("webs", "dblp"), ("webs", "dblp", "lj", "twitter"))
    probe_window = scoped(1.0, 3.0)
    budgets = scoped(
        {"grid": [1e-4, 1e-3, 1e-2], "random": 9, "bayes": 9},
        {"grid": [10 ** e for e in (-5, -4, -3, -2, -1)], "random": 25,
         "bayes": 25},
    )

    def experiment():
        return [run_dataset(n, probe_window, budgets) for n in names]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(
        format_table(
            ["dataset", "Grid Search", "Random Search",
             "Bayesian Opt.", "Quota"],
            rows,
            float_format="{:.3f}",
        )
    )
    for row in rows:
        speedup = min(row[1], row[2], row[3]) / max(row[4], 1e-9)
        report(f"-> {row[0]}: Quota {speedup:,.0f}x faster than the best search")
    report(
        "\nnote: Quota's solve time does not depend on graph size — it "
        "never executes PPR work; the searches replay real workloads "
        "per candidate."
    )
