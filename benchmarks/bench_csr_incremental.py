"""Incremental CSR maintenance vs rebuild-per-update.

The acceptance bar for the delta/apply layer: on an update-heavy
Barabasi-Albert graph (n >= 20k, lambda_u >= lambda_q) the mean update
service time of the incremental path must be at least 5x lower than
rebuilding the CSR arrays from scratch on every update.

Both paths see the same seeded toggle stream (paired comparison).  The
update-heavy mix is modeled by catching the view up after *every*
update — the worst case for the incremental path, since no updates are
batched between queries.
"""

from __future__ import annotations

import random
import time

from benchmarks.common import scoped
from repro.evaluation import banner, format_series
from repro.graph import barabasi_albert_graph
from repro.graph.updates import random_update_stream
from repro.obs import get_metrics
from repro.ppr import csr_view
from repro.ppr.csr import CSRView

N_NODES = 20_000
ATTACH = 3
NUM_INCREMENTAL = 2_000
#: full rebuilds are ~four orders slower; a small sample is plenty
NUM_REBUILD = 10


def measure_incremental(graph, num_updates: int) -> float:
    """Mean seconds per update for the delta/apply path."""
    csr_view(graph)  # warm store; exclude initial build from timing
    rng = random.Random(1)
    updates = list(random_update_stream(graph, num_updates, rng))
    start = time.perf_counter()
    for update in updates:
        update.apply(graph)
        csr_view(graph)
    return (time.perf_counter() - start) / num_updates


def measure_rebuild(graph, num_updates: int) -> float:
    """Mean seconds per update when every update rebuilds from scratch."""
    rng = random.Random(2)
    updates = list(random_update_stream(graph, num_updates, rng))
    start = time.perf_counter()
    for update in updates:
        update.apply(graph)
        CSRView(graph)
    return (time.perf_counter() - start) / num_updates


def test_csr_incremental_vs_rebuild(benchmark, report):
    report(banner("Incremental CSR maintenance vs rebuild-per-update"))
    n = scoped(N_NODES, 4 * N_NODES)

    def experiment():
        graph = barabasi_albert_graph(n, attach=ATTACH, seed=3)
        metrics = get_metrics()
        before = metrics.snapshot()["counters"]
        incremental = measure_incremental(graph, NUM_INCREMENTAL)
        after = metrics.snapshot()["counters"]
        rebuild = measure_rebuild(graph, NUM_REBUILD)
        deltas = {
            key: after.get(key, 0) - before.get(key, 0)
            for key in (
                "csr_delta_applies",
                "csr_rebuilds",
                "csr_compactions",
                "csr_cache_misses",
            )
        }
        return incremental, rebuild, deltas

    incremental, rebuild, deltas = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    speedup = rebuild / incremental
    report(
        format_series(
            "path",
            ["incremental", "rebuild/update"],
            {"mean update service time (us)": [
                incremental * 1e6, rebuild * 1e6,
            ]},
            title=f"BA graph n={n}, attach={ATTACH} (update-heavy mix)",
            float_format="{:.1f}",
        )
    )
    report(f"-> speedup {speedup:.0f}x over rebuild-per-update")
    report(
        "-> counters during incremental phase: "
        + ", ".join(f"{key}={value}" for key, value in sorted(deltas.items()))
    )
    assert speedup >= 5.0, (
        f"incremental path only {speedup:.1f}x faster; acceptance needs >= 5x"
    )
