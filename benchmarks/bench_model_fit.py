"""Diagnostic bench: calibrated cost-model fit per algorithm.

Not a paper artifact — a deployment health check.  For every algorithm
Quota supports, calibrate its model on the DBLP-like dataset, probe
measured query/update times across two decades of hyperparameter
offsets, and report prediction quality (mean |log10 error| and the
fraction of predictions within 3x).

Reading guide: Quota only needs the model to *rank* configurations in
the region the optimizer explores; sub-0.5 mean log error (within ~3x)
is comfortably sufficient, and is what the multi-point calibration
delivers on this substrate.
"""

from __future__ import annotations

from benchmarks.common import scoped
from repro.core.calibration import calibrated_cost_model
from repro.evaluation import banner, format_table, get_dataset, model_fit_report
from repro.evaluation.runner import build_algorithm

ALGORITHMS = (
    "Agenda", "FORA", "FORA+", "SpeedPPR", "SpeedPPR+", "FORA-TopK",
    "TopPPR",
)


def test_model_fit(benchmark, report):
    report(banner("Diagnostic: cost-model fit per algorithm"))
    spec = get_dataset("dblp")
    scales = scoped((0.3, 1.0, 3.0), (0.1, 0.3, 1.0, 3.0, 10.0))

    def experiment():
        graph = spec.build(seed=15)
        rows = []
        for name in ALGORITHMS:
            algorithm = build_algorithm(
                name, graph.copy(), spec.walk_cap, seed=0
            )
            model = calibrated_cost_model(algorithm, num_queries=4, rng=26)
            fit = model_fit_report(
                algorithm, model, scales=scales, num_queries=3, rng=27
            )
            rows.append(
                [
                    name,
                    fit.mean_log_error_q(),
                    fit.mean_log_error_u(),
                    fit.within_factor(3.0),
                ]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(
        format_table(
            ["algorithm", "mean |log10 err| t_q", "mean |log10 err| t_u",
             "within 3x"],
            rows,
            title=f"dblp-like, probe scales {scales}",
            float_format="{:.3f}",
        )
    )
