"""Figure 8 reproduction: the epsilon_r trade-off of Seed.

Update-heavy workload (lambda_u/lambda_q = 4) served by the two
index-based systems (Agenda and FORA+) at their default
configurations, sweeping the reorder error threshold epsilon_r;
reports mean response time and the *true* absolute PPR error measured
against exact PPR on the fully updated graph.  (Quota-tuned Agenda
already makes updates cheap, leaving Seed little to defer — the
Quota+Seed synergy is the Quota* column of the Figure 3 bench.)

Expected shape: response time decreases as epsilon_r grows (queries
overtake more pending updates); the measured error stays far below the
theoretical epsilon_r budget (the paper's own observation), growing
only mildly.

Note on the sweep range: the Lemma 2 bound is very conservative —
roughly 13/d_out(u) per pending update — so on sparse graphs a sweep
of {0 .. 1} defers only hub-node updates.  We therefore use a denser
ER graph (mean degree ~40, comparable to the paper's larger datasets)
where the paper's sweep range is meaningful, plus a wider sweep that
exposes the full curve.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import scoped
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.core.system import QuotaSystem
from repro.evaluation import (
    AccuracySummary,
    banner,
    format_series,
)
from repro.evaluation.datasets import DatasetSpec
from repro.evaluation.runner import build_algorithm
from repro.graph import erdos_renyi_graph
from repro.queueing import generate_workload
from repro.queueing.workload import UPDATE

DENSE = DatasetSpec(
    name="dblp-dense", nodes=400, edges=16000, directed=True, kind="er",
    lambda_q=10.0, window=5.0, walk_cap=2500,
)


SEEDS = (3, 13)  # average workload replays: the update-heavy cell sits
                 # near saturation, where single runs jitter


def run_sweep(algorithm_name: str, use_quota: bool, epsilons, window):
    lq, lu = 10.0, 40.0
    response = [0.0] * len(epsilons)
    error = [0.0] * len(epsilons)
    for seed in SEEDS:
        graph = DENSE.build(seed=seed)
        workload = generate_workload(graph, lq, lu, window, rng=seed + 1)
        shadow = graph.copy()
        for request in workload:
            if request.kind == UPDATE:
                request.update.apply(shadow)

        for i, eps in enumerate(epsilons):
            algorithm = build_algorithm(
                algorithm_name, graph.copy(), DENSE.walk_cap, seed=0
            )
            controller = None
            if use_quota:
                model = calibrated_cost_model(
                    algorithm, num_queries=3, rng=5
                )
                controller = QuotaController(
                    model, extra_starts=[algorithm.get_hyperparameters()]
                )
            system = QuotaSystem(algorithm, controller, epsilon_r=eps)
            if controller is not None:
                system.configure_static(lq, lu)

            samples: list[float] = []
            counter = {"n": 0}

            def callback(request, estimate, pending):
                counter["n"] += 1
                if counter["n"] % 10 == 0:
                    samples.append(
                        AccuracySummary.compare(
                            estimate, shadow, algorithm.params.alpha
                        ).max_absolute_error
                    )

            result = system.process(workload, query_callback=callback)
            response[i] += (
                result.mean_query_response_time() * 1e3 / len(SEEDS)
            )
            error[i] += (
                float(np.mean(samples)) / len(SEEDS) if samples else 0.0
            )
    return response, error


def test_fig8_seed_epsilon(benchmark, report):
    report(banner("Figure 8: Seed epsilon_r sweep (lambda_q=10, lambda_u=40)"))
    epsilons = scoped(
        (0.0, 0.2, 0.5, 1.0, 2.0),
        (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 2.0),
    )
    window = scoped(3.0, 6.0)

    def experiment():
        agenda = run_sweep("Agenda", False, epsilons, window)
        fora = run_sweep("FORA+", False, epsilons, window)
        return agenda, fora

    (a_resp, a_err), (f_resp, f_err) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    labels = [f"{e:g}" for e in epsilons]
    report(
        format_series(
            "epsilon_r",
            labels,
            {
                "Agenda R (ms)": a_resp,
                "Agenda true err": a_err,
                "FORA+ R (ms)": f_resp,
                "FORA+ true err": f_err,
            },
            title="response time and true absolute error vs epsilon_r",
            float_format="{:.3f}",
        )
    )
    report(
        f"-> Agenda: R at eps=max is {a_resp[-1] / max(a_resp[0], 1e-9):.2f}x of "
        f"eps=0; FORA+: {f_resp[-1] / max(f_resp[0], 1e-9):.2f}x; true error "
        f"stays <= {max(max(a_err), max(f_err)):.4f} "
        f"(theoretical budget {epsilons[-1]:g})"
    )
