"""Ablation: the two-regime objective dispatch (why Lemma 1 matters).

Quota switches its objective from the Eq. 2 response-time estimate
(stable regime) to the raw traffic intensity rho (unstable regime).
This ablation overloads the Webs-like dataset far past saturation and
compares:

* ``Quota``      — full dispatch (detects instability, minimizes rho),
* ``Quota-eq2``  — forced to keep minimizing the (now meaningless)
  Eq. 2 continuation even when no beta can stabilize the queue,
* ``Agenda``     — the untouched default.

Expected shape: under genuine overload the rho-minimizing dispatch
yields the lowest (still large) response times; the forced-Eq. 2
variant picks inferior configurations because its objective is
dominated by the clipped denominator rather than the real growth rate.
"""

from __future__ import annotations

import math

import numpy as np

from benchmarks.common import scoped
from repro.core.calibration import calibrated_cost_model
from repro.core.optimizer import ConstrainedProblem
from repro.core.quota import LOG_HI, LOG_LO, QuotaController
from repro.core.system import QuotaSystem
from repro.evaluation import banner, format_table, get_dataset
from repro.evaluation.runner import build_algorithm
from repro.queueing import generate_workload


class Eq2OnlyController(QuotaController):
    """Degenerate controller that never switches to the rho objective."""

    def configure(self, lambda_q, lambda_u, warm_start=None, quick=False):
        import time as _time

        started = _time.perf_counter()
        bounds = tuple((LOG_LO, LOG_HI) for _ in self.param_names)
        starts = self._starting_points(warm_start, quick)
        problem = ConstrainedProblem(
            objective=lambda x: self._response_time(x, lambda_q, lambda_u),
            constraints=(),
            bounds=bounds,
        )
        final = self.optimizer.minimize_multistart(problem, starts)
        beta = self._beta_of(final.x)
        from repro.core.quota import STABLE, QuotaDecision

        return QuotaDecision(
            beta=beta,
            regime=STABLE,  # it *believes* Eq. 2 applies
            predicted_response_time=final.value,
            traffic_intensity=self._rho(final.x, lambda_q, lambda_u),
            configure_seconds=_time.perf_counter() - started,
            optimizer_result=final,
        )


def run_variant(label, controller_cls, spec, graph, workload, lq, lu):
    algorithm = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
    controller = None
    if controller_cls is not None:
        model = calibrated_cost_model(algorithm, num_queries=4, rng=16)
        controller = controller_cls(
            model, extra_starts=[algorithm.get_hyperparameters()]
        )
    system = QuotaSystem(algorithm, controller)
    decision = None
    if controller is not None:
        decision = system.configure_static(lq, lu)
    result = system.process(workload)
    rho = decision.traffic_intensity if decision else float("nan")
    return [
        label,
        result.mean_query_response_time() * 1e3,
        result.empirical_load(),
        rho if not math.isnan(rho) else "-",
    ]


def test_ablation_objective_dispatch(benchmark, report):
    report(banner("Ablation: stable/unstable objective dispatch"))
    spec = get_dataset("webs")
    window = scoped(3.0, 6.0)
    # drive far past saturation
    lq = spec.lambda_q * 10
    lu = spec.lambda_q * 20

    def experiment():
        graph = spec.build(seed=8)
        workload = generate_workload(graph, lq, lu, window, rng=17)
        return [
            run_variant("Agenda (default)", None, spec, graph, workload, lq, lu),
            run_variant("Quota (dispatch)", QuotaController, spec, graph,
                        workload, lq, lu),
            run_variant("Quota-eq2 (no dispatch)", Eq2OnlyController, spec,
                        graph, workload, lq, lu),
        ]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(
        format_table(
            ["variant", "R (ms)", "measured load", "model rho"],
            rows,
            title=f"webs-like overloaded: lq={lq:g}, lu={lu:g}",
        )
    )
