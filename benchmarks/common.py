"""Shared machinery for the reproduction benchmarks.

Scope control
-------------
The full paper grid (6 datasets x 7 ratios x 7 systems, long windows)
takes hours in pure Python.  ``REPRO_BENCH_SCOPE`` selects:

* ``quick`` (default) — representative subset: fewer datasets/ratios
  and shorter windows.  Preserves every qualitative conclusion.
* ``full``  — the paper's complete grid.

Every bench accepts the same seeded workloads for all compared systems
(paired comparison), mirroring the paper's methodology of replaying
identical request sequences.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time
from dataclasses import dataclass

from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.core.system import QuotaSystem
from repro.evaluation.datasets import DatasetSpec, get_dataset
from repro.evaluation.runner import build_algorithm
from repro.graph.digraph import DynamicGraph
from repro.queueing.simulator import SimulationResult
from repro.queueing.workload import Workload, generate_workload

#: the paper's lambda_u / lambda_q sweep (Figure 3)
FULL_RATIOS = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
QUICK_RATIOS = (0.125, 1.0, 8.0)

RATIO_LABELS = {
    0.125: "1/8", 0.25: "1/4", 0.5: "1/2",
    1.0: "1", 2.0: "2", 4.0: "4", 8.0: "8",
}


def bench_scope() -> str:
    scope = os.environ.get("REPRO_BENCH_SCOPE", "quick").lower()
    if scope not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_SCOPE must be quick|full, got {scope}")
    return scope


def bench_seed() -> int:
    """Base seed for every benchmark (override: REPRO_BENCH_SEED).

    All benchmark randomness (graph build, workload, walks) derives
    from this one value, so a run is reproduced by re-exporting it.
    """
    raw = os.environ.get("REPRO_BENCH_SEED", "0")
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_BENCH_SEED must be an integer, got {raw!r}"
        ) from None


def scoped(quick_value, full_value):
    """Pick per scope."""
    return full_value if bench_scope() == "full" else quick_value


def ratio_sweep() -> tuple[float, ...]:
    return scoped(QUICK_RATIOS, FULL_RATIOS)


def dataset_names() -> tuple[str, ...]:
    return scoped(
        ("webs", "dblp"),
        ("webs", "dblp", "pokec", "lj", "orkut", "twitter"),
    )


def window_for(spec: DatasetSpec) -> float:
    return scoped(min(spec.window, 4.0), spec.window)


@dataclass(slots=True)
class SystemSpec:
    """One line/series in a figure: base algorithm + Quota/Seed flags."""

    label: str
    algorithm: str
    use_quota: bool = False
    without_constants: bool = False
    epsilon_r: float = 0.0


#: the Figure 3 competitor set
FIG3_SYSTEMS = (
    SystemSpec("Quota", "Agenda", use_quota=True),
    SystemSpec("Quota*", "Agenda", use_quota=True, epsilon_r=0.5),
    SystemSpec("Agenda", "Agenda"),
    SystemSpec("FORA", "FORA"),
    SystemSpec("FORA+", "FORA+"),
    SystemSpec("FORA*", "FORA+", epsilon_r=0.5),
    SystemSpec("ResAcc", "ResAcc"),
)


def run_system(
    system: SystemSpec,
    spec: DatasetSpec,
    graph: DynamicGraph,
    workload: Workload,
    lambda_q: float,
    lambda_u: float,
    seed: int | None = None,
    reoptimize_every: float | None = None,
) -> SimulationResult:
    """Replay one workload through one configured system.

    ``seed`` defaults to :func:`bench_seed` so a whole benchmark run is
    reproduced by setting REPRO_BENCH_SEED once.
    """
    if seed is None:
        seed = bench_seed()
    algorithm = build_algorithm(
        system.algorithm, graph.copy(), spec.walk_cap, seed=seed
    )
    controller = None
    if system.use_quota:
        model = calibrated_cost_model(algorithm, num_queries=4, rng=seed + 1)
        if system.without_constants:
            model = model.without_constants()
        controller = QuotaController(
            model, extra_starts=[algorithm.get_hyperparameters()]
        )
    runner = QuotaSystem(
        algorithm,
        controller,
        epsilon_r=system.epsilon_r,
        reoptimize_every=reoptimize_every,
    )
    if controller is not None and reoptimize_every is None:
        runner.configure_static(lambda_q, lambda_u)
    return runner.process(workload)


def dataset_workload(
    name: str,
    ratio: float,
    seed: int | None = None,
    lambda_q: float | None = None,
    window: float | None = None,
) -> tuple[DatasetSpec, DynamicGraph, Workload, float, float]:
    """Materialize (spec, graph, workload, lambda_q, lambda_u) for a cell.

    ``seed`` defaults to :func:`bench_seed` (REPRO_BENCH_SEED).
    """
    if seed is None:
        seed = bench_seed()
    spec = get_dataset(name)
    graph = spec.build(seed=seed)
    lq = lambda_q if lambda_q is not None else spec.lambda_q
    lu = lq * ratio
    t = window if window is not None else window_for(spec)
    workload = generate_workload(graph, lq, lu, t, rng=seed + 7)
    return spec, graph, workload, lq, lu


# ----------------------------------------------------------------------
# machine-readable results (perf trajectory)
# ----------------------------------------------------------------------
#: repository root — trajectory artifacts live beside ROADMAP.md so
#: successive PRs can diff them without digging into benchmarks/
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def write_bench_json(
    name: str,
    results: object,
    path: str | os.PathLike[str] | None = None,
) -> pathlib.Path:
    """Persist one benchmark's results as ``BENCH_<name>.json``.

    The human-readable tables under ``benchmarks/results/`` are for
    reading; these JSON artifacts are for *machines* — committed at the
    repo root so the perf trajectory across PRs is a ``git log`` over
    structured data.  Every record carries the scope/seed knobs and
    enough host fingerprint to judge comparability (a 1-core container
    and a 16-core runner are not the same experiment).
    """
    record = {
        "bench": name,
        "scope": bench_scope(),
        "seed": bench_seed(),
        "generated_unix": int(time.time()),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": results,
    }
    target = (
        pathlib.Path(path)
        if path is not None
        else REPO_ROOT / f"BENCH_{name}.json"
    )
    target.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target
