"""Table III reproduction: robustness to arrival-time distributions.

LJ-like dataset (quick scope: DBLP-like) with lambda_q = lambda_u;
arrivals drawn from Uniform, Geometric, Normal, and Gamma inter-arrival
distributions plus the Wikipedia-like bursty trace (our documented
substitute for the paper's real event stream).  Agenda default vs
Quota-Agenda; the Wikipedia column runs Quota with online rate
monitoring, as in the paper.

Expected shape: Agenda's response time is sensitive to the arrival
pattern (burstier -> worse); Quota cuts it substantially on every
pattern (paper: 24%-91%).
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import SystemSpec, run_system, scoped
from repro.evaluation import banner, format_table, get_dataset, improvement_percent
from repro.queueing import (
    GammaArrivals,
    GeometricArrivals,
    NormalArrivals,
    UniformArrivals,
    generate_workload,
    wikipedia_like_trace,
)


#: contention multiplier — the paper's Table III runs on a crowded
#: queue ("the response time of Agenda is sensitive to the arrival
#: time distribution due to the crowded queue")
RATE_SCALE = 4.0


def build_workloads(spec, graph, window, rng):
    lam = spec.lambda_q * RATE_SCALE
    patterns = {
        "Uniform": UniformArrivals(lam),
        "Geometric": GeometricArrivals(lam),
        "Normal": NormalArrivals(lam),
        "Gamma": GammaArrivals(lam),
    }
    workloads = {}
    for name, process in patterns.items():
        workloads[name] = generate_workload(
            graph, lam, lam, window,
            rng=rng,
            query_process=type(process)(lam),
            update_process=type(process)(lam),
        )
    # phases a few seconds long and moderate bursts: the paper's 100-
    # event Wikipedia extract is a mild non-homogeneous stream, not a
    # flash-crowd; rate changes must be slow enough to be observable
    q_times = wikipedia_like_trace(
        lam, window, np.random.default_rng(31),
        burst_factor=2.5, mean_phase=window / 3,
    )
    u_times = wikipedia_like_trace(
        lam, window, np.random.default_rng(32),
        burst_factor=2.5, mean_phase=window / 3,
    )
    workloads["Wikipedia"] = generate_workload(
        graph, lam, lam, window,
        rng=rng, query_times=q_times, update_times=u_times,
    )
    return workloads


def test_table3_arrival_patterns(benchmark, report):
    report(banner("Table III: response time under arrival patterns"))
    dataset = scoped("dblp", "lj")
    window = scoped(4.0, 10.0)
    spec = get_dataset(dataset)

    def experiment():
        seeds = scoped((4, 14), (4, 14, 24, 34))
        lam = spec.lambda_q * RATE_SCALE
        sums: dict[str, list[float]] = {}
        for seed in seeds:
            graph = spec.build(seed=seed)
            workloads = build_workloads(
                spec, graph, window, np.random.default_rng(seed + 26)
            )
            for name, workload in workloads.items():
                # "we monitor the request arrivals and obtain the
                # real-time lambda_q and lambda_u": configure at the
                # monitored long-run rates.  (Re-applying beta inside
                # bursts would serialize index rebuilds with serving —
                # counterproductive at this substrate's service-time
                # scale; see the adaptive_reconfiguration example for
                # the online loop under slower rate drift.)
                agenda = run_system(
                    SystemSpec("Agenda", "Agenda"),
                    spec, graph, workload, lam, lam, seed=seed,
                )
                # the bursty trace saturates at its burst peaks, not at
                # the mean: provision Quota for the monitored peak rate
                # (bursts run at ~1.4x the long-run mean)
                provision = lam * (1.5 if name == "Wikipedia" else 1.0)
                quota = run_system(
                    SystemSpec("Quota", "Agenda", use_quota=True),
                    spec, graph, workload, provision, provision, seed=seed,
                )
                entry = sums.setdefault(name, [0.0, 0.0])
                entry[0] += agenda.mean_query_response_time() * 1e3
                entry[1] += quota.mean_query_response_time() * 1e3
        return {
            name: (a / len(seeds), q / len(seeds))
            for name, (a, q) in sums.items()
        }

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = [
        [name, a, q, improvement_percent(a, q)]
        for name, (a, q) in rows.items()
    ]
    report(
        format_table(
            ["pattern", "Agenda R (ms)", "Quota R (ms)", "reduction %"],
            table,
            title=f"dataset: {dataset}, lambda_q = lambda_u = "
                  f"{spec.lambda_q * RATE_SCALE:g}",
        )
    )
