"""Figure 6 reproduction: the (r_max, r_max_b) response-time landscape.

For several update/query ratios on the Pokec-like dataset, evaluate the
*measured* mean response time over a grid of hyperparameter settings —
expressed, as in the paper, as multiples of Agenda's defaults
r̄_max = 1/(alpha K) and r̄^b_max = 1/n — and mark where the default
sits versus where Quota's constrained optimization lands.

Expected shape: the default ratio (1, 1) is not the valley floor; the
Quota-selected point sits at or near the grid minimum for every
workload mix.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import scoped
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.core.system import QuotaSystem
from repro.evaluation import banner, format_table, get_dataset
from repro.evaluation.runner import build_algorithm
from repro.queueing import generate_workload

GRID_MULTIPLIERS = (0.05, 0.25, 1.0, 4.0)


def measure_cell(spec, graph, workload, lq, lu, r_mult, rb_mult, defaults):
    algorithm = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
    algorithm.set_hyperparameters(
        r_max=min(defaults["r_max"] * r_mult, 0.999),
        r_max_b=min(defaults["r_max_b"] * rb_mult, 0.999),
    )
    result = QuotaSystem(algorithm).process(workload)
    return result.mean_query_response_time() * 1e3


def run_ratio(dataset: str, ratio: float, window: float):
    spec = get_dataset(dataset)
    graph = spec.build(seed=0)
    lq = spec.lambda_q
    lu = lq * ratio
    workload = generate_workload(graph, lq, lu, window, rng=5)

    probe = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
    defaults = probe.default_hyperparameters()

    rows = []
    best = (None, float("inf"))
    for r_mult in GRID_MULTIPLIERS:
        for rb_mult in GRID_MULTIPLIERS:
            value = measure_cell(
                spec, graph, workload, lq, lu, r_mult, rb_mult, defaults
            )
            rows.append([f"{r_mult}x", f"{rb_mult}x", value])
            if value < best[1]:
                best = ((r_mult, rb_mult), value)

    model = calibrated_cost_model(probe, num_queries=4, rng=1)
    controller = QuotaController(model, extra_starts=[defaults])
    decision = controller.configure(lq, lu)
    quota_r = decision.beta["r_max"] / defaults["r_max"]
    quota_rb = decision.beta["r_max_b"] / defaults["r_max_b"]

    tuned = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
    tuned.set_hyperparameters(**decision.beta)
    quota_time = (
        QuotaSystem(tuned).process(workload).mean_query_response_time() * 1e3
    )
    default_time = next(
        v for rm, rb, v in rows if rm == "1.0x" and rb == "1.0x"
    )
    return rows, best, (quota_r, quota_rb, quota_time), default_time


def test_fig6_landscape(benchmark, report):
    report(banner("Figure 6: Agenda hyperparameter landscape"))
    dataset = scoped("webs", "pokec")
    ratios = scoped((0.5, 2.0), (0.25, 0.5, 1.0, 2.0))
    window = scoped(3.0, 8.0)

    def experiment():
        return {r: run_ratio(dataset, r, window) for r in ratios}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for ratio, (rows, best, quota, default_time) in results.items():
        report(
            format_table(
                ["r_max/default", "r_max_b/default", "measured R (ms)"],
                rows,
                title=f"{dataset}, lambda_u/lambda_q = {ratio}",
            )
        )
        (bm, bbm), bv = best
        qr, qrb, qv = quota
        report(f"grid minimum: ({bm}x, {bbm}x) at {bv:.2f} ms")
        report(f"original Agenda setting (1x, 1x): {default_time:.2f} ms")
        report(
            f"Quota selected ({qr:.2f}x, {qrb:.2f}x) measuring {qv:.2f} ms\n"
        )
