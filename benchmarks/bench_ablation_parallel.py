"""Extension bench: parallel serving — modeled and measured.

The paper's single-server queue is the bottleneck its whole design
optimizes; the natural deployment question is how far parallelism (the
"parallel PPR processing" direction [23]) moves the stability frontier.
Three progressively more realistic views:

1. **Modeled FCFS** — k = 1, 2, 4, 8 virtual servers replaying
   deterministic modeled service times (``modeled=True``: the timeline
   is a cost-model projection, not a measurement).
2. **Modeled Seed-aware** — the event-driven
   :class:`~repro.queueing.SeedAwareQueueSimulator`: same k servers
   plus Seed deferral/reordering and idle-time draining, updates
   really mutating the graph so the Lemma 2 bound tracks true degrees.
3. **Measured concurrent** — the real thing:
   :class:`~repro.serving.ServingRuntime` worker threads over
   snapshot-isolated CSR views, with a structural equivalence oracle
   (updates replayed by observed graph version must reproduce the
   final edge set exactly).

Honesty note for (3): this container is single-core and CPython's GIL
interleaves pure-Python bytecode, so wall-clock throughput does NOT
scale with k here — the k sweep demonstrates *correctness under
concurrency* (zero oracle violations, no sheds of admitted work), and
the architecture only pays off on multi-core / free-threaded builds.
The modeled tables are where the k-scaling shape lives.

Expected shape: response time collapses once k pushes the per-server
load below 1; beyond that, extra servers yield diminishing returns —
and Quota's configuration still helps at every k because it reduces
the *work per request*, which parallelism cannot.
"""

from __future__ import annotations

from benchmarks.common import bench_seed, scoped
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.evaluation import banner, format_table, get_dataset
from repro.evaluation.runner import build_algorithm
from repro.graph.generators import barabasi_albert_graph
from repro.ppr.csr import csr_view
from repro.ppr.forward_push import forward_push
from repro.queueing import (
    FCFSQueueSimulator,
    SeedAwareQueueSimulator,
    generate_workload,
)
from repro.queueing.workload import QUERY
from repro.serving import OK, ServingRuntime

SERVER_COUNTS = (1, 2, 4, 8)
MEASURED_WORKERS = (1, 2, 4)


def modeled_service_fn(model, beta, lq, lu):
    t_q = model.query_time(beta, lq, lu)
    t_u = model.update_time(beta)
    return lambda request: t_q if request.kind == QUERY else t_u


def test_ablation_parallel_serving(benchmark, report):
    report(banner("Extension: multi-server FCFS (modeled service)"))
    spec = get_dataset("dblp")
    window = scoped(20.0, 60.0)
    lq = spec.lambda_q * 28  # overloads a single server (~1.5x)
    lu = lq

    def experiment():
        graph = spec.build(seed=13)
        workload = generate_workload(graph, lq, lu, window, rng=24)
        probe = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
        model = calibrated_cost_model(probe, num_queries=4, rng=25)
        default_beta = probe.get_hyperparameters()
        controller = QuotaController(model, extra_starts=[default_beta])
        quota_beta = controller.configure(lq, lu).beta

        rows = []
        for servers in SERVER_COUNTS:
            row = [f"{servers} server(s)"]
            for beta in (default_beta, quota_beta):
                sim = FCFSQueueSimulator(
                    modeled_service_fn(model, beta, lq, lu),
                    servers=servers,
                    modeled=True,
                )
                result = sim.run(workload)
                row.append(result.mean_query_response_time() * 1e3)
            rows.append(row)

        # Seed-aware event-driven replay: same servers, updates now
        # deferred/reordered within epsilon_r and drained during idle
        # gaps.  Fresh graph per cell — the simulator mutates it.
        seed_rows = []
        alpha = probe.params.alpha
        for servers in SERVER_COUNTS:
            row = [f"{servers} server(s)"]
            for eps in (0.0, 0.5):  # FCFS vs the Fig. 8 Seed budget
                sim = SeedAwareQueueSimulator(
                    modeled_service_fn(model, quota_beta, lq, lu),
                    spec.build(seed=13),
                    alpha=alpha,
                    epsilon_r=eps,
                    servers=servers,
                )
                result = sim.run(workload)
                row.append(result.mean_query_response_time() * 1e3)
            seed_rows.append(row)

        per_server_load = (
            lq * model.query_time(default_beta, lq, lu)
            + lu * model.update_time(default_beta)
        )
        return rows, seed_rows, per_server_load

    rows, seed_rows, load = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    report(
        format_table(
            ["servers", "default beta R (ms)", "Quota beta R (ms)"],
            rows,
            title=f"dblp-like, lq=lu={lq:g} "
            f"(single-server offered load {load:.2f})",
        )
    )
    report(
        format_table(
            ["servers", "eps_r=0 R (ms)", "eps_r=paper R (ms)"],
            seed_rows,
            title="Seed-aware event-driven replay (Quota beta)",
        )
    )
    report(
        "-> parallelism moves the stability frontier; Quota reduces "
        "work per request on top of it at every k, and Seed reordering "
        "stacks on both."
    )


def _measured_query_fn(alpha: float, r_max: float):
    """Pure (graph, source) executor: safe to share across workers."""

    def run_query(graph, source):
        view = csr_view(graph)
        return forward_push(view, view.to_index(source), alpha, r_max)

    return run_query


def _oracle_violations(initial_graph, final_graph, report_obj) -> int:
    """Structural equivalence oracle for a measured run.

    Replays the OK update records in observed graph-version order on a
    shadow copy of the pre-run graph; a correct runtime (single
    serialized writer, snapshot-isolated readers) must reproduce the
    final edge set exactly, with strictly increasing versions.
    """
    violations = 0
    applied = sorted(
        (r for r in report_obj.records if r.status == OK and r.kind != QUERY),
        key=lambda r: r.version,
    )
    versions = [r.version for r in applied]
    if len(set(versions)) != len(versions):
        violations += 1  # two updates claim the same snapshot
    shadow = initial_graph
    for record in applied:
        record.request.update.apply(shadow)
    if set(shadow.edges()) != set(final_graph.edges()):
        violations += 1
    newest = max(max(versions, default=0), final_graph.version)
    for record in report_obj.records:
        if record.status == OK and record.kind == QUERY:
            if not 0 <= record.version <= newest:
                violations += 1
    return violations


def test_measured_concurrent_serving(benchmark, report):
    report(banner("Extension: measured concurrent serving (real threads)"))
    n = scoped(2_000, 20_000)
    num_queries = scoped(40, 200)
    num_updates = scoped(20, 100)
    alpha, r_max = 0.2, 1e-3

    def experiment():
        import random

        from repro.graph.updates import random_update_stream
        from repro.ppr.fora import Fora
        from repro.queueing.workload import UPDATE, Request

        rows = []
        for workers in MEASURED_WORKERS:
            graph = barabasi_albert_graph(n, 3, seed=bench_seed() + 1)
            initial = graph.copy()
            rng = random.Random(bench_seed() + 2)
            nodes = list(graph.nodes())
            updates = iter(
                random_update_stream(graph, num_updates, rng=rng)
            )
            requests = []
            for i in range(num_queries + num_updates):
                if i % ((num_queries + num_updates) // num_updates) == 0 and (
                    i // ((num_queries + num_updates) // num_updates)
                    < num_updates
                ):
                    requests.append(
                        Request(i * 1e-4, UPDATE, update=next(updates))
                    )
                else:
                    requests.append(
                        Request(i * 1e-4, QUERY, source=rng.choice(nodes))
                    )

            runtime = ServingRuntime(
                Fora(graph),
                workers=workers,
                epsilon_r=100.0,
                queue_capacity=0,
                query_fn=_measured_query_fn(alpha, r_max),
            )
            with runtime:
                run_report = runtime.serve(requests)
            violations = _oracle_violations(initial, graph, run_report)
            rows.append(
                [
                    f"{workers} worker(s)",
                    run_report.query_throughput(),
                    run_report.mean_query_response_s() * 1e3,
                    len(run_report.completed_queries()),
                    violations,
                ]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(
        format_table(
            [
                "workers",
                "throughput (q/s)",
                "mean R (ms)",
                "queries ok",
                "oracle violations",
            ],
            rows,
            title=f"ServingRuntime on BA n={n} (measured wall clock)",
        )
    )
    report(
        "-> single-core container + GIL: throughput does not scale with "
        "workers here; the sweep certifies snapshot-isolation "
        "correctness (zero oracle violations) under real interleaving. "
        "k-scaling shape: see the modeled tables above."
    )
