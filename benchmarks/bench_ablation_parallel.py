"""Extension bench: parallel serving (multi-server FCFS).

The paper's single-server queue is the bottleneck its whole design
optimizes; the natural deployment question is how far parallelism (the
"parallel PPR processing" direction [23]) moves the stability frontier.
This bench replays the same overloaded workload through k = 1, 2, 4, 8
virtual servers using *modeled* service times (measured means from a
probe run, replayed deterministically), and reports where the queue
stabilizes.

Expected shape: response time collapses once k pushes the per-server
load below 1; beyond that, extra servers yield diminishing returns —
and Quota's configuration still helps at every k because it reduces
the *work per request*, which parallelism cannot.
"""

from __future__ import annotations

from benchmarks.common import scoped
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.evaluation import banner, format_table, get_dataset
from repro.evaluation.runner import build_algorithm
from repro.queueing import FCFSQueueSimulator, generate_workload
from repro.queueing.workload import QUERY

SERVER_COUNTS = (1, 2, 4, 8)


def modeled_service_fn(model, beta, lq, lu):
    t_q = model.query_time(beta, lq, lu)
    t_u = model.update_time(beta)
    return lambda request: t_q if request.kind == QUERY else t_u


def test_ablation_parallel_serving(benchmark, report):
    report(banner("Extension: multi-server FCFS (modeled service)"))
    spec = get_dataset("dblp")
    window = scoped(20.0, 60.0)
    lq = spec.lambda_q * 28  # overloads a single server (~1.5x)
    lu = lq

    def experiment():
        graph = spec.build(seed=13)
        workload = generate_workload(graph, lq, lu, window, rng=24)
        probe = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
        model = calibrated_cost_model(probe, num_queries=4, rng=25)
        default_beta = probe.get_hyperparameters()
        controller = QuotaController(model, extra_starts=[default_beta])
        quota_beta = controller.configure(lq, lu).beta

        rows = []
        for servers in SERVER_COUNTS:
            row = [f"{servers} server(s)"]
            for beta in (default_beta, quota_beta):
                sim = FCFSQueueSimulator(
                    modeled_service_fn(model, beta, lq, lu), servers=servers
                )
                result = sim.run(workload)
                row.append(result.mean_query_response_time() * 1e3)
            rows.append(row)
        per_server_load = (
            lq * model.query_time(default_beta, lq, lu)
            + lu * model.update_time(default_beta)
        )
        return rows, per_server_load

    rows, load = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(
        format_table(
            ["servers", "default beta R (ms)", "Quota beta R (ms)"],
            rows,
            title=f"dblp-like, lq=lu={lq:g} "
            f"(single-server offered load {load:.2f})",
        )
    )
    report(
        "-> parallelism moves the stability frontier; Quota reduces "
        "work per request on top of it at every k."
    )
