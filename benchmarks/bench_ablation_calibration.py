"""Ablation: sensitivity of Quota to calibration quality.

Four variants of the cost model feeding the same controller:

* ``calibrated``  — the standard multi-point tau fit,
* ``single-probe`` — taus fit from the default setting only,
* ``noisy``       — calibrated taus perturbed by 2x random factors,
* ``unit``        — all taus = 1 (the Quota-c ablation of Figure 4).

Expected shape: calibrated < single-probe < noisy in response time —
quality degrades with calibration fidelity.  Unit constants are
*erratic*: with no cost information the optimizer drifts to a box
corner, which on this capped-K pure-Python substrate can be
accidentally cheap in a static update-heavy cell, but is catastrophic
under the dynamic/online setting (see the Quota-c series of the
Figure 4 bench — the paper's actual Quota-c experiment).  Both mixes
are printed so the erraticism is visible.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import scoped
from repro.core.calibration import calibrate_taus, calibrated_cost_model
from repro.core.cost_models import cost_model_for
from repro.core.quota import QuotaController
from repro.core.system import QuotaSystem
from repro.evaluation import banner, format_table, get_dataset
from repro.evaluation.runner import build_algorithm
from repro.queueing import generate_workload


def run_with_model(model, spec, graph, workload, lq, lu):
    algorithm = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
    controller = QuotaController(
        model, extra_starts=[algorithm.get_hyperparameters()]
    )
    system = QuotaSystem(algorithm, controller)
    decision = system.configure_static(lq, lu)
    result = system.process(workload)
    return result.mean_query_response_time() * 1e3, decision.beta


def test_ablation_calibration_quality(benchmark, report):
    report(banner("Ablation: calibration quality of the tau constants"))
    spec = get_dataset("dblp")
    window = scoped(4.0, 8.0)
    # contended cells (~0.6-0.8 load at the default configuration): the
    # value of good constants only shows when queueing delay matters
    base = spec.lambda_q
    cells = (
        ("query-heavy", base * 6, base * 3),
        ("update-heavy", base * 3, base * 6),
    )

    def experiment():
        graph = spec.build(seed=9)
        probe = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)

        calibrated = calibrated_cost_model(probe, num_queries=4, rng=19)
        single = cost_model_for(probe).with_taus(
            calibrate_taus(
                probe, num_queries=4, probe_scales=(1.0,), rng=19
            )
        )
        rng = np.random.default_rng(20)
        noisy_taus = {
            k: v * float(rng.uniform(0.5, 2.0))
            for k, v in calibrated.taus.items()
        }
        noisy = calibrated.with_taus(noisy_taus)
        unit = calibrated.without_constants()

        tables = {}
        for tag, lq, lu in cells:
            workload = generate_workload(graph, lq, lu, window, rng=18)
            rows = []
            baseline_alg = build_algorithm(
                "Agenda", graph.copy(), spec.walk_cap, seed=0
            )
            base_r = (
                QuotaSystem(baseline_alg).process(workload)
                .mean_query_response_time() * 1e3
            )
            rows.append(["Agenda default (no Quota)", base_r, "-"])
            for label, model in (
                ("calibrated (multi-probe)", calibrated),
                ("single-probe", single),
                ("noisy taus (0.5x-2x)", noisy),
                ("unit taus (Quota-c)", unit),
            ):
                r, beta = run_with_model(model, spec, graph, workload, lq, lu)
                rows.append([label, r, f"r_max={beta['r_max']:.1e}"])
            tables[(tag, lq, lu)] = rows
        return tables

    tables = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for (tag, lq, lu), rows in tables.items():
        report(
            format_table(
                ["model", "R (ms)", "chosen config"],
                rows,
                title=f"dblp-like {tag}, lq={lq:g}, lu={lu:g}",
            )
        )
    report(
        "\nnote: unit taus (Quota-c) are erratic — see the Figure 4 "
        "bench for the dynamic setting, where they are consistently "
        "inferior (the paper's conclusion)."
    )
