"""Table VII reproduction: extreme light and heavy load situations.

Webs-like dataset with the paper's (lambda_q, lambda_u) grid scaled to
this substrate: three light cells (low query rate, rising update rate)
and three heavy cells (high query rate, rising update rate — pushing
into the unstable regime).

Expected shape: Quota-Agenda <= Agenda on every cell; in the overloaded
cells both grow large but Quota stays ahead by minimizing the traffic
intensity (Lemma 1 objective).
"""

from __future__ import annotations

from benchmarks.common import SystemSpec, run_system, scoped
from repro.evaluation import banner, format_table, get_dataset
from repro.queueing import generate_workload


def test_table7_extreme(benchmark, report):
    report(banner("Table VII: extreme light/heavy load (response ms)"))
    spec = get_dataset("webs")
    window = scoped(3.0, 8.0)
    base_q = spec.lambda_q
    cells = [
        (base_q / 4, base_q / 4),
        (base_q / 4, base_q / 2),
        (base_q / 4, base_q),
        (base_q * 5, base_q * 5),
        (base_q * 5, base_q * 10),
        (base_q * 5, base_q * 20),
    ]

    def experiment():
        rows = []
        for lq, lu in cells:
            graph = spec.build(seed=6)
            workload = generate_workload(graph, lq, lu, window, rng=13)
            agenda = run_system(
                SystemSpec("Agenda", "Agenda"), spec, graph, workload, lq, lu
            )
            quota = run_system(
                SystemSpec("Quota", "Agenda", use_quota=True),
                spec, graph, workload, lq, lu,
            )
            rows.append(
                [
                    f"lq={lq:g} lu={lu:g}",
                    agenda.mean_query_response_time() * 1e3,
                    quota.mean_query_response_time() * 1e3,
                ]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(
        format_table(
            ["cell", "Agenda", "Quota"],
            rows,
            title="webs-like dataset",
        )
    )
    wins = sum(1 for _, a, q in rows if q <= a * 1.1)
    report(f"-> Quota within/below Agenda (10% tol) on {wins}/{len(rows)} cells")
