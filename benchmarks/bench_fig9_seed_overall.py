"""Figure 9 reproduction: Seed's effect on overall load and on the
response-time distribution.

(a) Lemma 3's first claim: the overall performance
    lambda_q t_q + lambda_u t_u is unchanged by reordering — measured
    across the rate sweep on the Webs-like dataset with epsilon_r=0.5.
(b) The distribution shift: at lambda_q = lambda_u, the histogram of
    query response times moves mass toward short responses after Seed.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import scoped
from repro.core.system import QuotaSystem
from repro.evaluation import (
    ascii_histogram,
    banner,
    format_series,
    format_table,
    get_dataset,
)
from repro.evaluation.runner import build_algorithm
from repro.queueing import generate_workload

EPSILON_R = 0.5


def run_pair(spec, graph, workload):
    plain_alg = build_algorithm("FORA+", graph.copy(), spec.walk_cap, seed=0)
    seed_alg = build_algorithm("FORA+", graph.copy(), spec.walk_cap, seed=0)
    plain = QuotaSystem(plain_alg).process(workload)
    seeded = QuotaSystem(seed_alg, epsilon_r=EPSILON_R).process(workload)
    return plain, seeded


def test_fig9_seed_overall(benchmark, report):
    report(banner("Figure 9: Seed vs overall performance + distribution"))
    spec = get_dataset("webs")
    window = scoped(3.0, 8.0)
    lq = spec.lambda_q
    ratios = scoped((0.5, 1.0, 2.0), (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0))

    def experiment():
        loads = {"before Seed": [], "after Seed": []}
        for ratio in ratios:
            graph = spec.build(seed=0)
            workload = generate_workload(
                graph, lq, lq * ratio, window, rng=9
            )
            plain, seeded = run_pair(spec, graph, workload)
            loads["before Seed"].append(plain.empirical_load())
            loads["after Seed"].append(seeded.empirical_load())
        # (b) distribution at lambda_u = lambda_q
        graph = spec.build(seed=0)
        workload = generate_workload(graph, lq, lq, window, rng=10)
        plain, seeded = run_pair(spec, graph, workload)
        return loads, plain.query_response_times(), seeded.query_response_times()

    loads, plain_times, seed_times = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    report(
        format_series(
            "lambda_u/lambda_q",
            [f"{r:g}" for r in ratios],
            loads,
            title="(a) overall load lambda_q*t_q + lambda_u*t_u",
            float_format="{:.3f}",
        )
    )
    gaps = [
        abs(a - b) / max(a, 1e-12)
        for a, b in zip(loads["before Seed"], loads["after Seed"])
    ]
    report(f"-> max relative load change after Seed: {max(gaps) * 100:.1f}%\n")

    edges = np.percentile(plain_times, [0, 25, 50, 75, 90, 100])
    edges = np.unique(edges)
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        plain_frac = float(
            np.mean((plain_times >= lo) & (plain_times < hi))
        )
        seed_frac = float(np.mean((seed_times >= lo) & (seed_times < hi)))
        rows.append(
            [f"[{lo * 1e3:.1f}, {hi * 1e3:.1f}) ms", plain_frac, seed_frac]
        )
    report(
        format_table(
            ["response-time bucket", "before Seed", "after Seed"],
            rows,
            title="(b) response-time distribution (fractions)",
            float_format="{:.3f}",
        )
    )
    report(
        f"-> mean response before {plain_times.mean() * 1e3:.2f} ms, "
        f"after {seed_times.mean() * 1e3:.2f} ms"
    )
    report("\nresponse times before Seed (ms):")
    report(ascii_histogram((plain_times * 1e3).tolist(), bins=6, width=30))
    report("response times after Seed (ms):")
    report(ascii_histogram((seed_times * 1e3).tolist(), bins=6, width=30))
