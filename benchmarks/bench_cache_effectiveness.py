"""Extension bench: the staleness-bounded PPR result cache.

Three views of ``repro.cache`` (ISSUE 4):

1. **Modeled sweep** — FCFS replays over Zipf query skew x update rate
   x ``epsilon_c``, cached vs no-cache, on the virtual clock.  Modeled
   entries carry no vector, so staleness charging falls back to the
   conservative degree-only bound (``pi_hat = 1``) — orders of
   magnitude above typical true mass, so this table *understates* the
   cache (over-eviction by design, never under-protection).  Read the
   shape, not the absolute hit rates.
2. **Measured serving** — the real :class:`~repro.serving.
   ServingRuntime` worker pool, cached vs no-cache, with value-aware
   charging (the cached vector prices its own staleness).  Includes a
   deliberately cache-hostile regime (uniform sources, tight budget,
   update-heavy) reported alongside the win.
3. **Exactness oracle** — an exact power-iteration algorithm serves a
   skewed workload through the cached path; every answer (hit or miss)
   is compared against a fresh recompute on the current graph.  The
   normalized-L1 drift of a served answer must stay within
   ``epsilon_c`` + the base algorithm's error (~0 here).  Violations
   fail the bench.

Honest notes: hits are near-free, so the win grows with skew and with
the query cost; with uniform sources over many nodes, or budgets
tighter than the update stream, the cache buys nothing — those cells
are printed, not hidden.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import scoped
from repro.cache import PPRCache, ReplayCache
from repro.core.system import QuotaSystem
from repro.evaluation import banner, format_table
from repro.evaluation.runner import build_algorithm
from repro.graph import erdos_renyi_graph
from repro.obs import MetricsRegistry
from repro.ppr import ppr_exact
from repro.ppr.base import DynamicPPRAlgorithm, PPRParams, PPRVector
from repro.queueing import FCFSQueueSimulator, generate_workload
from repro.queueing.workload import QUERY, Request, Workload
from repro.serving import ServingRuntime

ALPHA = 0.2
HIT_SERVICE_S = 50e-6  # modeled dict-lookup cost of a cache hit


def zipf_skewed(workload: Workload, n_nodes: int, skew: float, rng) -> Workload:
    """Redraw query sources with popularity ~ 1/rank^skew (0 = uniform)."""
    if skew <= 0.0:
        return workload
    weights = 1.0 / np.arange(1, n_nodes + 1) ** skew
    weights /= weights.sum()
    requests = [
        Request(r.arrival, QUERY, source=int(rng.choice(n_nodes, p=weights)))
        if r.kind == QUERY
        else r
        for r in workload.requests
    ]
    return Workload(requests, workload.t_end, workload.lambda_q, workload.lambda_u)


# ----------------------------------------------------------------------
# 1. modeled sweep
# ----------------------------------------------------------------------
def test_cache_modeled_sweep(benchmark, report):
    report(banner("Cache (modeled): Zipf skew x update rate x epsilon_c"))
    t_q, t_u = 5e-3, 1e-3
    lambda_q = 40.0
    window = scoped(20.0, 60.0)
    skews = (0.0, 1.0, 1.5)
    update_rates = (10.0, 40.0, 160.0)
    epsilons = (0.2, 1.0, 5.0)

    def service_fn(request):
        return t_q if request.kind == QUERY else t_u

    def experiment():
        rows = []
        for skew in skews:
            for lambda_u in update_rates:
                graph = erdos_renyi_graph(400, 16000, directed=True, seed=7)
                base = generate_workload(
                    graph, lambda_q, lambda_u, window, rng=11
                )
                workload = zipf_skewed(
                    base, graph.num_nodes, skew, np.random.default_rng(13)
                )
                plain = FCFSQueueSimulator(service_fn, modeled=True).run(
                    workload
                )
                r_plain = plain.mean_query_response_time() * 1e3
                for eps in epsilons:
                    metrics = MetricsRegistry()
                    cache = PPRCache(
                        capacity=256, epsilon_c=eps, metrics=metrics
                    )
                    replay = ReplayCache(
                        cache,
                        graph.copy(),
                        alpha=ALPHA,
                        hit_service_s=HIT_SERVICE_S,
                    )
                    cached = FCFSQueueSimulator(
                        service_fn, modeled=True, cache=replay
                    ).run(workload)
                    rows.append(
                        [
                            f"s={skew:.1f} lu={lambda_u:.0f} eps={eps}",
                            r_plain,
                            cached.mean_query_response_time() * 1e3,
                            replay.hit_rate(),
                            float(
                                metrics.counter(
                                    "cache.evictions_staleness"
                                ).value
                            ),
                        ]
                    )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(
        format_table(
            ["regime", "R_q off (ms)", "R_q on (ms)", "hit rate", "stale evict"],
            rows,
            float_format="{:.3f}",
        )
    )
    report(
        "note: modeled entries store no vector -> degree-only staleness\n"
        "bound (pi_hat = 1) over-evicts; measured rows below are the\n"
        "realistic view.  Cells with hit rate ~0 show the cache buying\n"
        "nothing at low skew or tight budgets - expected, not a bug."
    )


# ----------------------------------------------------------------------
# 2. measured serving
# ----------------------------------------------------------------------
def test_cache_measured_serving(benchmark, report):
    report(banner("Cache (measured): ServingRuntime cached vs no-cache"))
    n, m = scoped((300, 6000), (800, 24000))
    queries = scoped(300, 1200)
    update_ratio = 0.5  # moderate update traffic

    def run_once(skew, epsilon_c, use_cache, seed=5):
        graph = erdos_renyi_graph(n, m, directed=True, seed=seed)
        algorithm = build_algorithm("Agenda", graph, 1500, seed=0)
        lambda_q, window = 50.0, queries / 50.0
        base = generate_workload(
            graph, lambda_q, lambda_q * update_ratio, window, rng=seed + 1
        )
        workload = zipf_skewed(
            base, graph.num_nodes, skew, np.random.default_rng(seed + 2)
        )
        metrics = MetricsRegistry()
        cache = (
            PPRCache(capacity=512, epsilon_c=epsilon_c, metrics=metrics)
            if use_cache
            else None
        )
        runtime = ServingRuntime(
            algorithm,
            workers=2,
            queue_capacity=len(workload) + 8,
            cache=cache,
            metrics=metrics,
        ).start()
        try:
            served = runtime.serve(workload)
        finally:
            runtime.stop()
        return (
            served.mean_query_response_s() * 1e3,
            served.wall_s,
            served.cache_hit_rate(),
            float(metrics.counter("cache.evictions_staleness").value),
        )

    def experiment():
        rows = []
        # the win regime: skewed queries, workable budget
        for skew, eps in ((1.2, 0.5), (1.2, 0.1)):
            off = run_once(skew, eps, use_cache=False)
            on = run_once(skew, eps, use_cache=True)
            rows.append(
                [f"skew={skew} eps={eps}", off[0], on[0], on[2], on[3]]
            )
        # the honest no-win regime: uniform sources, tight budget
        off = run_once(0.0, 0.01, use_cache=False)
        on = run_once(0.0, 0.01, use_cache=True)
        rows.append(["uniform eps=0.01", off[0], on[0], on[2], on[3]])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(
        format_table(
            [
                "regime",
                "R_q off (ms)",
                "R_q on (ms)",
                "hit rate",
                "stale evict",
            ],
            rows,
            float_format="{:.3f}",
        )
    )
    win = rows[0][1] > rows[0][2]
    report(
        f"skewed regime win: {'YES' if win else 'NO'} "
        f"(hit rate {rows[0][3]:.2f}); uniform/tight-budget row shows "
        f"hit rate {rows[-1][3]:.2f} - the cache cannot help there and "
        f"costs only the lookup."
    )


# ----------------------------------------------------------------------
# 3. exactness oracle
# ----------------------------------------------------------------------
class ExactPPR(DynamicPPRAlgorithm):
    """Deterministic oracle algorithm: exact PPR, toggle updates."""

    name = "exact"

    def query(self, source: int) -> PPRVector:
        return ppr_exact(self.graph, source, alpha=self.params.alpha)

    def apply_update(self, update):
        return update.apply(self.graph)


def l1_distance(served, fresh) -> float:
    nodes = set(served.as_dict()) | set(fresh.as_dict())
    return float(
        sum(abs(served.get(n, 0.0) - fresh.get(n, 0.0)) for n in nodes)
    )


def test_cache_exactness_oracle(benchmark, report):
    report(banner("Cache oracle: served answers vs fresh recompute"))
    epsilons = (0.05, 0.2, 0.5)
    window = scoped(3.0, 8.0)

    def run_oracle(epsilon_c, seed=3):
        graph = erdos_renyi_graph(60, 360, directed=True, seed=seed)
        algorithm = ExactPPR(graph, PPRParams(alpha=ALPHA))
        metrics = MetricsRegistry()
        cache = PPRCache(capacity=128, epsilon_c=epsilon_c, metrics=metrics)
        system = QuotaSystem(algorithm, cache=cache, metrics=metrics)
        base = generate_workload(graph, 30.0, 15.0, window, rng=seed + 1)
        workload = zipf_skewed(
            base, 20, 1.2, np.random.default_rng(seed + 2)
        )
        violations = 0
        worst = 0.0

        def callback(request, estimate, pending):
            nonlocal violations, worst
            fresh = ppr_exact(graph, request.source, alpha=ALPHA)
            drift = l1_distance(estimate, fresh)
            worst = max(worst, drift / epsilon_c)
            if drift > epsilon_c + 1e-9:
                violations += 1

        system.process(workload, query_callback=callback)
        return [
            epsilon_c,
            violations,
            worst,
            cache.hit_rate(),
            float(metrics.counter("cache.evictions_staleness").value),
        ]

    def experiment():
        return [run_oracle(eps) for eps in epsilons]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(
        format_table(
            [
                "epsilon_c",
                "violations",
                "worst drift/eps",
                "hit rate",
                "stale evict",
            ],
            rows,
            float_format="{:.3f}",
        )
    )
    total = sum(int(row[1]) for row in rows)
    report(f"total violations: {total} (must be 0)")
    assert total == 0, "cache served an answer outside its staleness budget"
