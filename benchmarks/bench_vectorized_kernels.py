"""Extension bench: vectorized frontier/batched push kernels.

Three views of ``repro.ppr.kernels`` (the ``engine=`` switch) plus the
``repro.ppr.dispatch`` router on top:

1. **Equivalence oracle** — >= 1000 randomized cases (packed and
   slack-patched CSR views, dangling nodes, swept ``r_max``) where the
   vectorized kernels must match the pure-Python synchronous reference
   bit-for-bit, every batched row must equal its single-source push,
   executing *any* dispatcher routing decision (whole batch, locality
   split, sequential fallback — resident budget randomized per case)
   must reproduce the same bits, and the scipy SpMM power backend must
   match a pure-Python jj-order sweep oracle bit-for-bit, chunked and
   whole.  Any mismatch fails the bench.
2. **Frontier throughput** — scalar deque push vs the whole-frontier
   kernel on BA/ER graphs (up to n = 20k).  Both schedules run to the
   same residue threshold; the table reports wall-clock per query,
   pushes/s, and the speedup.  The scalar deque does *fewer* pushes
   (Gauss–Seidel propagates fresh residue immediately), so the honest
   headline is wall-clock, with push counts printed alongside.
3. **Batched dispatch** — serving B same-snapshot sources as one
   ``(B, n)`` batch vs B sequential frontier pushes, across batch
   sizes including B >= 8.  One sweep loop drives all rows, so per-
   sweep numpy dispatch is amortized — a real win while the B x n
   state stays cache-resident (small/mid graphs).  On large graphs
   sequential pushes keep one cache-hot (n,) state each and the batch
   loses it back; those honest losing cells are reported too, along
   with an ``auto`` column that executes the ``KernelDispatcher``
   routing decision for the same cell and must track the better
   static engine everywhere (the cost model caps the effective batch
   to the cache-resident budget and splits the rest by locality).

Run as a script (CI smoke: ``python benchmarks/bench_vectorized_kernels.py
--quick``) or through pytest (``pytest benchmarks/bench_vectorized_kernels.py``).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from benchmarks.common import bench_seed, scoped
from repro.evaluation import banner, format_table
from repro.graph import DynamicGraph, barabasi_albert_graph, erdos_renyi_graph
from repro.obs import MetricsRegistry
from repro.ppr import csr_view, forward_push
from repro.ppr.dispatch import (
    DispatchCostModel,
    KernelDispatcher,
    scipy_probe,
)
from repro.ppr.kernels import (
    batched_frontier_push,
    frontier_push,
    reference_frontier_push,
)

ALPHA = 0.2


def make_dispatcher(resident_bytes: int | None = None) -> KernelDispatcher:
    """A dispatcher isolated from process env and global metrics.

    The oracle passes a randomized ``resident_bytes`` (with the
    profitability floor lowered so sequential / split / whole-batch
    decisions all occur on tiny graphs); the speedup table omits it to
    bench the real default routing.
    """
    cost = (
        DispatchCostModel(
            resident_bytes=resident_bytes,
            min_push_work=0.0,
            min_resident_rows=1,
        )
        if resident_bytes is not None
        else DispatchCostModel()
    )
    return KernelDispatcher(cost_model=cost, env={}, metrics=MetricsRegistry())


def execute_push_decision(view, decision, sources, r_max):
    """Execute a push routing decision; (B, n) results in input order."""
    b = len(sources)
    reserve = np.zeros((b, view.n), dtype=np.float64)
    residue = np.zeros((b, view.n), dtype=np.float64)
    if decision.backend != "batched":
        for i, s in enumerate(sources):
            single = frontier_push(view, int(s), ALPHA, r_max)
            reserve[i] = single.reserve
            residue[i] = single.residue
        return reserve, residue, 0
    arr = np.asarray(sources, dtype=np.int64)
    chunks = decision.chunks
    if chunks is None:
        chunks = (np.arange(b, dtype=np.int64),)
    sweeps = 0
    for chunk in chunks:
        part = batched_frontier_push(view, arr[chunk], ALPHA, r_max)
        reserve[chunk] = part.reserve
        residue[chunk] = part.residue
        sweeps = max(sweeps, part.sweeps)
    return reserve, residue, sweeps


# ----------------------------------------------------------------------
# 1. equivalence oracle
# ----------------------------------------------------------------------
def random_case_view(rng) -> tuple:
    """A random small graph view: packed or slack-patched, with
    isolated and dangling nodes left in on purpose."""
    n = int(rng.integers(4, 16))
    graph = DynamicGraph(num_nodes=n)
    for _ in range(int(rng.integers(0, 4 * n))):
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    if rng.random() < 0.5:
        # materialize the packed store, then patch rows in place so the
        # fresh view carries slack slots (indptr[t+1] != end of row t)
        csr_view(graph)
        for _ in range(int(rng.integers(1, n))):
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)
    return csr_view(graph), n


def spmm_jj_order_sweeps(matrix_t, sources, n: int, stop_mass: float):
    """Pure-Python power sweeps in scipy's per-element jj order.

    scipy's CSR matvec/SpMM kernels accumulate each output element
    sequentially over the row's jj index range, so this loop performs
    the exact IEEE-754 operations of the C kernels — the scalar oracle
    of the ``spmm`` backend.
    """
    indptr, indices, data = matrix_t.indptr, matrix_t.indices, matrix_t.data

    def matvec(x):
        out = np.zeros(n, dtype=np.float64)
        for i in range(n):
            acc = 0.0
            for jj in range(indptr[i], indptr[i + 1]):
                acc += data[jj] * x[indices[jj]]
            out[i] = acc
        return out

    results = []
    for s in sources:
        residue = np.zeros(n, dtype=np.float64)
        residue[int(s)] = 1.0
        reserve = np.zeros(n, dtype=np.float64)
        sweeps = 0
        while residue.sum() > stop_mass and sweeps < 200:
            reserve = reserve + ALPHA * residue
            residue = (1.0 - ALPHA) * matvec(residue)
            sweeps += 1
        results.append((reserve, residue))
    return results


def spmm_case_matches(view, sources, rng) -> bool:
    """One SpMM oracle case: route a power-phase batch (randomized
    resident budget, so whole-batch and chunked decisions both occur),
    execute it through the scipy kernels, and compare bit-for-bit to
    the pure-Python jj-order sweeps."""
    from repro.ppr.power_iteration import transition_matrix

    matrix_t = transition_matrix(view).T.tocsr()
    stop_mass = 1e-3
    resident_rows = int(rng.integers(1, len(sources) + 2))
    dispatcher = make_dispatcher(2 * 8 * view.n * resident_rows)
    decision = dispatcher.route_power(view, len(sources))
    if decision.backend != "spmm":  # pragma: no cover - scipy absent
        return True
    arr = np.asarray(sources, dtype=np.int64)
    chunks = decision.chunks
    if chunks is None:
        chunks = (np.arange(arr.size, dtype=np.int64),)
    got: list = [None] * arr.size
    for chunk in chunks:
        cols = arr[chunk]
        residues = np.zeros((view.n, cols.size), dtype=np.float64)
        residues[cols, np.arange(cols.size)] = 1.0
        reserves = np.zeros((view.n, cols.size), dtype=np.float64)
        sweeps = 0
        while residues[:, 0].sum() > stop_mass and sweeps < 200:
            reserves += ALPHA * residues
            residues = (1.0 - ALPHA) * (matrix_t @ residues)
            sweeps += 1
        for j, pos in enumerate(chunk):
            got[pos] = (reserves[:, j], residues[:, j])
    want = spmm_jj_order_sweeps(matrix_t, arr, view.n, stop_mass)
    return all(
        np.array_equal(g_res, w_res) and np.array_equal(g_rem, w_rem)
        for (g_res, g_rem), (w_res, w_rem) in zip(got, want)
    )


def equivalence_oracle(cases: int, seed: int) -> tuple[int, int]:
    """Run ``cases`` randomized comparisons; return (cases, mismatches)."""
    rng = np.random.default_rng(seed)
    spmm_ok = scipy_probe()
    mismatches = 0
    for _ in range(cases):
        view, n = random_case_view(rng)
        source = int(rng.integers(n))
        r_max = 10.0 ** float(rng.uniform(-6, -1))
        got = frontier_push(view, source, ALPHA, r_max)
        want = reference_frontier_push(view, source, ALPHA, r_max)
        if not (
            np.array_equal(got.reserve, want.reserve)
            and np.array_equal(got.residue, want.residue)
            and got.pushes == want.pushes
        ):
            mismatches += 1
            continue
        b = int(rng.integers(1, 5))
        sources = rng.integers(0, n, size=b)
        batch = batched_frontier_push(view, sources, ALPHA, r_max)
        row_ok = True
        for row, row_source in enumerate(sources):
            single = frontier_push(view, int(row_source), ALPHA, r_max)
            if not (
                np.array_equal(batch.reserve[row], single.reserve)
                and np.array_equal(batch.residue[row], single.residue)
            ):
                mismatches += 1
                row_ok = False
                break
        if not row_ok:
            continue
        # dispatcher routing must be result-invariant: a randomized
        # resident budget forces whole-batch, locality-split, and
        # sequential decisions across cases, and executing any of them
        # must reproduce the batch kernel's bits exactly
        resident_rows = int(rng.integers(1, b + 3))
        dispatcher = make_dispatcher(2 * 8 * view.n * resident_rows)
        decision = dispatcher.route_push(
            view, b, r_max, alpha=ALPHA, source_indices=sources
        )
        routed_res, routed_rem, _ = execute_push_decision(
            view, decision, sources, r_max
        )
        if not (
            np.array_equal(routed_res, batch.reserve)
            and np.array_equal(routed_rem, batch.residue)
        ):
            mismatches += 1
            continue
        if spmm_ok and not spmm_case_matches(view, sources, rng):
            mismatches += 1
    return cases, mismatches


# ----------------------------------------------------------------------
# 2. frontier throughput
# ----------------------------------------------------------------------
def throughput_graphs(quick: bool):
    seed = bench_seed()
    if quick:
        yield "BA n=20k", barabasi_albert_graph(20_000, attach=3, seed=seed)
        yield "ER n=10k", erdos_renyi_graph(
            10_000, m=50_000, directed=True, seed=seed + 1
        )
    else:
        yield "BA n=20k", barabasi_albert_graph(20_000, attach=3, seed=seed)
        yield "BA n=50k", barabasi_albert_graph(50_000, attach=3, seed=seed)
        yield "ER n=10k", erdos_renyi_graph(
            10_000, m=50_000, directed=True, seed=seed + 1
        )
        yield "ER n=40k", erdos_renyi_graph(
            40_000, m=200_000, directed=True, seed=seed + 1
        )


def time_kernel(kernel, view, sources, r_max) -> tuple[float, int]:
    """Total wall seconds and pushes for ``sources`` single queries."""
    started = time.perf_counter()
    pushes = 0
    for source in sources:
        pushes += kernel(view, source, ALPHA, r_max).pushes
    return time.perf_counter() - started, pushes


def frontier_throughput(quick: bool, r_max: float = 1e-5) -> list[list]:
    rng = np.random.default_rng(bench_seed() + 3)
    num_sources = 2 if quick else 5
    rows = []
    for label, graph in throughput_graphs(quick):
        view = csr_view(graph)
        sources = [int(s) for s in rng.integers(view.n, size=num_sources)]
        t_scalar, p_scalar = time_kernel(forward_push, view, sources, r_max)
        t_frontier, p_frontier = time_kernel(
            frontier_push, view, sources, r_max
        )
        rows.append(
            [
                label,
                t_scalar / num_sources * 1e3,
                t_frontier / num_sources * 1e3,
                t_scalar / t_frontier,
                p_scalar / max(t_scalar, 1e-12),
                p_frontier / max(t_frontier, 1e-12),
            ]
        )
    return rows


# ----------------------------------------------------------------------
# 3. batched dispatch
# ----------------------------------------------------------------------
def batched_speedup(quick: bool) -> list[list]:
    """Sequential pushes vs one (B, n) batch vs the dispatcher.

    The batch kernel wins while the B x n state fits in cache (small
    and mid-size graphs) and loses it back on large graphs, where B
    sequential pushes each keep a single cache-hot (n,) state while
    the batch streams the whole matrix every sweep.  Both regimes are
    reported.  The ``auto`` column executes the dispatcher's routing
    decision for the same cell — the cost model caps the effective
    batch to what stays cache-resident and splits by locality, so
    ``auto`` tracks the better static engine in every regime instead
    of inheriting the large-graph losing cells.
    """
    seed = bench_seed()
    rng = np.random.default_rng(seed + 4)
    # (label, graph, r_max): small graphs push to a moderate r_max so
    # the per-sweep numpy dispatch overhead being amortized is real
    # work, not noise; the large graph keeps the throughput-section
    # r_max to show the cache-residency cliff at the same setting.
    cells = [
        (
            "BA n=500",
            barabasi_albert_graph(500, attach=3, seed=seed),
            1e-4,
        ),
        (
            "BA n=2k",
            barabasi_albert_graph(2_000, attach=3, seed=seed),
            1e-4,
        ),
        (
            "BA n=20k",
            barabasi_albert_graph(20_000, attach=3, seed=seed),
            1e-5,
        ),
    ]
    if not quick:
        cells.insert(
            2,
            (
                "ER n=5k",
                erdos_renyi_graph(
                    5_000, m=25_000, directed=True, seed=seed + 1
                ),
                1e-4,
            ),
        )
    batch_sizes = (8, 16) if quick else (2, 4, 8, 16, 32)
    repeats = 3 if quick else 5
    dispatcher = make_dispatcher()
    rows = []
    for label, graph, r_max in cells:
        view = csr_view(graph)
        for b in batch_sizes:
            sources = rng.integers(view.n, size=b)
            decision = dispatcher.route_push(
                view, b, r_max, alpha=ALPHA, source_indices=sources
            )
            t_sequential = []
            t_batched = []
            t_auto = []
            for _ in range(repeats):
                started = time.perf_counter()
                for source in sources:
                    frontier_push(view, int(source), ALPHA, r_max)
                t_sequential.append(time.perf_counter() - started)
                started = time.perf_counter()
                batch = batched_frontier_push(view, sources, ALPHA, r_max)
                t_batched.append(time.perf_counter() - started)
                started = time.perf_counter()
                execute_push_decision(view, decision, sources, r_max)
                t_auto.append(time.perf_counter() - started)
            best_seq = min(t_sequential)
            best_batch = min(t_batched)
            best_auto = min(t_auto)
            best_static = min(best_seq, best_batch)
            rows.append(
                [
                    f"{label} B={b}",
                    best_seq * 1e3,
                    best_batch * 1e3,
                    best_auto * 1e3,
                    f"B_eff={decision.effective_batch}"
                    + (
                        f" x{len(decision.chunks)}"
                        if decision.chunks is not None
                        and len(decision.chunks) > 1
                        else ""
                    ),
                    best_static / max(best_auto, 1e-12),
                    batch.sweeps,
                ]
            )
    return rows


# ----------------------------------------------------------------------
# shared reporting
# ----------------------------------------------------------------------
def run_all(quick: bool, reporter, cases: int | None = None) -> int:
    """Run the three sections; return the oracle mismatch count."""
    if cases is None:
        cases = 1000 if quick else 2000
    reporter(banner("Kernel oracle: vectorized vs pure-Python reference"))
    ran, mismatches = equivalence_oracle(cases, bench_seed() + 17)
    spmm_note = (
        "incl. routed decisions + scipy SpMM vs jj-order oracle"
        if scipy_probe()
        else "incl. routed decisions; scipy absent, SpMM path skipped"
    )
    reporter(
        f"{ran} randomized cases (packed + slack views, dangling nodes, "
        f"{spmm_note}): "
        f"{mismatches} bit-for-bit mismatches (must be 0)"
    )

    reporter(banner("Frontier kernel: scalar deque vs whole-frontier"))
    reporter(
        format_table(
            [
                "graph",
                "scalar (ms/q)",
                "frontier (ms/q)",
                "speedup",
                "scalar pushes/s",
                "frontier pushes/s",
            ],
            frontier_throughput(quick),
            float_format="{:,.2f}",
        )
    )
    reporter(
        "note: the deque schedule needs fewer pushes (Gauss-Seidel) but\n"
        "pays Python per push; the frontier kernel pays numpy per sweep."
    )

    reporter(
        banner("Batched kernel: sequential vs (B, n) batch vs dispatcher")
    )
    reporter(
        format_table(
            [
                "cell",
                "sequential (ms)",
                "batched (ms)",
                "auto (ms)",
                "auto route",
                "auto vs best",
                "sweeps",
            ],
            batched_speedup(quick),
            float_format="{:,.2f}",
        )
    )
    reporter(
        "note: the full batch wins while the B x n state is cache-resident\n"
        "(small/mid graphs, B >= 8) and loses it back on large graphs; the\n"
        "dispatcher caps the effective batch to the resident budget and\n"
        "splits by source locality, so `auto vs best` stays ~1.0 in every\n"
        "regime (>= 0.9 allowing timer noise) instead of inheriting the\n"
        "n=20k losing cells."
    )
    return mismatches


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_vectorized_kernels(benchmark, report):
    quick = scoped(True, False)
    mismatches = benchmark.pedantic(
        lambda: run_all(quick, report), rounds=1, iterations=1
    )
    assert mismatches == 0, (
        f"{mismatches} kernel results diverged from the scalar oracle"
    )


# ----------------------------------------------------------------------
# script entry point (CI smoke)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run: fewer graphs/batch sizes (oracle stays >= 1000 cases)",
    )
    parser.add_argument(
        "--cases", type=int, default=None,
        help="override the number of oracle cases",
    )
    args = parser.parse_args(argv)
    mismatches = run_all(args.quick, print, cases=args.cases)
    if mismatches:
        print(f"FAIL: {mismatches} oracle mismatches", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
