"""Table VIII reproduction: per-sub-process cost balance.

LJ-like dataset (quick scope: DBLP-like), lambda_u in {lambda_q/2,
2 lambda_q}; Agenda at its default vs Quota-Agenda, with the mean cost
of every sub-process (Forward Push, Lazy Index Update, Random Walk,
Reverse Push, Index Inaccuracy Update) printed alongside the mean
query/update cost and the final response time.

Expected shape: Quota *re-balances* — it typically spends more on
Forward/Reverse Push and less on the Lazy Index Update than the
default, buying a lower response time (the paper's 86% headline case).
"""

from __future__ import annotations

from benchmarks.common import SystemSpec, scoped
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.core.system import QuotaSystem
from repro.evaluation import banner, format_table, get_dataset
from repro.evaluation.runner import build_algorithm
from repro.queueing import generate_workload
from repro.queueing.workload import QUERY, UPDATE

SUBPROCESSES = (
    "Forward Push",
    "Lazy Index Update",
    "Random Walk",
    "Reverse Push",
    "Index Inaccuracy Update",
)


def run_cell(spec, graph, workload, lq, lu, use_quota):
    algorithm = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
    controller = None
    if use_quota:
        controller = QuotaController(
            calibrated_cost_model(algorithm, num_queries=4, rng=14),
            extra_starts=[algorithm.get_hyperparameters()],
        )
    system = QuotaSystem(algorithm, controller)
    if controller is not None:
        system.configure_static(lq, lu)
    algorithm.timers.reset()
    result = system.process(workload)
    queries = max(len(result.of_kind(QUERY)), 1)
    updates = max(len(result.of_kind(UPDATE)), 1)
    per_query = ("Forward Push", "Lazy Index Update", "Random Walk")
    costs = {}
    for name in SUBPROCESSES:
        divisor = queries if name in per_query else updates
        costs[name] = algorithm.timers.total(name) / divisor * 1e3
    costs["Query cost"] = result.mean_service_time(QUERY) * 1e3
    costs["Update cost"] = result.mean_service_time(UPDATE) * 1e3
    costs["Response time"] = result.mean_query_response_time() * 1e3
    return costs


def test_table8_cost_balance(benchmark, report):
    report(banner("Table VIII: sub-process cost balance (ms)"))
    dataset = scoped("dblp", "lj")
    spec = get_dataset(dataset)
    window = scoped(4.0, 10.0)
    lq = spec.lambda_q
    lambda_us = (lq / 2, lq * 2)

    def experiment():
        out = {}
        for lu in lambda_us:
            graph = spec.build(seed=7)
            workload = generate_workload(graph, lq, lu, window, rng=15)
            out[lu] = (
                run_cell(spec, graph, workload, lq, lu, use_quota=False),
                run_cell(spec, graph, workload, lq, lu, use_quota=True),
            )
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    metrics = list(SUBPROCESSES) + ["Query cost", "Update cost", "Response time"]
    headers = ["sub-process"]
    for lu in lambda_us:
        headers += [f"Agenda lu={lu:g}", f"Quota lu={lu:g}"]
    rows = []
    for metric in metrics:
        row = [metric]
        for lu in lambda_us:
            agenda, quota = results[lu]
            row += [agenda[metric], quota[metric]]
        rows.append(row)
    report(format_table(headers, rows, title=f"dataset: {dataset}"))
    for lu in lambda_us:
        agenda, quota = results[lu]
        from repro.evaluation import improvement_percent

        report(
            f"-> lu={lu:g}: response time reduced "
            f"{improvement_percent(agenda['Response time'], quota['Response time']):.1f}%"
        )
