"""Ablation: choice of the stable-regime response-time estimate.

The paper uses the Eq. 2 (Pollaczek–Khinchine style) estimate but notes
other queueing estimates "are also applicable".  This bench configures
the same Agenda deployment with all three implemented estimates —
Eq. 2 ("pk"), plain M/M/1, and the Kingman heavy-traffic form — on a
moderately and a heavily loaded cell.

Expected shape: all three land in the same neighbourhood (they agree to
first order), with the heavy-traffic form at its best near saturation;
the choice of estimate matters far less than having calibrated costs at
all (see the calibration ablation).
"""

from __future__ import annotations

from benchmarks.common import scoped
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.core.system import QuotaSystem
from repro.evaluation import banner, format_table, get_dataset
from repro.evaluation.runner import build_algorithm
from repro.queueing import generate_workload

MODELS = ("pk", "mm1", "heavy-traffic")


def run_model(name, model, spec, graph, workload, lq, lu):
    algorithm = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
    controller = QuotaController(
        model,
        extra_starts=[algorithm.get_hyperparameters()],
        response_model=name,
    )
    system = QuotaSystem(algorithm, controller)
    decision = system.configure_static(lq, lu)
    result = system.process(workload)
    return (
        result.mean_query_response_time() * 1e3,
        decision.beta["r_max"],
    )


def test_ablation_response_models(benchmark, report):
    report(banner("Ablation: Eq.2 vs M/M/1 vs heavy-traffic estimate"))
    spec = get_dataset("dblp")
    window = scoped(4.0, 8.0)
    base = spec.lambda_q
    cells = ((base * 2, base * 2), (base * 4, base * 4))

    def experiment():
        graph = spec.build(seed=12)
        probe = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
        model = calibrated_cost_model(probe, num_queries=4, rng=22)
        tables = {}
        for lq, lu in cells:
            workload = generate_workload(graph, lq, lu, window, rng=23)
            baseline = build_algorithm(
                "Agenda", graph.copy(), spec.walk_cap, seed=0
            )
            base_r = (
                QuotaSystem(baseline).process(workload)
                .mean_query_response_time() * 1e3
            )
            rows = [["Agenda default", base_r, "-"]]
            for name in MODELS:
                r, r_max = run_model(
                    name, model, spec, graph, workload, lq, lu
                )
                rows.append([f"Quota ({name})", r, f"{r_max:.2e}"])
            tables[(lq, lu)] = rows
        return tables

    tables = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for (lq, lu), rows in tables.items():
        report(
            format_table(
                ["configuration", "mean R (ms)", "chosen r_max"],
                rows,
                title=f"dblp-like, lq={lq:g}, lu={lu:g}",
            )
        )
