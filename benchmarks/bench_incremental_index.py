"""Benchmark: incremental walk-index maintenance vs full rebuild.

The claim under test (ISSUE 10 / ROADMAP): FIRM-style affected-walk
resampling (:mod:`repro.ppr.incremental`) shrinks the index-based
methods' per-update cost t̃_u by >= 10x on BA n = 20k single-edge
updates, without distorting the walk distribution — which in turn lets
the Quota optimizer select an index-based method under update-heavy
traffic where the rebuild-only candidate set could not.

Three sections, all asserted:

1. **Update cost** — mean per-update maintenance time for FORA+ in
   ``rebuild`` mode vs ``incremental`` mode vs index-free FORA over the
   same seeded toggle stream on BA n = 20k.  Asserts the >= 10x gap.
2. **Distributional oracle** — after the stream, the incrementally
   patched index must (a) pass the ``validate_edge_map`` structural
   audit with zero violations, (b) match the exact per-node walk-budget
   invariant, and (c) stay within a CI-style two-sample bound of a
   fresh rebuild's aggregate terminal histogram.  Violation count is
   asserted zero and recorded in the JSON.
3. **Quota crossover** — calibrate FORA / FORA+ / FORA+inc cost models
   on the same graph, then sweep rising lambda_u.  At the update-heavy
   end the rebuild-only candidate set must fail to field a *stable*
   index-based method while the set with FORA+inc selects one
   (argmin predicted response time).

Honesty notes: this container is single-core, so absolute times are
pessimistic; the compared quantity is the *ratio* on identical seeded
streams, which is hardware-neutral.  The incremental path does pure
Python map bookkeeping per affected walk while the rebuild path is
fully vectorized numpy — the measured gap therefore *understates* the
algorithmic O(affected / m·r_max·K) advantage.

Results land in ``BENCH_incremental_index.json`` at the repo root via
``benchmarks/common.py``.  Run directly or through pytest (the
bench-smoke CI job does the latter at quick scope).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

import numpy as np

from benchmarks.common import bench_seed, scoped, write_bench_json
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.graph import barabasi_albert_graph
from repro.graph.updates import random_update_stream
from repro.obs import get_metrics
from repro.ppr import ALGORITHMS, PPRParams
from repro.ppr.random_walk import WalkIndex

#: acceptance floor for t̃_u(rebuild) / t̃_u(incremental)
SPEEDUP_FLOOR = 10.0

N_NODES = 20_000
WALK_CAP = 64
#: fixed push threshold: keeps the index around ~4 walks/node so the
#: rebuild cost is the honest O(m r_max K) quantity, not the
#: min-1-walk-per-node floor the default r_max would hit at this n
R_MAX = 0.01


def _graph():
    return barabasi_albert_graph(N_NODES, attach=3, seed=bench_seed())


def _algorithm(name: str, graph):
    algorithm = ALGORITHMS[name](
        graph, PPRParams(walk_cap=WALK_CAP), r_max=R_MAX
    )
    algorithm.seed(bench_seed() + 1)
    algorithm.view  # warm the CSR store so no system pays the cold build
    return algorithm


def _resampled_counter() -> int:
    counters = get_metrics().snapshot()["counters"]
    return int(counters.get("index.walks_resampled", 0))


def _updates(graph, count):
    return random_update_stream(
        graph, count, rng=random.Random(bench_seed() + 2)
    )


@dataclass(slots=True)
class MaintenanceRow:
    system: str
    updates: int
    mean_update_s: float
    total_update_s: float
    walks_resampled_per_update: float | None


# ----------------------------------------------------------------------
# section 1+2: update cost + distributional oracle
# ----------------------------------------------------------------------
def run_update_cost(num_updates: int) -> tuple[list[MaintenanceRow], dict]:
    rows: list[MaintenanceRow] = []

    # rebuild-mode FORA+ (the paper's O(m r_max K) per-update cost)
    graph = _graph()
    rebuild = _algorithm("FORA+", graph)
    for update in _updates(graph, num_updates):
        rebuild.apply_update(update)
    rebuild_s = (
        rebuild.timers.total("Graph Update")
        + rebuild.timers.total("Index Build")
    )
    rows.append(
        MaintenanceRow(
            "FORA+ (rebuild)",
            num_updates,
            rebuild_s / num_updates,
            rebuild_s,
            float(rebuild._walk_index().total_walks),
        )
    )

    # incremental FORA+ on the identical stream
    graph = _graph()
    incremental = _algorithm("FORA+inc", graph)
    index = incremental._walk_index()
    resampled_before = _resampled_counter()
    for update in _updates(graph, num_updates):
        incremental.apply_update(update)
    view = incremental.view
    incremental_s = (
        incremental.timers.total("Graph Update")
        + incremental.timers.total("Index Update")
    )
    resampled = _resampled_counter() - resampled_before
    rows.append(
        MaintenanceRow(
            "FORA+ (incremental)",
            num_updates,
            incremental_s / num_updates,
            incremental_s,
            resampled / num_updates,
        )
    )

    # index-free FORA baseline (t_u = graph update only)
    graph2 = _graph()
    fora = _algorithm("FORA", graph2)
    for update in _updates(graph2, num_updates):
        fora.apply_update(update)
    fora_s = fora.timers.total("Graph Update")
    rows.append(
        MaintenanceRow(
            "FORA (index-free)",
            num_updates,
            fora_s / num_updates,
            fora_s,
            None,
        )
    )

    # ---- distributional oracle on the incremental index ----
    violations: list[str] = list(index.validate_edge_map(view))
    expected_counts = np.maximum(
        np.ceil(
            index.walks_per_unit * np.maximum(view.out_deg, 1)
        ).astype(np.int64),
        1,
    )
    if not (index.counts == expected_counts).all():
        violations.append("per-node walk budget diverged from out-degrees")

    oracle = WalkIndex(
        view,
        incremental.params.alpha,
        index.walks_per_unit,
        np.random.default_rng(bench_seed() + 77),
    )
    if not (oracle.counts == index.counts).all():
        violations.append("oracle row sizing mismatch")
    h_inc = _aggregate_histogram(index, view)
    h_ora = _aggregate_histogram(oracle, view)
    worst = _two_sample_excess(h_inc, h_ora)
    if worst > 0.0:
        violations.append(
            f"terminal histogram exceeds the two-sample bound by {worst}"
        )

    oracle_report = {
        "violations": violations,
        "two_sample_excess": worst,
        "total_walks": int(index.total_walks),
    }
    return rows, oracle_report


def _aggregate_histogram(index: WalkIndex, view) -> np.ndarray:
    terms = index.terminals[
        np.concatenate(
            [
                np.arange(
                    int(index.offsets[i]),
                    int(index.offsets[i]) + int(index.counts[i]),
                )
                for i in range(view.n)
            ]
        )
    ]
    return np.bincount(terms, minlength=view.n).astype(np.float64)


def _two_sample_excess(h1: np.ndarray, h2: np.ndarray, z: float = 6.0) -> float:
    n1, n2 = h1.sum(), h2.sum()
    pooled = (h1 + h2) / (n1 + n2)
    bound = z * np.sqrt(
        np.maximum(pooled * (1.0 - pooled), 1e-12) * (1.0 / n1 + 1.0 / n2)
    )
    return float(np.max(np.abs(h1 / n1 - h2 / n2) - bound))


# ----------------------------------------------------------------------
# section 3: Quota crossover under rising lambda_u
# ----------------------------------------------------------------------
def run_quota_crossover(rebuild_mean_s: float) -> dict:
    """Calibrate real cost models and sweep rising update rates.

    ``rebuild_mean_s`` anchors the sweep: the top rate is chosen so
    rebuild maintenance alone would need several seconds of work per
    second of traffic (hopelessly unstable), which is exactly the
    regime the paper says forces index-free methods — unless the
    incremental row exists.
    """
    graph = _graph()
    candidates = ("FORA", "FORA+", "FORA+inc")
    models = {}
    for name in candidates:
        algorithm = _algorithm(name, graph.copy())
        models[name] = calibrated_cost_model(
            algorithm, num_queries=2, rng=bench_seed() + 11
        )

    lambda_q = 5.0
    top_lambda_u = 5.0 / max(rebuild_mean_s, 1e-9)
    sweep = []
    for scale in (0.001, 0.01, 0.1, 1.0):
        lambda_u = top_lambda_u * scale
        cell = {"lambda_q": lambda_q, "lambda_u": lambda_u, "systems": {}}
        best_old, best_old_t = None, float("inf")
        best_new, best_new_t = None, float("inf")
        for name, model in models.items():
            decision = QuotaController(model).configure(lambda_q, lambda_u)
            predicted = decision.predicted_response_time
            cell["systems"][name] = {
                "stable": decision.is_stable,
                "predicted_response_s": predicted,
                "rho": decision.traffic_intensity,
            }
            if decision.is_stable and predicted < best_new_t:
                best_new, best_new_t = name, predicted
            if (
                name != "FORA+inc"
                and decision.is_stable
                and predicted < best_old_t
            ):
                best_old, best_old_t = name, predicted
        cell["winner_without_incremental"] = best_old
        cell["winner_with_incremental"] = best_new
        sweep.append(cell)
    return {"sweep": sweep, "top_lambda_u": top_lambda_u}


def run_bench() -> dict:
    num_updates = scoped(15, 100)
    rows, oracle_report = run_update_cost(num_updates)
    by_name = {row.system: row for row in rows}
    rebuild_mean = by_name["FORA+ (rebuild)"].mean_update_s
    incremental_mean = by_name["FORA+ (incremental)"].mean_update_s
    speedup = rebuild_mean / max(incremental_mean, 1e-12)
    quota = run_quota_crossover(rebuild_mean)
    return {
        "graph": {"kind": "barabasi-albert", "n": N_NODES, "attach": 3},
        "maintenance": [asdict(row) for row in rows],
        "rebuild_over_incremental_speedup": speedup,
        "oracle": oracle_report,
        "quota": quota,
    }


# ----------------------------------------------------------------------
# pytest entry points (bench-smoke job) + CLI
# ----------------------------------------------------------------------
_RESULTS: dict | None = None


def _results() -> dict:
    global _RESULTS
    if _RESULTS is None:
        _RESULTS = run_bench()
        write_bench_json("incremental_index", _RESULTS)
    return _RESULTS


def test_incremental_update_cost_at_least_10x_below_rebuild():
    results = _results()
    assert results["rebuild_over_incremental_speedup"] >= SPEEDUP_FLOOR


def test_distributional_oracle_zero_violations():
    results = _results()
    assert results["oracle"]["violations"] == []


def test_quota_selects_index_based_method_under_churn():
    """At some update-heavy rate the rebuild-only candidate set falls
    back to index-free FORA (or fields nothing stable) while the set
    with the incremental row selects index-based FORA+inc.  Asserted as
    existence over the sweep: the single most extreme rate is a
    calibration-noise-sensitive FORA-vs-FORA+inc photo finish, but the
    crossover band itself is robust."""
    results = _results()
    crossover = [
        cell
        for cell in results["quota"]["sweep"]
        if cell["winner_without_incremental"] in (None, "FORA")
        and cell["winner_with_incremental"] == "FORA+inc"
    ]
    assert crossover, (
        "no update-heavy rate flipped the Quota solve to an "
        "index-based method"
    )


def main() -> None:
    results = _results()
    print(f"BA n={N_NODES} — per-update maintenance cost:")
    for row in results["maintenance"]:
        print(
            f"  {row['system']:<22} mean {row['mean_update_s'] * 1e3:9.3f} ms"
            f"  (n={row['updates']})"
        )
    print(
        "rebuild / incremental speedup: "
        f"{results['rebuild_over_incremental_speedup']:.1f}x "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    print(f"oracle violations: {len(results['oracle']['violations'])}")
    for cell in results["quota"]["sweep"]:
        print(
            f"  lambda_u={cell['lambda_u']:10.1f}/s  "
            f"winner without inc: {cell['winner_without_incremental']}, "
            f"with inc: {cell['winner_with_incremental']}"
        )


if __name__ == "__main__":
    main()
