"""Ablation: why *bounded* reordering (Seed) instead of naive priority.

Section VI motivates Seed as a relaxation of FCFS that keeps the query
error bounded.  The obvious alternative — always prioritize queries and
defer updates indefinitely — minimizes response time but serves queries
on an arbitrarily stale graph.  This bench quantifies the trade-off on
an update-heavy FORA+ cell:

* FCFS              (epsilon_r = 0)      — exact, slowest
* Seed              (epsilon_r = 0.5)    — bounded staleness
* Unbounded priority (epsilon_r = inf)   — updates deferred forever
  (applied only during idle time / at the end of the window)

Expected shape: response time FCFS >= Seed >= unbounded; *measured*
query error versus the live graph is small for FCFS and Seed and
clearly larger for unbounded priority — the quantitative case for
Seed's error budget.
"""

from __future__ import annotations

import math

import numpy as np

from benchmarks.common import scoped
from repro.core.system import QuotaSystem
from repro.evaluation import banner, format_table
from repro.evaluation.datasets import DatasetSpec
from repro.evaluation.runner import build_algorithm
from repro.ppr import ppr_exact
from repro.queueing import generate_workload
from repro.queueing.workload import UPDATE

DENSE = DatasetSpec(
    name="dblp-dense", nodes=300, edges=9000, directed=True, kind="er",
    lambda_q=20.0, window=4.0, walk_cap=2000,
)

POLICIES = (
    ("FCFS (epsilon_r=0)", 0.0),
    ("Seed (epsilon_r=0.5)", 0.5),
    ("Unbounded priority (inf)", math.inf),
)


def live_graph_error(graph_now, estimate, alpha):
    """Max-abs error of an estimate against exact PPR on the graph as
    it should be *right now* (every arrived update applied)."""
    exact = ppr_exact(graph_now, estimate.source, alpha=alpha)
    return max(
        abs(estimate.get(v, 0.0) - exact.get(v, 0.0))
        for v in graph_now.nodes()
    )


def run_policy(epsilon_r, workload, window):
    graph = DENSE.build(seed=11)
    algorithm = build_algorithm("FORA+", graph, DENSE.walk_cap, seed=0)
    system = QuotaSystem(algorithm, epsilon_r=epsilon_r)

    # live shadow: all updates that have *arrived* by each query
    shadow = DENSE.build(seed=11)
    update_iter = iter(
        [r for r in workload if r.kind == UPDATE]
    )
    pending_updates = list(update_iter)
    cursor = {"i": 0}
    errors: list[float] = []
    sample = {"n": 0}

    def callback(request, estimate, pending):
        while (
            cursor["i"] < len(pending_updates)
            and pending_updates[cursor["i"]].arrival <= request.arrival
        ):
            pending_updates[cursor["i"]].update.apply(shadow)
            cursor["i"] += 1
        sample["n"] += 1
        if sample["n"] % 8 == 0:
            errors.append(
                live_graph_error(shadow, estimate, algorithm.params.alpha)
            )

    result = system.process(workload, query_callback=callback)
    return (
        result.mean_query_response_time() * 1e3,
        float(np.mean(errors)) if errors else 0.0,
        float(np.max(errors)) if errors else 0.0,
    )


def test_ablation_scheduling_policies(benchmark, report):
    report(banner("Ablation: FCFS vs Seed vs unbounded query priority"))
    window = scoped(3.0, 6.0)
    lq = DENSE.lambda_q
    lu = lq * 4  # update-heavy: deferral has something to win

    def experiment():
        graph = DENSE.build(seed=11)
        workload = generate_workload(graph, lq, lu, window, rng=21)
        return [
            [label, *run_policy(eps, workload, window)]
            for label, eps in POLICIES
        ]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(
        format_table(
            ["policy", "mean R (ms)", "mean live-graph err",
             "max live-graph err"],
            rows,
            title=f"FORA+ on dense ER (lq={lq:g}, lu={lu:g})",
            float_format="{:.4f}",
        )
    )
    report(
        "-> Seed captures most of the reordering latency win while "
        "keeping a *provable* error budget; unbounded priority is "
        "slightly faster but offers no bound at all — its measured "
        "error is benign here only because uniform random updates "
        "barely shift PPR (the paper's own observation that true "
        "error sits far below the theoretical guarantee)."
    )
