"""Figure 5 reproduction: Quota generality on FORA(+) and SpeedPPR(+).

On the DBLP-like dataset, sweep the update/query ratio and compare each
of the four Push+Walk algorithms at its paper-default hyperparameters
against its Quota-configured counterpart.

Expected shape (paper §VIII-F): every pairing improves — around 25% for
index-free FORA (pure query-time tuning), up to ~40% for FORA+ whose
default collapses under update-heavy mixes, and up to ~27% / ~34% for
SpeedPPR / SpeedPPR+.
"""

from __future__ import annotations

from benchmarks.common import (
    RATIO_LABELS,
    SystemSpec,
    dataset_workload,
    ratio_sweep,
    run_system,
)
from repro.evaluation import banner, format_series, improvement_percent

ALGORITHMS = ("FORA", "FORA+", "SpeedPPR", "SpeedPPR+")


SEEDS = (0, 1)  # average replays; near-saturation cells jitter


def run_algorithm(name: str):
    ratios = ratio_sweep()
    default_spec = SystemSpec(name, name)
    quota_spec = SystemSpec(f"Quota-{name}", name, use_quota=True)
    series = {name: [], f"Quota-{name}": []}
    for ratio in ratios:
        base_sum = quota_sum = 0.0
        for seed in SEEDS:
            spec, graph, workload, lq, lu = dataset_workload(
                "dblp", ratio, seed=seed
            )
            base = run_system(
                default_spec, spec, graph, workload, lq, lu, seed=seed
            )
            quota = run_system(
                quota_spec, spec, graph, workload, lq, lu, seed=seed
            )
            base_sum += base.mean_query_response_time() * 1e3
            quota_sum += quota.mean_query_response_time() * 1e3
        series[name].append(base_sum / len(SEEDS))
        series[f"Quota-{name}"].append(quota_sum / len(SEEDS))
    labels = [RATIO_LABELS[r] for r in ratios]
    return labels, series


def test_fig5_fora_speedppr(benchmark, report):
    report(banner("Figure 5: Quota on FORA / FORA+ / SpeedPPR / SpeedPPR+"))

    def experiment():
        return {name: run_algorithm(name) for name in ALGORITHMS}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for name, (labels, series) in results.items():
        report(
            format_series(
                "lambda_u/lambda_q",
                labels,
                series,
                title=f"{name} on dblp — response time (ms)",
                float_format="{:.2f}",
            )
        )
        base = series[name]
        quota = series[f"Quota-{name}"]
        improvements = [
            improvement_percent(b, q) for b, q in zip(base, quota)
        ]
        report(
            f"-> mean improvement {sum(improvements) / len(improvements):.1f}%"
            f", best {max(improvements):.1f}%\n"
        )
