"""Figure 4 reproduction: evolving workloads + the Quota-c ablation.

Five dynamic rate patterns on the DBLP-like dataset; response time is
tracked per 10-second tranche for Agenda (default), Quota (online
re-optimization every 1 s), and Quota-c (same loop but the cost model
ignores the hidden constants).  Empirical absolute PPR error is sampled
alongside to confirm tuning does not degrade accuracy.

Expected shape: Quota tracks the drifting rates and stays below Agenda;
Quota-c picks inferior configurations; all three keep comparable,
small, empirical error.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import scoped
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.core.system import QuotaSystem
from repro.evaluation import (
    AccuracySummary,
    banner,
    format_series,
    get_dataset,
)
from repro.evaluation.runner import build_algorithm
from repro.queueing import dynamic_pattern_segments, generate_segmented_workload
from repro.queueing.workload import QUERY, UPDATE

PATTERNS = (
    "query-inclined",
    "balanced",
    "update-inclined",
    "update-declined",
    "query-declined",
)
TRANCHE = 10.0


def tranche_means(result, total_time):
    buckets = int(np.ceil(total_time / TRANCHE))
    sums = np.zeros(buckets)
    counts = np.zeros(buckets)
    for c in result.completed:
        if c.kind != QUERY:
            continue
        b = min(int(c.arrival // TRANCHE), buckets - 1)
        sums[b] += c.response_time
        counts[b] += 1
    return [float(s / n) if n else 0.0 for s, n in zip(sums, counts)]


def run_pattern(pattern: str, total_time: float, seed: int = 0):
    spec = get_dataset("dblp")
    graph = spec.build(seed=seed)
    # The paper's absolute rates (10->30 queries/s vs ~50 ms C++ Agenda
    # queries on DBLP) put the queue under real contention; re-anchor
    # to this substrate's ~2.5 ms queries the same way (DESIGN.md §3).
    base = spec.lambda_q
    segments = dynamic_pattern_segments(
        pattern, total_time, rng=seed,
        q_range=(2.0 * base, 8.0 * base),
        u_range=(1.0 * base, 4.0 * base),
        q_fixed=1.0 * base,
        u_fixed=1.0 * base,
    )
    workload = generate_segmented_workload(graph, segments, rng=seed + 1)

    shadow = graph.copy()
    for request in workload:
        if request.kind == UPDATE:
            request.update.apply(shadow)

    series: dict[str, list[float]] = {}
    errors: dict[str, float] = {}
    variants = (
        ("Agenda", False, False),
        ("Quota", True, False),
        ("Quota-c", True, True),
    )
    for label, use_quota, drop_constants in variants:
        algorithm = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=seed)
        controller = None
        reopt = None
        if use_quota:
            model = calibrated_cost_model(algorithm, num_queries=4, rng=seed + 2)
            if drop_constants:
                model = model.without_constants()
            controller = QuotaController(
                model, extra_starts=[algorithm.get_hyperparameters()]
            )
            reopt = 1.0
        system = QuotaSystem(algorithm, controller, reoptimize_every=reopt)

        samples: list[float] = []
        counter = {"n": 0}

        def callback(request, estimate, pending):
            counter["n"] += 1
            if counter["n"] % 25 == 0:
                summary = AccuracySummary.compare(
                    estimate, shadow, algorithm.params.alpha
                )
                samples.append(summary.max_absolute_error)

        result = system.process(workload, query_callback=callback)
        series[label] = [v * 1e3 for v in tranche_means(result, total_time)]
        errors[label] = float(np.mean(samples)) if samples else 0.0
    return series, errors, total_time


def test_fig4_dynamic_patterns(benchmark, report):
    report(banner("Figure 4: dynamic workloads (response time per tranche)"))
    total_time = scoped(20.0, 60.0)
    patterns = scoped(PATTERNS[:3], PATTERNS)

    def experiment():
        return {p: run_pattern(p, total_time) for p in patterns}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for pattern, (series, errors, t) in results.items():
        windows = [
            f"{int(i * TRANCHE)}-{int((i + 1) * TRANCHE)}s"
            for i in range(int(np.ceil(t / TRANCHE)))
        ]
        report(
            format_series(
                "window",
                windows,
                series,
                title=f"pattern: {pattern} — response time (ms)",
                float_format="{:.2f}",
            )
        )
        report(
            "empirical max-abs error: "
            + ", ".join(f"{k}={v:.4f}" for k, v in errors.items())
            + "\n"
        )
