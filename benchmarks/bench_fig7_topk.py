"""Figure 7 reproduction: Quota on the top-k algorithms.

FORA-TopK and TopPPR on the LJ-like dataset (quick scope: DBLP-like),
default vs Quota-configured, across the update/query ratio sweep.

Expected shape (paper §VIII-G): up to ~50% (FORA-TopK) and ~33%
(TopPPR) response-time improvement — the default settings of both
methods are not QoS-optimal.
"""

from __future__ import annotations

from benchmarks.common import (
    RATIO_LABELS,
    SystemSpec,
    dataset_workload,
    ratio_sweep,
    run_system,
    scoped,
)
from repro.evaluation import banner, format_series, improvement_percent

ALGORITHMS = ("FORA-TopK", "TopPPR")


SEEDS = (0, 1)  # average replays; near-saturation cells jitter


def run_algorithm(name: str, dataset: str):
    ratios = ratio_sweep()
    series = {name: [], f"Quota-{name}": []}
    for ratio in ratios:
        base_sum = quota_sum = 0.0
        for seed in SEEDS:
            spec, graph, workload, lq, lu = dataset_workload(
                dataset, ratio, seed=seed
            )
            base = run_system(
                SystemSpec(name, name), spec, graph, workload, lq, lu,
                seed=seed,
            )
            quota = run_system(
                SystemSpec(f"Quota-{name}", name, use_quota=True),
                spec, graph, workload, lq, lu, seed=seed,
            )
            base_sum += base.mean_query_response_time() * 1e3
            quota_sum += quota.mean_query_response_time() * 1e3
        series[name].append(base_sum / len(SEEDS))
        series[f"Quota-{name}"].append(quota_sum / len(SEEDS))
    return [RATIO_LABELS[r] for r in ratios], series


def test_fig7_topk(benchmark, report):
    report(banner("Figure 7: Quota on FORA-TopK and TopPPR"))
    dataset = scoped("dblp", "lj")

    def experiment():
        return {name: run_algorithm(name, dataset) for name in ALGORITHMS}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for name, (labels, series) in results.items():
        report(
            format_series(
                "lambda_u/lambda_q",
                labels,
                series,
                title=f"{name} on {dataset} — response time (ms)",
                float_format="{:.2f}",
            )
        )
        improvements = [
            improvement_percent(b, q)
            for b, q in zip(series[name], series[f"Quota-{name}"])
        ]
        report(f"-> best improvement {max(improvements):.1f}%\n")
