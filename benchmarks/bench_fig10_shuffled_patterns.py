"""Figure 10 reproduction: dynamic patterns in shuffled order.

The appendix-F robustness check: chain several of the Figure 4 rate
patterns back-to-back in a shuffled order and confirm Quota's online
loop keeps tracking (response time stays at or below Agenda's default
throughout, accuracy preserved).
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import scoped
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.core.system import QuotaSystem
from repro.evaluation import banner, format_series, get_dataset
from repro.evaluation.runner import build_algorithm
from repro.queueing import dynamic_pattern_segments, generate_segmented_workload
from repro.queueing.workload import QUERY

TRANCHE = 10.0


def test_fig10_shuffled_patterns(benchmark, report):
    report(banner("Figure 10: shuffled dynamic patterns"))
    spec = get_dataset("dblp")
    per_pattern = scoped(15.0, 40.0)
    order = ["update-inclined", "query-declined", "balanced",
             "query-inclined", "update-declined"]
    order = order[: scoped(3, 5)]

    def experiment():
        rng = np.random.default_rng(3)
        graph = spec.build(seed=1)
        segments = []
        for pattern in order:
            segments += dynamic_pattern_segments(
                pattern, per_pattern, rng=rng
            )
        workload = generate_segmented_workload(graph, segments, rng=4)
        total = sum(s.duration for s in segments)

        series = {}
        for label, use_quota in (("Agenda", False), ("Quota", True)):
            algorithm = build_algorithm(
                "Agenda", graph.copy(), spec.walk_cap, seed=0
            )
            controller = None
            reopt = None
            if use_quota:
                controller = QuotaController(
                    calibrated_cost_model(algorithm, num_queries=4, rng=5),
                    extra_starts=[algorithm.get_hyperparameters()],
                )
                reopt = 1.0
            system = QuotaSystem(algorithm, controller, reoptimize_every=reopt)
            result = system.process(workload)
            buckets = int(np.ceil(total / TRANCHE))
            sums = np.zeros(buckets)
            counts = np.zeros(buckets)
            for c in result.completed:
                if c.kind != QUERY:
                    continue
                b = min(int(c.arrival // TRANCHE), buckets - 1)
                sums[b] += c.response_time
                counts[b] += 1
            series[label] = [
                float(s / n) * 1e3 if n else 0.0
                for s, n in zip(sums, counts)
            ]
        return series, total

    series, total = benchmark.pedantic(experiment, rounds=1, iterations=1)
    windows = [
        f"{int(i * TRANCHE)}-{int((i + 1) * TRANCHE)}s"
        for i in range(int(np.ceil(total / TRANCHE)))
    ]
    report(
        format_series(
            "window",
            windows,
            series,
            title=f"shuffled patterns {order} — response time (ms)",
            float_format="{:.2f}",
        )
    )
    means = {k: float(np.mean(v)) for k, v in series.items()}
    report(
        f"-> overall mean: Agenda {means['Agenda']:.2f} ms, "
        f"Quota {means['Quota']:.2f} ms"
    )
