"""Figure 11 reproduction: update rate evolving through the Fig. 3 sweep.

Appendix-F: instead of a fixed lambda_u, the ratio lambda_u/lambda_q
walks through {1/8 .. 8} over the window (one step per phase, phase
lengths exponential).  Quota re-optimizes online; Agenda keeps its
default.  Expected shape: Quota stays below Agenda as the mix shifts,
especially once the workload turns update-heavy.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import FULL_RATIOS, scoped
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.core.system import QuotaSystem, RateDriftDetector
from repro.evaluation import banner, format_series, get_dataset
from repro.evaluation.runner import build_algorithm
from repro.queueing import generate_segmented_workload
from repro.queueing.workload import QUERY, WorkloadSegment

TRANCHE = 10.0


def run_dataset(name: str, phase_length: float):
    spec = get_dataset(name)
    graph = spec.build(seed=2)
    lq = spec.lambda_q
    segments = [
        WorkloadSegment(phase_length, lq, lq * ratio)
        for ratio in FULL_RATIOS
    ]
    workload = generate_segmented_workload(graph, segments, rng=6)
    total = sum(s.duration for s in segments)

    series = {}
    reconfigurations = {}
    # three policies: no re-optimization (Agenda), period-based Quota,
    # and event-driven Quota (a RateDriftDetector fires reconfiguration
    # only when the observed mix leaves the configured one)
    for label in ("Agenda", "Quota", "Quota+drift"):
        algorithm = build_algorithm("Agenda", graph.copy(), spec.walk_cap, seed=0)
        controller = None
        reopt = None
        detector = None
        if label != "Agenda":
            controller = QuotaController(
                calibrated_cost_model(algorithm, num_queries=4, rng=7),
                extra_starts=[algorithm.get_hyperparameters()],
            )
        if label == "Quota":
            reopt = max(phase_length / 10.0, 0.5)
        elif label == "Quota+drift":
            detector = RateDriftDetector(
                configured_q=lq,
                configured_u=lq * FULL_RATIOS[0],
                window=max(phase_length / 2.0, 1.0),
                threshold=0.5,
            )
        system = QuotaSystem(
            algorithm,
            controller,
            reoptimize_every=reopt,
            drift_detector=detector,
        )
        result = system.process(workload)
        reconfigurations[label] = len(system.decisions)
        per_phase = []
        for i in range(len(FULL_RATIOS)):
            lo, hi = i * phase_length, (i + 1) * phase_length
            times = [
                c.response_time
                for c in result.completed
                if c.kind == QUERY and lo <= c.arrival < hi
            ]
            per_phase.append(float(np.mean(times)) * 1e3 if times else 0.0)
        series[label] = per_phase
    return series, total, reconfigurations


def test_fig11_evolving_rates(benchmark, report):
    report(banner("Figure 11: evolving update rates (ratio walks 1/8 -> 8)"))
    names = scoped(("webs",), ("webs", "dblp", "pokec", "lj"))
    phase_length = scoped(2.0, 10.0)

    def experiment():
        return {n: run_dataset(n, phase_length) for n in names}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    from benchmarks.common import RATIO_LABELS

    for name, (series, total, reconfigurations) in results.items():
        report(
            format_series(
                "phase ratio",
                [RATIO_LABELS[r] for r in FULL_RATIOS],
                series,
                title=f"{name} — response time (ms) per ratio phase",
                float_format="{:.2f}",
            )
        )
        report(
            f"-> means: Agenda {np.mean(series['Agenda']):.2f} ms, "
            f"Quota {np.mean(series['Quota']):.2f} ms, "
            f"Quota+drift {np.mean(series['Quota+drift']):.2f} ms\n"
        )
        report(
            f"-> reconfigurations: period-based "
            f"{reconfigurations['Quota']}, drift-triggered "
            f"{reconfigurations['Quota+drift']}\n"
        )
