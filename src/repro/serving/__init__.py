"""Concurrent serving runtime for PPR queries and edge updates.

The paper's replay layer (:class:`~repro.core.system.QuotaSystem`, the
queueing simulators) advances a *virtual* clock in one thread; this
package is the measured counterpart: a real worker pool executing
queries concurrently over snapshot-isolated CSR views while a single
writer applies edge updates through the incremental CSR delta log.

Components
----------
* :class:`~repro.serving.rwlock.RWLock` — write-preferring
  readers-writer lock; queries share, the writer excludes.
* :class:`~repro.serving.admission.AdmissionQueue` — bounded FIFO with
  shed-on-full backpressure and a queue-depth gauge.
* :class:`~repro.serving.runtime.ServingRuntime` — the runtime itself:
  Seed-aware dispatch (queries overtake deferred updates within the
  epsilon_r budget), idle-time draining, per-request deadline budgets,
  graceful degradation to strict FCFS when an update faults, and live
  reconfiguration from :class:`~repro.core.quota.QuotaController`
  decisions.

See docs/DEVELOPMENT.md ("The concurrent serving runtime") for the
snapshot-isolation contract and the backpressure knobs.
"""

from repro.serving.admission import (
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    AdmissionQueue,
    Ticket,
)
from repro.serving.runtime import (
    FAILED,
    OK,
    SHED,
    TIMEOUT,
    QueryFn,
    ServedRequest,
    ServingReport,
    ServingRuntime,
)
from repro.serving.rwlock import RWLock

__all__ = [
    "FAILED",
    "OK",
    "SHED",
    "SHED_DEADLINE",
    "SHED_QUEUE_FULL",
    "TIMEOUT",
    "AdmissionQueue",
    "QueryFn",
    "RWLock",
    "ServedRequest",
    "ServingReport",
    "ServingRuntime",
    "Ticket",
]
