"""ServingRuntime: concurrent query/update execution with QoS controls.

Where :class:`~repro.core.system.QuotaSystem` *models* serving on a
virtual clock in one thread, this runtime *executes* it: a pool of
worker threads serves SSPPR queries over snapshot-isolated CSR views
while edge updates funnel through a single logical writer that patches
the incremental CSR delta log (:mod:`repro.ppr.csr`).

Concurrency discipline
----------------------
* **Snapshot isolation (epoch granularity).**  All graph mutation —
  applying an update, flushing the Seed queue, rebuilding an index on
  reconfiguration — happens under the exclusive side of a
  write-preferring :class:`~repro.serving.rwlock.RWLock`; immediately
  after mutating, and still under the lock, the writer catches the CSR
  store up (``csr_view``).  Query workers hold the shared side, so
  every ``csr_view`` call they make is a pure cache hit on an
  immutable-for-the-duration snapshot: no torn adjacency reads, and
  the graph version observed under the read lock uniquely identifies
  the snapshot a query ran against (the equivalence-oracle hook the
  stress tests use).
* **Seed-aware dispatch.**  With ``epsilon_r > 0`` updates are
  deferred into a :class:`~repro.core.seed.SeedQueue` at admission
  cost only; queries overtake them until the Lemma 2 bound for their
  source exceeds the budget, at which point the dispatching worker
  becomes the writer and flushes.  Idle workers drain deferred updates
  one at a time (``flush_one``) whenever the admission queue is empty.
* **Result caching** (optional).  With a
  :class:`~repro.cache.PPRCache` attached, queries try the cache
  before taking the read lock and insert their result while still
  holding it; every writer critical section charges the cache's
  staleness tracker immediately after mutating, so served-from-cache
  answers provably stay within the ``epsilon_c`` budget of a fresh
  recompute (see docs/DEVELOPMENT.md, "The result cache").
* **Backpressure and deadlines.**  Admission is bounded
  (:class:`~repro.serving.admission.AdmissionQueue`); submission sheds
  when the queue is full, and a query popped after its deadline budget
  expired is dropped with a ``serving.timeout`` count instead of
  wasting a worker on an answer nobody is waiting for.  Updates are
  never deadline-dropped — they are state, not answers.
* **Graceful degradation.**  If an update application fails the
  failing update is surfaced as a ``failed`` record (and the
  ``serving.faults`` counter), discarded from the Seed queue with the
  degree overlay kept consistent, and the runtime falls back to strict
  FCFS (no further reordering) — correctness of what remains beats
  optimizing a queue whose invariants just proved shaky.

The GIL caveat, stated honestly: CPython threads interleave rather
than parallelize pure-Python bytecode, so measured speedups from
``workers > 1`` come only from the numpy-released portions of query
work.  The architecture (snapshot views + single writer) is what a
free-threaded or multi-process deployment needs either way, and the
runtime reports measured numbers — it never presents an interleaved
timeline as parallel (that is the simulator's
:class:`~repro.queueing.simulator.MeasuredParallelWarning` contract).
"""

from __future__ import annotations

import threading
import time
import traceback
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.cache import VECTOR, CacheKey, PPRCache, StalenessTracker, make_key
from repro.core.cost_models import BatchAwareCostModel
from repro.core.quota import QuotaController, QuotaDecision
from repro.core.seed import SeedQueue
from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.obs import MetricsRegistry, get_metrics
from repro.ppr.base import DynamicPPRAlgorithm, PPRVector
from repro.ppr.csr import csr_view
from repro.queueing.workload import QUERY, UPDATE, Request, Workload
from repro.serving.admission import (
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    AdmissionQueue,
    Ticket,
)
from repro.serving.rwlock import RWLock, wrap_mutex

#: request completed normally
OK = "ok"
#: rejected at admission (bounded queue full)
SHED = "shed"
#: dropped after its deadline budget expired while queued
TIMEOUT = "timeout"
#: execution raised; the error is carried on the record
FAILED = "failed"

#: a query executor over the live graph — must be a pure function of
#: (graph snapshot, source) to be safely shared across workers
QueryFn = Callable[[DynamicGraph, int], object]


@dataclass(slots=True)
class ServedRequest:
    """Outcome of one submitted request (wall-clock timings)."""

    request: Request
    status: str
    submitted_s: float
    started_s: float
    finished_s: float
    result: object | None = None
    #: graph version the operation observed/produced (-1 when shed);
    #: for cache hits, the version the cached result was *computed* at
    version: int = -1
    worker: int = -1
    error: str | None = None
    shed_reason: str | None = None
    #: True when the result was served from the PPR result cache
    cached: bool = False

    @property
    def kind(self) -> str:
        return self.request.kind

    @property
    def waiting_s(self) -> float:
        return max(self.started_s - self.submitted_s, 0.0)

    @property
    def response_s(self) -> float:
        return max(self.finished_s - self.submitted_s, 0.0)


@dataclass(slots=True)
class ServingReport:
    """Aggregate of one :meth:`ServingRuntime.serve` replay."""

    records: list[ServedRequest]
    wall_s: float
    workers: int
    degraded: bool
    decisions: list[QuotaDecision] = field(default_factory=list)

    def of_status(self, status: str) -> list[ServedRequest]:
        return [r for r in self.records if r.status == status]

    def completed_queries(self) -> list[ServedRequest]:
        return [
            r for r in self.records if r.kind == QUERY and r.status == OK
        ]

    def cached_queries(self) -> list[ServedRequest]:
        """Completed queries answered from the result cache."""
        return [r for r in self.completed_queries() if r.cached]

    def cache_hit_rate(self) -> float:
        """Fraction of completed queries served from cache."""
        queries = self.completed_queries()
        if not queries:
            return 0.0
        return sum(1 for r in queries if r.cached) / len(queries)

    @property
    def shed_count(self) -> int:
        return len(self.of_status(SHED))

    @property
    def timeout_count(self) -> int:
        return len(self.of_status(TIMEOUT))

    @property
    def fault_count(self) -> int:
        return len(self.of_status(FAILED))

    def query_throughput(self) -> float:
        """Completed queries per wall-clock second."""
        if self.wall_s <= 0:
            return 0.0
        return len(self.completed_queries()) / self.wall_s

    def mean_query_response_s(self) -> float:
        responses = [r.response_s for r in self.completed_queries()]
        return sum(responses) / len(responses) if responses else 0.0


class ServingRuntime:
    """A worker pool serving PPR queries and edge updates concurrently.

    Parameters
    ----------
    algorithm:
        The PPR algorithm instance (owns the graph; its
        ``apply_update`` is the single-writer mutation path).
    workers:
        Worker-thread count (k of the parallel-serving experiments).
    epsilon_r:
        Seed reorder budget; 0 keeps strict FCFS (updates apply
        inline, in admission order).
    queue_capacity:
        Admission-queue bound; submissions beyond it are shed.
    deadline_s:
        Default per-query deadline budget in seconds (None = none).
        A query still waiting past its budget is dropped.
    controller:
        Optional :class:`~repro.core.quota.QuotaController`;
        :meth:`reconfigure` applies its decisions to the live runtime
        under the write lock.
    query_fn:
        Pure query executor ``(graph, source) -> result`` shared by
        all workers.  When omitted, ``algorithm.query`` is used under
        an internal mutex — algorithm instances keep per-query scratch
        state (timers, RNG), so unguarded sharing would race; the
        mutex trades query overlap for safety on the default path.
    drain_idle:
        Apply deferred updates while the admission queue is empty.
    idle_tick_s:
        Worker poll interval when idle (also bounds stop latency).
    max_batch:
        Maximum queries coalesced into one dispatch (1 disables
        batching).  A worker that takes a query opportunistically pops
        further *consecutive* queries from the admission queue — up to
        this many, within ``batch_window_s`` — and serves them through
        ``algorithm.query_batch`` on one snapshot.  The first
        non-query ticket ends collection and is processed right after
        the batch (its FIFO position: it arrived after every query in
        the batch), so updates flush *between* batches and every row
        of a batch observes one graph version.  Best paired with an
        algorithm on the ``batched`` kernel engine; with the default
        looping ``query_batch`` it still amortizes lock traffic.
    batch_window_s:
        How long a collecting worker waits for stragglers once the
        admission queue runs empty (0 = only coalesce what is already
        queued).
    batch_model:
        Optional :class:`~repro.core.cost_models.BatchAwareCostModel`.
        When given, the runtime closes the loop the model was built
        for: after every ``tune_every`` dispatched batches it reads
        the model's *measured* batch-size distribution
        (``batch_size()``, typically the ``serving.batch_size``
        histogram mean) and the dispatcher residency cap, and retunes
        the live ``max_batch``/``batch_window_s`` — the cap bounds the
        batch at what stays cache-resident, thin measured batches
        shrink the window toward 0, and saturated batches widen it
        (up to ``2 * batch_window_s`` or 2 ms, whichever is larger).
        The constructor values act as the configured ceiling/seed;
        the live values are exported on the
        ``serving.effective_max_batch`` /
        ``serving.effective_batch_window_s`` gauges.
    tune_every:
        Batches between auto-tune evaluations (with ``batch_model``).
    cache:
        Optional :class:`~repro.cache.PPRCache`.  Queries look up
        before computing (a hit skips the read lock and the Seed flush
        check entirely — its staleness budget already covers every
        *applied* update, and the not-yet-applied deferred ones are
        invisible to a fresh recompute too) and insert after computing,
        while still under the read lock so no writer can slip a charge
        between compute and insert.  Every write path — inline update,
        forced flush, idle drain — charges the tracker inside its
        writer critical section, so a query can never observe a
        mutated graph whose updates the cache was not yet charged for.
    on_complete:
        Optional callback fired once per :class:`ServedRequest`
        appended to :attr:`records` — every terminal outcome (ok,
        shed, timeout, failed) of every submitted request, plus
        deferred-update applications.  Called *after* the records lock
        is released, but possibly inside a writer critical section
        (the deferred-flush path), so it must be fast and must never
        block or take locks that can invert the runtime's order; the
        shard worker (:mod:`repro.shard.worker`) uses it to push
        completions onto an unbounded outbound queue.  Exceptions are
        swallowed (a broken observer must not take down a worker).
    metrics:
        Observability registry (defaults to the process-wide one).
    """

    def __init__(
        self,
        algorithm: DynamicPPRAlgorithm,
        *,
        workers: int = 2,
        epsilon_r: float = 0.0,
        queue_capacity: int = 256,
        deadline_s: float | None = None,
        controller: QuotaController | None = None,
        query_fn: QueryFn | None = None,
        drain_idle: bool = True,
        idle_tick_s: float = 0.02,
        max_batch: int = 1,
        batch_window_s: float = 0.0,
        batch_model: BatchAwareCostModel | None = None,
        tune_every: int = 16,
        cache: PPRCache | None = None,
        on_complete: Callable[[ServedRequest], None] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if tune_every < 1:
            raise ValueError("tune_every must be >= 1")
        self.algorithm = algorithm
        self.workers = workers
        self.epsilon_r = epsilon_r
        self.deadline_s = deadline_s
        self.controller = controller
        self.drain_idle = drain_idle
        self.idle_tick_s = idle_tick_s
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.batch_model = batch_model
        self.tune_every = tune_every
        self.metrics = metrics if metrics is not None else get_metrics()
        # pre-resolved instrument: _fault runs inside writer critical
        # sections, where a registry lookup is off-limits (R11); a
        # resolved counter's inc() is O(1) and allocation-free
        self._fault_counter = self.metrics.counter("serving.faults")
        # live (auto-tuned) batching knobs; the constructor values are
        # the configured ceiling/seed (see class docstring)
        self._effective_max_batch = max_batch
        self._effective_window_s = batch_window_s
        self._batches_since_tune = 0  # guarded-by: self._tune_lock
        self._tune_lock = wrap_mutex(threading.Lock(), "serving.tune")
        self.decisions: list[QuotaDecision] = []
        self.records: list[ServedRequest] = []  # guarded-by: self._records_lock

        self._query_fn = query_fn
        self._on_complete = on_complete
        self._cache = cache
        self._staleness = (
            StalenessTracker(
                cache, algorithm.graph, algorithm.params.alpha
            )
            if cache is not None
            else None
        )
        # stable names feed the lock sanitizer's order graph (no-ops
        # unless REPRO_LOCK_SANITIZER=1); the established global order
        # is rwlock -> {seed, records, algo, tune, cache}
        self._rwlock = RWLock(name="serving.rwlock")
        self._seed_lock = wrap_mutex(threading.Lock(), "serving.seed")
        self._records_lock = wrap_mutex(threading.Lock(), "serving.records")
        self._algo_lock = wrap_mutex(threading.Lock(), "serving.algo")
        self._admission = AdmissionQueue(queue_capacity, self.metrics)
        self._seed_queue = SeedQueue(
            algorithm.graph, algorithm.params.alpha, epsilon_r
        )
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._degraded = False  # guarded-by: self._rwlock[write]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return bool(self._threads) and not self._stop.is_set()

    @property
    def degraded(self) -> bool:
        """True once a fault forced the fallback to strict FCFS."""
        return self._degraded

    def start(self) -> "ServingRuntime":
        if self._threads:
            raise RuntimeError("runtime already started")
        self._stop.clear()
        # warm the CSR store so the first queries hit a ready snapshot
        with self._rwlock.write_locked():
            csr_view(self.algorithm.graph)
        for wid in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(wid,),
                name=f"serving-worker-{wid}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout_s: float = 30.0, flush: bool = True) -> None:
        """Stop the pool; optionally apply still-deferred updates."""
        if flush:
            self.drain()
        self._stop.set()
        deadline = time.monotonic() + timeout_s
        for thread in self._threads:
            remaining = max(deadline - time.monotonic(), 0.0)
            thread.join(remaining)
            if thread.is_alive():
                raise RuntimeError(
                    f"worker {thread.name} failed to stop in {timeout_s}s"
                )
        self._threads.clear()

    def __enter__(self) -> "ServingRuntime":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self, request: Request, deadline_s: float | None = None
    ) -> bool:
        """Admit one request; False when shed at the admission queue.

        ``deadline_s`` overrides the runtime default budget for this
        request (queries only; updates never carry deadlines).
        """
        if not self._threads:
            raise RuntimeError("runtime is not started")
        now = time.perf_counter()
        budget = deadline_s if deadline_s is not None else self.deadline_s
        deadline = (
            now + budget
            if budget is not None and request.kind == QUERY
            else None
        )
        ticket = Ticket(request, now, deadline)
        if self._admission.offer(ticket):
            return True
        self._record(
            ServedRequest(
                request,
                SHED,
                now,
                now,
                now,
                shed_reason=SHED_QUEUE_FULL,
            )
        )
        return False

    def submit_query(
        self, source: int, deadline_s: float | None = None
    ) -> bool:
        return self.submit(
            Request(time.perf_counter(), QUERY, source=source), deadline_s
        )

    def submit_update(self, update: EdgeUpdate) -> bool:
        return self.submit(Request(time.perf_counter(), UPDATE, update=update))

    def drain(self) -> None:
        """Block until every admitted request finished, then flush the
        still-deferred updates."""
        if self._threads:
            self._admission.join()
        self._flush_deferred(forced=True)

    # ------------------------------------------------------------------
    # convenience replay
    # ------------------------------------------------------------------
    def serve(self, workload: Workload | list[Request]) -> ServingReport:
        """Feed ``workload`` through the pool as fast as it admits.

        Closed-loop replay (arrival times are ignored): measures the
        saturation throughput and per-request latencies of the real
        execution.  Returns a report over the records this call added.
        """
        first_record = len(self.records)
        started = time.perf_counter()
        for request in workload:
            self.submit(request)
        self.drain()
        wall = time.perf_counter() - started
        with self._records_lock:
            records = self.records[first_record:]
        return ServingReport(
            records=records,
            wall_s=wall,
            workers=self.workers,
            degraded=self._degraded,
            decisions=list(self.decisions),
        )

    def serve_timed(
        self,
        workload: Workload | list[Request],
        time_scale: float = 1.0,
        on_submit: Callable[[Request, float], None] | None = None,
    ) -> ServingReport:
        """Feed ``workload`` at its recorded arrival times (open loop).

        Where :meth:`serve` saturates the pool (arrival times ignored),
        this replay sleeps until each request's arrival — scaled by
        ``time_scale`` wall seconds per virtual second — so shed rate,
        deadline misses, and queue depth reflect the workload's *rate
        structure* rather than the submission loop's speed.  This is
        the replay mode the scenario fuzzer uses: a flash crowd only
        stresses admission if the spike actually arrives as a spike.

        ``on_submit(request, now_s)`` fires after each submission with
        the wall-clock submission time — the hook the drift-detector
        loop uses to monitor empirical rates and trigger
        :meth:`reconfigure` mid-replay.
        """
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        requests = (
            workload.requests
            if isinstance(workload, Workload)
            else sorted(workload, key=lambda r: r.arrival)
        )
        first_record = len(self.records)
        started = time.perf_counter()
        for request in requests:
            due = started + request.arrival * time_scale
            while True:
                remaining = due - time.perf_counter()
                if remaining <= 0:
                    break
                time.sleep(min(remaining, 0.05))
            self.submit(request)
            if on_submit is not None:
                on_submit(request, time.perf_counter() - started)
        self.drain()
        wall = time.perf_counter() - started
        with self._records_lock:
            records = self.records[first_record:]
        return ServingReport(
            records=records,
            wall_s=wall,
            workers=self.workers,
            degraded=self._degraded,
            decisions=list(self.decisions),
        )

    # ------------------------------------------------------------------
    # live reconfiguration (Quota -> runtime)
    # ------------------------------------------------------------------
    def reconfigure(
        self, lambda_q: float, lambda_u: float, quick: bool = True
    ) -> QuotaDecision | None:
        """Solve for beta at the given rates and apply it live.

        The controller's solve runs out-of-band (no lock held); only
        applying the hyperparameters — an index rebuild for
        index-based algorithms — excludes queries, mirroring
        ``QuotaSystem.charge_apply``.
        """
        if self.controller is None:
            return None
        warm = self.algorithm.get_hyperparameters()
        decision = self.controller.configure(
            lambda_q, lambda_u, warm_start=warm, quick=quick
        )
        with self._rwlock.write_locked():
            apply_started = time.perf_counter()
            self.algorithm.set_hyperparameters(**decision.beta)
            csr_view(self.algorithm.graph)
            apply_elapsed_s = time.perf_counter() - apply_started
        # R11: observe outside the write hold (registry lookups extend
        # the critical section for every reader)
        self.metrics.histogram("service.reconfigure").observe(apply_elapsed_s)
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending_updates(self) -> int:
        with self._seed_lock:
            return len(self._seed_queue)

    @property
    def queue_depth(self) -> int:
        return self._admission.depth

    @property
    def effective_max_batch(self) -> int:
        """Live batch cap (auto-tuned when a ``batch_model`` is set)."""
        return self._effective_max_batch

    @property
    def effective_batch_window_s(self) -> float:
        """Live straggler window (auto-tuned with a ``batch_model``)."""
        return self._effective_window_s

    # ------------------------------------------------------------------
    # worker internals
    # ------------------------------------------------------------------
    def _record(self, record: ServedRequest) -> None:
        with self._records_lock:
            self.records.append(record)
        if self._on_complete is not None:
            try:
                self._on_complete(record)
            except Exception:  # pragma: no cover - observer must not kill us
                pass

    def _cache_key(self, source: int) -> CacheKey:
        """Cache identity of a query under the current configuration.

        The beta signature read here may race a concurrent
        ``reconfigure`` (which swaps hyperparameters under the write
        lock); a torn read can only produce a signature that matches
        nothing — a spurious miss, never a wrong hit.
        """
        return make_key(
            source,
            self.algorithm.name,
            self.algorithm.get_hyperparameters(),
            VECTOR,
        )

    def _charge_cache(self, update: EdgeUpdate) -> None:
        """Charge one applied update (call inside the writer section)."""
        if self._staleness is not None:
            self._staleness.observe(update)

    def _worker_loop(self, wid: int) -> None:
        while not self._stop.is_set():
            ticket = self._admission.take(self.idle_tick_s)
            if ticket is None:
                if self.drain_idle:
                    self._idle_drain(wid)
                continue
            try:
                self._dispatch(ticket, wid)
            except Exception:  # pragma: no cover - defensive; never die
                self._record(
                    ServedRequest(
                        ticket.request,
                        FAILED,
                        ticket.submitted_s,
                        time.perf_counter(),
                        time.perf_counter(),
                        worker=wid,
                        error=traceback.format_exc(limit=3),
                    )
                )
                self.metrics.counter("serving.faults").inc()
            finally:
                self._admission.task_done()

    def _dispatch(self, ticket: Ticket, wid: int) -> None:
        """Route one taken ticket, coalescing queries when enabled.

        The caller (the worker loop) owns ``task_done`` for ``ticket``;
        this method owns it for every *extra* ticket it pops while
        collecting a batch, including the non-query stopper.
        """
        if ticket.request.kind != QUERY or self._effective_max_batch <= 1:
            self._process(ticket, wid)
            return
        extras, stopper = self._collect_batch()
        try:
            if extras:
                self._process_query_batch([ticket, *extras], wid)
            else:
                self._process(ticket, wid)
        finally:
            for _ in extras:
                self._admission.task_done()
            if stopper is not None:
                # arrived after every query in the batch, so running it
                # now preserves FIFO; updates therefore flush *between*
                # batches, never inside one
                try:
                    self._process(stopper, wid)
                finally:
                    self._admission.task_done()

    def _collect_batch(self) -> tuple[list[Ticket], Ticket | None]:
        """Pop up to ``max_batch - 1`` further consecutive queries.

        Collection ends at the batch cap, at the first non-query
        ticket (returned as the *stopper*), or once the admission queue
        stays empty past ``batch_window_s``.
        """
        extras: list[Ticket] = []
        stopper: Ticket | None = None
        deadline = time.perf_counter() + self._effective_window_s
        while len(extras) < self._effective_max_batch - 1:
            ticket = self._admission.poll()
            if ticket is None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0.0:
                    break
                time.sleep(min(remaining, 0.001))
                continue
            if ticket.request.kind != QUERY:
                stopper = ticket
                break
            extras.append(ticket)
        return extras, stopper

    def _process(self, ticket: Ticket, wid: int) -> None:
        request = ticket.request
        now = time.perf_counter()
        if request.kind == QUERY and ticket.expired(now):
            self.metrics.counter("serving.timeout").inc()
            self._record(
                ServedRequest(
                    request,
                    TIMEOUT,
                    ticket.submitted_s,
                    now,
                    now,
                    worker=wid,
                    shed_reason=SHED_DEADLINE,
                )
            )
            return
        if request.kind == UPDATE:
            self._process_update(ticket, wid)
        else:
            self._process_query(ticket, wid)

    # -- updates -------------------------------------------------------
    def _process_update(self, ticket: Ticket, wid: int) -> None:
        update = ticket.request.update
        assert update is not None  # UPDATE requests carry one
        if self.epsilon_r > 0.0 and not self._degraded:
            # Seed: defer at admission cost only; applied at flush time
            with self._seed_lock:
                self._seed_queue.add(update, ticket.submitted_s)
            return
        started = time.perf_counter()
        with self._rwlock.write_locked():
            try:
                resolved = self.algorithm.apply_update(update)
            except Exception as exc:
                self._fault(ticket.request, ticket.submitted_s, wid, exc)
                return
            self._charge_cache(resolved)
            version = self.algorithm.graph.version
            csr_view(self.algorithm.graph)
        finished = time.perf_counter()
        self.metrics.histogram("serving.wait").observe(
            started - ticket.submitted_s
        )
        self.metrics.histogram("service.update").observe(finished - started)
        self._record(
            ServedRequest(
                ticket.request,
                OK,
                ticket.submitted_s,
                started,
                finished,
                version=version,
                worker=wid,
            )
        )

    # -- queries -------------------------------------------------------
    def _try_cache(self, ticket: Ticket, wid: int) -> bool:
        """Serve one query from the result cache; False on a miss."""
        if self._cache is None:
            return False
        source = ticket.request.source
        assert source is not None
        lookup_started = time.perf_counter()
        entry = self._cache.lookup(self._cache_key(source))
        if entry is None:
            return False
        finished = time.perf_counter()
        self.metrics.histogram("serving.wait").observe(
            lookup_started - ticket.submitted_s
        )
        self.metrics.histogram("service.query_hit").observe(
            finished - lookup_started
        )
        self.metrics.histogram("serving.response").observe(
            finished - ticket.submitted_s
        )
        self._record(
            ServedRequest(
                ticket.request,
                OK,
                ticket.submitted_s,
                lookup_started,
                finished,
                result=entry.value,
                version=entry.version,
                worker=wid,
                cached=True,
            )
        )
        return True

    def _process_query(self, ticket: Ticket, wid: int) -> None:
        source = ticket.request.source
        assert source is not None  # QUERY requests carry one
        if self._try_cache(ticket, wid):
            return
        with self._seed_lock:
            must_flush = len(self._seed_queue) > 0 and (
                self._seed_queue.should_flush(source)
            )
        if must_flush:
            self._flush_deferred(forced=True, worker=wid)

        started = time.perf_counter()
        self._rwlock.acquire_read()
        try:
            version = self.algorithm.graph.version
            if self._query_fn is not None:
                result: object = self._query_fn(self.algorithm.graph, source)
            else:
                # default path: algorithm instances keep per-query
                # scratch state, so serialize (see class docstring)
                with self._algo_lock:
                    result = self.algorithm.query(source)
            if self._cache is not None:
                # still under the read lock: a writer cannot apply (and
                # charge) an update between this compute and the insert
                self._cache.insert(
                    self._cache_key(source),
                    result,
                    version,
                    cost_s=time.perf_counter() - started,
                    pi_estimate=(
                        result.get
                        if isinstance(result, PPRVector)
                        else None
                    ),
                )
        except Exception as exc:
            finished = time.perf_counter()
            self.metrics.counter("serving.faults").inc()
            self._record(
                ServedRequest(
                    ticket.request,
                    FAILED,
                    ticket.submitted_s,
                    started,
                    finished,
                    worker=wid,
                    error=repr(exc),
                )
            )
            return
        finally:
            self._rwlock.release_read()
        finished = time.perf_counter()
        self.metrics.histogram("serving.wait").observe(
            started - ticket.submitted_s
        )
        self.metrics.histogram("service.query").observe(finished - started)
        self.metrics.histogram("serving.response").observe(
            finished - ticket.submitted_s
        )
        self._record(
            ServedRequest(
                ticket.request,
                OK,
                ticket.submitted_s,
                started,
                finished,
                result=result,
                version=version,
                worker=wid,
            )
        )

    def _process_query_batch(self, tickets: list[Ticket], wid: int) -> None:
        """Serve a coalesced batch of queries on one graph snapshot.

        Per-ticket QoS is preserved: expired tickets are timed out and
        cache hits answered individually before the remainder executes
        as a single ``query_batch`` call under one read-lock hold.
        """
        now = time.perf_counter()
        live: list[Ticket] = []
        for ticket in tickets:
            if ticket.expired(now):
                self.metrics.counter("serving.timeout").inc()
                self._record(
                    ServedRequest(
                        ticket.request,
                        TIMEOUT,
                        ticket.submitted_s,
                        now,
                        now,
                        worker=wid,
                        shed_reason=SHED_DEADLINE,
                    )
                )
            elif not self._try_cache(ticket, wid):
                live.append(ticket)
        if not live:
            return
        sources = [t.request.source for t in live]
        assert all(s is not None for s in sources)
        with self._seed_lock:
            must_flush = len(self._seed_queue) > 0 and any(
                self._seed_queue.should_flush(s) for s in sources
            )
        if must_flush:
            self._flush_deferred(forced=True, worker=wid)

        started = time.perf_counter()
        self._rwlock.acquire_read()
        try:
            version = self.algorithm.graph.version
            if self._query_fn is not None:
                results: list[object] = [
                    self._query_fn(self.algorithm.graph, s) for s in sources
                ]
            else:
                with self._algo_lock:
                    results = list(self.algorithm.query_batch(sources))
            if self._cache is not None:
                # still under the read lock (see _process_query); the
                # batch cost is split evenly across its members
                per_query_cost = (time.perf_counter() - started) / len(live)
                for source, result in zip(sources, results):
                    self._cache.insert(
                        self._cache_key(source),
                        result,
                        version,
                        cost_s=per_query_cost,
                        pi_estimate=(
                            result.get
                            if isinstance(result, PPRVector)
                            else None
                        ),
                    )
        except Exception as exc:
            finished = time.perf_counter()
            for ticket in live:
                self.metrics.counter("serving.faults").inc()
                self._record(
                    ServedRequest(
                        ticket.request,
                        FAILED,
                        ticket.submitted_s,
                        started,
                        finished,
                        worker=wid,
                        error=repr(exc),
                    )
                )
            return
        finally:
            self._rwlock.release_read()
        finished = time.perf_counter()
        self.metrics.counter("serving.batches").inc()
        self.metrics.counter("serving.batched_queries").inc(len(live))
        self.metrics.histogram("serving.batch_size").observe(
            float(len(live))
        )
        self._maybe_retune_batching()
        self.metrics.histogram("service.query_batch").observe(
            finished - started
        )
        for ticket, result in zip(live, results):
            self.metrics.histogram("serving.wait").observe(
                started - ticket.submitted_s
            )
            self.metrics.histogram("serving.response").observe(
                finished - ticket.submitted_s
            )
            self._record(
                ServedRequest(
                    ticket.request,
                    OK,
                    ticket.submitted_s,
                    started,
                    finished,
                    result=result,
                    version=version,
                    worker=wid,
                )
            )

    # -- online batch auto-tuning --------------------------------------
    def _maybe_retune_batching(self) -> None:
        """Retune the live batching knobs every ``tune_every`` batches."""
        if self.batch_model is None:
            return
        with self._tune_lock:
            self._batches_since_tune += 1
            if self._batches_since_tune < self.tune_every:
                return
            self._batches_since_tune = 0
        self.retune_batching()

    def retune_batching(self) -> tuple[int, float]:
        """Feed the measured batch-size distribution back into admission.

        Closes the ROADMAP loop: :class:`BatchAwareCostModel` collects
        the ``serving.batch_size`` distribution but nothing read it
        back.  The live cap becomes the configured ``max_batch``
        bounded by the dispatcher's cache-residency cap for the
        current graph size; the straggler window shrinks by half when
        measured batches are too thin to amortize anything (mean
        < 2) and widens by half (bounded by ``2 * batch_window_s`` or
        2 ms) when batches saturate three quarters of the cap.
        Returns the new ``(max_batch, window_s)`` pair and exports it
        on the ``serving.effective_*`` gauges.
        """
        model = self.batch_model
        if model is None:
            return self._effective_max_batch, self._effective_window_s
        import os

        from repro.ppr.dispatch import DispatchCostModel

        cost = DispatchCostModel.from_batch_model(model).with_env(os.environ)
        n = max(self.algorithm.graph.num_nodes, 1)
        new_max = max(1, min(self.max_batch, cost.resident_cap(n)))
        measured = model.batch_size()
        window = self._effective_window_s
        window_hi = max(2.0 * self.batch_window_s, 0.002)
        if measured < 2.0:
            window *= 0.5
            if window < 1e-5:
                window = 0.0
        elif measured >= 0.75 * new_max:
            window = min(max(window * 1.5, 1e-4), window_hi)
        self._effective_max_batch = new_max
        self._effective_window_s = window
        self.metrics.gauge("serving.effective_max_batch").set(float(new_max))
        self.metrics.gauge("serving.effective_batch_window_s").set(window)
        return new_max, window

    # -- deferred-update machinery ------------------------------------
    def _flush_deferred(self, forced: bool, worker: int = -1) -> int:
        """Apply every deferred update (the writer role).  Returns the
        number applied.  Faults degrade the runtime to strict FCFS."""
        applied = 0
        flush_started = time.perf_counter()
        with self._rwlock.write_locked():
            mutated = False
            while True:
                with self._seed_lock:
                    head = self._seed_queue.peek()
                    if head is None:
                        break
                    started = time.perf_counter()
                    try:
                        item = self._seed_queue.flush_one(self.algorithm)
                    except Exception as exc:
                        failed = self._seed_queue.discard_one()
                        assert failed is not None
                        self._fault(
                            Request(0.0, UPDATE, update=failed.update),
                            failed.arrival,
                            worker,
                            exc,
                        )
                        continue
                    assert item is not None
                    self._charge_cache(item.update)
                    finished = time.perf_counter()
                    mutated = True
                    applied += 1
                    self._record(
                        ServedRequest(
                            Request(0.0, UPDATE, update=item.update),
                            OK,
                            item.arrival,
                            started,
                            finished,
                            version=self.algorithm.graph.version,
                            worker=worker,
                        )
                    )
            if mutated:
                csr_view(self.algorithm.graph)
        if applied:
            self.metrics.histogram("service.flush").observe(
                time.perf_counter() - flush_started
            )
        return applied

    def _idle_drain(self, wid: int) -> None:
        """Apply one deferred update while the admission queue idles."""
        if self.epsilon_r == 0.0 or self._degraded:
            return
        with self._seed_lock:
            if not len(self._seed_queue):
                return
        # non-blocking: if the writer side is contended, skip this tick
        if not self._rwlock.acquire_write(timeout=0.0):
            return
        update_elapsed_s: float | None = None
        try:
            with self._seed_lock:
                head = self._seed_queue.peek()
                if head is None:
                    return
                started = time.perf_counter()
                try:
                    item = self._seed_queue.flush_one(self.algorithm)
                except Exception as exc:
                    failed = self._seed_queue.discard_one()
                    assert failed is not None
                    self._fault(
                        Request(0.0, UPDATE, update=failed.update),
                        failed.arrival,
                        wid,
                        exc,
                    )
                    return
                assert item is not None
                self._charge_cache(item.update)
                finished = time.perf_counter()
                update_elapsed_s = finished - started
                self._record(
                    ServedRequest(
                        Request(0.0, UPDATE, update=item.update),
                        OK,
                        item.arrival,
                        started,
                        finished,
                        version=self.algorithm.graph.version,
                        worker=wid,
                    )
                )
            csr_view(self.algorithm.graph)
        finally:
            self._rwlock.release_write()
        # R11: observe outside the write hold (registry lookups extend
        # the critical section for every reader)
        if update_elapsed_s is not None:
            self.metrics.histogram("service.update").observe(update_elapsed_s)

    def _fault(
        self,
        request: Request,
        submitted_s: float,
        worker: int,
        exc: Exception,
    ) -> None:
        """Record a failed update and degrade to strict FCFS.

        Only called inside writer critical sections (the degradation
        flag is guarded by the write lock), hence the pre-resolved
        fault counter instead of a registry lookup.
        """
        now = time.perf_counter()
        self._fault_counter.inc()
        self._degraded = True
        self._record(
            ServedRequest(
                request,
                FAILED,
                submitted_s,
                now,
                now,
                worker=worker,
                error=repr(exc),
            )
        )
