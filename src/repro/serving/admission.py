"""Bounded admission queue with backpressure and shedding.

QoS under overload starts at admission: an unbounded queue converts
excess arrival rate into unbounded latency (the unstable regime of
Lemma 1), so the runtime bounds queue depth and *sheds* — rejects at
submission — once the bound is hit.  Shedding is the honest failure
mode: the caller learns immediately instead of waiting forever.

The queue records its depth in the ``serving.queue_depth`` gauge and
every shed in the ``serving.shed`` counter of :mod:`repro.obs`.
"""

from __future__ import annotations

import queue
import time
from dataclasses import dataclass

from repro.obs import MetricsRegistry, get_metrics
from repro.queueing.workload import Request

#: shed because the bounded admission queue was full at submission
SHED_QUEUE_FULL = "queue-full"
#: shed because the request's deadline budget expired before execution
SHED_DEADLINE = "deadline"


@dataclass(frozen=True, slots=True)
class Ticket:
    """One admitted request plus its wall-clock admission metadata.

    ``submitted_s`` and ``deadline_s`` are :func:`time.perf_counter`
    readings (absolute, monotonic); ``deadline_s`` is None when the
    request carries no deadline budget.
    """

    request: Request
    submitted_s: float
    deadline_s: float | None = None

    def expired(self, now_s: float | None = None) -> bool:
        if self.deadline_s is None:
            return False
        return (time.perf_counter() if now_s is None else now_s) > self.deadline_s


class AdmissionQueue:
    """Bounded FIFO in front of the worker pool.

    Parameters
    ----------
    capacity:
        Maximum number of waiting requests; 0 means unbounded (no
        shedding — pure backpressure-free buffering, test use only).
    metrics:
        Registry receiving the depth gauge and shed counter.
    """

    def __init__(
        self,
        capacity: int = 256,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._queue: queue.Queue[Ticket] = queue.Queue(maxsize=capacity)
        metrics = metrics if metrics is not None else get_metrics()
        self._depth = metrics.gauge("serving.queue_depth")
        self._shed = metrics.counter("serving.shed")

    # ------------------------------------------------------------------
    def offer(self, ticket: Ticket) -> bool:
        """Admit ``ticket``; False (and a shed count) when full."""
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            self._shed.inc()
            return False
        self._depth.set(self._queue.qsize())
        return True

    def take(self, timeout_s: float) -> Ticket | None:
        """Pop the oldest waiting ticket; None after ``timeout_s``."""
        try:
            ticket = self._queue.get(timeout=timeout_s)
        except queue.Empty:
            return None
        self._depth.set(self._queue.qsize())
        return ticket

    def poll(self) -> Ticket | None:
        """Pop the oldest waiting ticket without blocking; None if empty.

        Used by the batch-dispatch path to opportunistically coalesce
        already-queued queries behind the one just taken.
        """
        try:
            ticket = self._queue.get_nowait()
        except queue.Empty:
            return None
        self._depth.set(self._queue.qsize())
        return ticket

    def task_done(self) -> None:
        """Mark the most recently taken ticket as fully processed."""
        self._queue.task_done()

    def join(self) -> None:
        """Block until every admitted ticket has been processed."""
        self._queue.join()

    @property
    def depth(self) -> int:
        return self._queue.qsize()

    def __repr__(self) -> str:
        return (
            f"AdmissionQueue(depth={self.depth}, capacity={self.capacity})"
        )
