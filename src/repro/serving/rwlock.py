"""A write-preferring readers-writer lock + runtime lock sanitizer.

The serving runtime's concurrency discipline: any number of query
workers read the graph (and its incrementally maintained CSR store)
under shared access, while the single logical writer — whichever
worker is applying or flushing edge updates — holds exclusive access.

Write preference matters here: under sustained query traffic a
read-preferring lock would starve the writer, so deferred updates
would never flush and the Seed staleness bound could not be honored.
Once a writer is waiting, new readers queue behind it.

Lock ordering contract (deadlock freedom): a thread never upgrades —
it must not request exclusive access while holding shared access, and
vice versa.  The runtime acquires the RW lock *before* any internal
mutex (Seed-queue mutex, records mutex), never after.

The sanitizer
-------------
``reprolint`` rules R7-R11 check that contract statically; the
:class:`LockSanitizer` checks it dynamically.  Set
``REPRO_LOCK_SANITIZER=1`` (the CI stress job does) and every
:class:`RWLock` plus every mutex wrapped with :func:`wrap_mutex`
reports acquisitions to a process-wide sanitizer that keeps

* a per-thread stack of held locks, catching same-lock re-acquisition
  (read→write upgrade, recursive read — both deadlock under write
  preference — and recursive write/mutex holds), and
* a global acquisition-order graph keyed by lock *name*, catching
  order cycles (thread 1 takes A then B while thread 2 ever took B
  then A) the moment the second edge appears — before anyone blocks.

Violations raise :class:`LockOrderError` instead of deadlocking, so a
stress test sees a stack trace naming both lock names and the thread,
not a hung worker.  When the env flag is off the sanitizer is ``None``
everywhere and the hot path pays a single attribute check.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

#: env flag enabling the process-wide sanitizer
SANITIZER_ENV = "REPRO_LOCK_SANITIZER"

#: acquisition modes reported to the sanitizer
READ = "read"
WRITE = "write"
MUTEX = "mutex"

_anonymous = itertools.count()


class LockOrderError(RuntimeError):
    """A lock-discipline violation caught by :class:`LockSanitizer`.

    Raised *instead of blocking*, on the acquiring thread, so the test
    that triggered the violation fails with both lock names in the
    message rather than deadlocking the suite.
    """


class LockSanitizer:
    """Records per-thread lock acquisitions; raises on violations.

    Thread-safe; one instance is shared by every tracked lock so the
    order graph spans the whole process.  The graph is keyed by lock
    *name* — two RWLock instances named ``serving.rwlock`` are one
    node, which matches how the static rules qualify locks by owner
    class rather than instance.
    """

    def __init__(self, metrics: object | None = None) -> None:
        self._graph: dict[str, set[str]] = {}
        self._graph_lock = threading.Lock()
        self._tls = threading.local()
        self._metrics = metrics
        #: (violation message) history, for test assertions
        self.violations: list[str] = []

    # -- metrics -------------------------------------------------------
    def _registry(self) -> object:
        if self._metrics is None:
            from repro.obs import get_metrics

            self._metrics = get_metrics()
        return self._metrics

    def _count(self, name: str) -> None:
        self._registry().counter(name).inc()  # type: ignore[attr-defined]

    # -- per-thread stack ----------------------------------------------
    def _stack(self) -> list[tuple[str, str]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held(self) -> tuple[tuple[str, str], ...]:
        """(name, mode) pairs this thread currently holds, in order."""
        return tuple(self._stack())

    # -- hooks ----------------------------------------------------------
    def before_acquire(self, name: str, mode: str) -> None:
        """Validate an acquisition attempt; raises before it can block."""
        stack = self._stack()
        for held_name, held_mode in stack:
            if held_name == name:
                self._violation(self._self_deadlock_msg(
                    name, held_mode, mode
                ))
        if not stack:
            return
        with self._graph_lock:
            for held_name, _ in stack:
                if held_name == name:
                    continue
                edges = self._graph.setdefault(held_name, set())
                if name in edges:
                    continue
                trail = self._path(name, held_name)
                if trail is not None:
                    chain = " -> ".join([held_name, name, *trail[1:]])
                    self._violation(
                        f"lock-order cycle: thread "
                        f"'{threading.current_thread().name}' acquiring "
                        f"'{name}' [{mode}] while holding '{held_name}' "
                        f"reverses the established order {chain}"
                    )
                edges.add(name)

    def after_acquire(self, name: str, mode: str) -> None:
        self._stack().append((name, mode))
        self._count("locks.acquired")

    def after_release(self, name: str, mode: str) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == (name, mode):
                del stack[i]
                return

    # -- internals -------------------------------------------------------
    @staticmethod
    def _self_deadlock_msg(name: str, held: str, wanted: str) -> str:
        thread = threading.current_thread().name
        if held == READ and wanted == WRITE:
            why = (
                "read->write upgrade: the writer waits for its own "
                "read hold to drain"
            )
        elif held == READ and wanted == READ:
            why = (
                "recursive read: blocks behind any waiting writer "
                "under write preference"
            )
        else:
            why = f"re-acquiring a non-reentrant {held} hold"
        return (
            f"self-deadlock: thread '{thread}' acquiring '{name}' "
            f"[{wanted}] while already holding it [{held}] ({why})"
        )

    def _violation(self, message: str) -> None:
        self.violations.append(message)
        self._count("locks.violations")
        raise LockOrderError(message)

    def _path(self, start: str, goal: str) -> list[str] | None:
        """DFS path start..goal in the order graph (caller holds lock)."""
        trail = [start]
        seen = {start}

        def walk(node: str) -> bool:
            if node == goal:
                return True
            for succ in sorted(self._graph.get(node, ())):
                if succ in seen:
                    continue
                seen.add(succ)
                trail.append(succ)
                if walk(succ):
                    return True
                trail.pop()
            return False

        return trail if walk(start) else None


#: process-wide sanitizer, created on first tracked-lock construction
#: once the env flag is on (tests may swap in their own instance)
_default: LockSanitizer | None = None
_default_guard = threading.Lock()


def sanitizer_enabled() -> bool:
    """Is ``REPRO_LOCK_SANITIZER`` set to a truthy value?"""
    return os.environ.get(SANITIZER_ENV, "").strip().lower() not in (
        "",
        "0",
        "false",
        "off",
    )


def default_sanitizer() -> LockSanitizer | None:
    """The process-wide sanitizer, or None when the env flag is off."""
    if not sanitizer_enabled():
        return None
    global _default
    if _default is None:
        with _default_guard:
            if _default is None:
                _default = LockSanitizer()
    return _default


class TrackedLock:
    """A mutex wrapper reporting acquisitions to a sanitizer.

    Duck-types the :class:`threading.Lock` surface the runtime uses
    (context manager, ``acquire``/``release``, ``locked``); created by
    :func:`wrap_mutex`, never directly.
    """

    def __init__(
        self, lock: threading.Lock, name: str, sanitizer: LockSanitizer
    ) -> None:
        self._lock = lock
        self._name = name
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer.before_acquire(self._name, MUTEX)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._sanitizer.after_acquire(self._name, MUTEX)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._sanitizer.after_release(self._name, MUTEX)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedLock({self._name!r})"


def wrap_mutex(
    lock: threading.Lock,
    name: str,
    sanitizer: LockSanitizer | None = None,
) -> threading.Lock | TrackedLock:
    """Track ``lock`` under ``name`` when the sanitizer is active.

    With the sanitizer off (the default) the original lock is returned
    unchanged — zero overhead, zero behavior change.
    """
    active = sanitizer if sanitizer is not None else default_sanitizer()
    if active is None:
        return lock
    return TrackedLock(lock, name, active)


class RWLock:
    """Shared/exclusive lock, write-preferring, with optional timeouts.

    ``name`` identifies the lock in the sanitizer's order graph (one
    is generated for anonymous locks); ``sanitizer`` overrides the
    process-wide default (tests), and is ``None`` — free of overhead —
    unless ``REPRO_LOCK_SANITIZER`` is set.
    """

    def __init__(
        self,
        name: str | None = None,
        sanitizer: LockSanitizer | None = None,
    ) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self.name = name if name is not None else (
            f"rwlock-{next(_anonymous)}"
        )
        self._sanitizer = (
            sanitizer if sanitizer is not None else default_sanitizer()
        )

    # ------------------------------------------------------------------
    def acquire_read(self, timeout: float | None = None) -> bool:
        """Acquire shared access; False on timeout."""
        if self._sanitizer is not None:
            self._sanitizer.before_acquire(self.name, READ)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._writer_active or self._writers_waiting:
                if not self._wait(deadline):
                    return False
            self._readers += 1
        if self._sanitizer is not None:
            self._sanitizer.after_acquire(self.name, READ)
        return True

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()
        if self._sanitizer is not None:
            self._sanitizer.after_release(self.name, READ)

    def acquire_write(self, timeout: float | None = None) -> bool:
        """Acquire exclusive access; False on timeout."""
        if self._sanitizer is not None:
            self._sanitizer.before_acquire(self.name, WRITE)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    if not self._wait(deadline):
                        return False
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        if self._sanitizer is not None:
            self._sanitizer.after_acquire(self.name, WRITE)
        return True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()
        if self._sanitizer is not None:
            self._sanitizer.after_release(self.name, WRITE)

    # ------------------------------------------------------------------
    def _wait(self, deadline: float | None) -> bool:
        """Wait on the condition; False once ``deadline`` has passed.

        Caller must hold the condition and re-check its predicate: a
        True return only means "not timed out yet" (waits can wake
        spuriously or for a state change that doesn't help us).
        """
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        self._cond.wait(remaining)
        return time.monotonic() < deadline

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked():`` shared-access region."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked():`` exclusive-access region."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return (
            f"RWLock({self.name!r}, readers={self._readers}, "
            f"writer={self._writer_active}, "
            f"waiting={self._writers_waiting})"
        )
