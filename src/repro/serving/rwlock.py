"""A write-preferring readers-writer lock.

The serving runtime's concurrency discipline: any number of query
workers read the graph (and its incrementally maintained CSR store)
under shared access, while the single logical writer — whichever
worker is applying or flushing edge updates — holds exclusive access.

Write preference matters here: under sustained query traffic a
read-preferring lock would starve the writer, so deferred updates
would never flush and the Seed staleness bound could not be honored.
Once a writer is waiting, new readers queue behind it.

Lock ordering contract (deadlock freedom): a thread never upgrades —
it must not request exclusive access while holding shared access, and
vice versa.  The runtime acquires the RW lock *before* any internal
mutex (Seed-queue mutex, records mutex), never after.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager


class RWLock:
    """Shared/exclusive lock, write-preferring, with optional timeouts."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    def acquire_read(self, timeout: float | None = None) -> bool:
        """Acquire shared access; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._writer_active or self._writers_waiting:
                if not self._wait(deadline):
                    return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self, timeout: float | None = None) -> bool:
        """Acquire exclusive access; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    if not self._wait(deadline):
                        return False
                self._writer_active = True
                return True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def _wait(self, deadline: float | None) -> bool:
        """Wait on the condition; False once ``deadline`` has passed.

        Caller must hold the condition and re-check its predicate: a
        True return only means "not timed out yet" (waits can wake
        spuriously or for a state change that doesn't help us).
        """
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        self._cond.wait(remaining)
        return time.monotonic() < deadline

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked():`` shared-access region."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked():`` exclusive-access region."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return (
            f"RWLock(readers={self._readers}, "
            f"writer={self._writer_active}, "
            f"waiting={self._writers_waiting})"
        )
