"""Observability: counters, timers and service-time histograms.

See :mod:`repro.obs.metrics`.  The CSR maintenance layer records
``csr_*`` counters here, :class:`~repro.core.system.QuotaSystem`
records per-operation ``service.*`` histograms, and the calibration
harness records ``calibration.*`` timings — the attribution substrate
behind the paper's Table I style cost breakdowns.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
)
from repro.obs.names import ALL_METRICS, COUNTERS, GAUGES, HISTOGRAMS

__all__ = [
    "ALL_METRICS",
    "COUNTERS",
    "Counter",
    "GAUGES",
    "Gauge",
    "HISTOGRAMS",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
]
