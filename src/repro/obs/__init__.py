"""Observability: counters, timers and service-time histograms.

See :mod:`repro.obs.metrics`.  The CSR maintenance layer records
``csr_*`` counters here, :class:`~repro.core.system.QuotaSystem`
records per-operation ``service.*`` histograms, and the calibration
harness records ``calibration.*`` timings — the attribution substrate
behind the paper's Table I style cost breakdowns.
"""

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
]
