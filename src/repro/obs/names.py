"""Canonical registry of metric names used across the repository.

Every counter/histogram name passed to
:meth:`repro.obs.MetricsRegistry.counter`,
:meth:`~repro.obs.MetricsRegistry.histogram` or
:meth:`~repro.obs.MetricsRegistry.time` as a string literal must be
listed here.  The ``reprolint`` rule R5 (``metric-name``) statically
checks call sites against this module, so a typo'd or renamed metric
("service.qurey", a counter observed as a histogram) fails the lint
gate instead of silently splitting a time series.

This module is deliberately dependency-free: the lint engine parses it
with :mod:`ast` rather than importing the package.

Naming conventions
------------------
* ``csr_*``         — counters of the incremental CSR maintenance layer.
* ``service.*``     — per-operation service-time histograms (seconds)
  recorded by :class:`repro.core.system.QuotaSystem` and the concurrent
  serving runtime (:mod:`repro.serving`).
* ``serving.*``     — admission/shedding accounting of the concurrent
  serving runtime (queue-depth gauge, wait/response histograms,
  shed/timeout/fault counters).
* ``calibration.*`` — tau-calibration accounting.
* ``cache.*``       — result-cache accounting (:mod:`repro.cache`):
  hit/miss/insertion counters, eviction counters split by cause
  (capacity / staleness budget / TTL), admission rejections, bulk
  invalidations, plus the live size and online hit-rate gauges the
  cache-aware cost model reads.
* ``dispatch.*``    — kernel-dispatcher routing accounting
  (:mod:`repro.ppr.dispatch`): decision/override/fallback/split
  counters plus the effective-sub-batch-size histogram (a count per
  decision, not seconds).
* ``locks.*``       — runtime lock-order sanitizer accounting
  (:mod:`repro.serving.rwlock`, enabled by ``REPRO_LOCK_SANITIZER=1``):
  tracked acquisitions and detected discipline violations.
* ``scenario.*``    — scenario-fuzz harness accounting
  (:mod:`repro.scenarios`): replayed scenarios, oracle violations,
  and drift-triggered QuotaController reconfigurations.
* ``shard.*``       — sharded serving fabric accounting
  (:mod:`repro.shard`): routed queries, broadcast updates, sheds
  split by cause (unhealthy range / inflight bound), worker
  respawns, update-order faults, fleet-wide reconfigurations, the
  healthy-shard and inflight gauges, and the manager-side
  round-trip histogram.
* ``api.*``         — asyncio front-door accounting
  (:mod:`repro.api`): admitted requests, shed responses (503/504),
  and end-to-end response times as seen at the network edge.
* ``index.*``       — incremental walk-index maintenance accounting
  (:mod:`repro.ppr.incremental`): applied edge updates, walks
  resampled (vs the full-rebuild alternative), and lazy edge→walk
  map builds.

To add a metric: register its name in the matching set below, then use
the literal at the call site.  Dynamic (non-literal) names are not
checked — avoid them on hot paths anyway.
"""

#: monotonically increasing counts
COUNTERS = frozenset(
    {
        "csr_cache_hits",
        "csr_cache_misses",
        "csr_delta_applies",
        "csr_rebuilds",
        "csr_compactions",
        "calibration.runs",
        "serving.shed",
        "serving.timeout",
        "serving.faults",
        "serving.batches",
        "serving.batched_queries",
        "cache.hits",
        "cache.misses",
        "cache.insertions",
        "cache.rejections",
        "cache.evictions_capacity",
        "cache.evictions_staleness",
        "cache.evictions_ttl",
        "cache.invalidations",
        "dispatch.decisions",
        "dispatch.overrides",
        "dispatch.fallbacks",
        "dispatch.splits",
        # lock sanitizer (REPRO_LOCK_SANITIZER=1; repro.serving.rwlock)
        "locks.acquired",
        "locks.violations",
        # scenario fuzzing (repro.scenarios)
        "scenario.runs",
        "scenario.violations",
        "scenario.reconfigurations",
        # sharded serving fabric (repro.shard)
        "shard.queries_routed",
        "shard.updates_broadcast",
        "shard.shed_unhealthy",
        "shard.shed_inflight",
        "shard.respawns",
        "shard.order_faults",
        "shard.reconfigurations",
        # asyncio front door (repro.api)
        "api.requests",
        "api.shed",
        # incremental walk-index maintenance (repro.ppr.incremental)
        "index.incremental_updates",
        "index.walks_resampled",
        "index.map_builds",
    }
)

#: observed-quantity histograms (values in seconds unless noted)
HISTOGRAMS = frozenset(
    {
        "service.query",
        "service.update",
        "service.flush",
        "service.reconfigure",
        "calibration.probe",
        "serving.wait",
        "serving.response",
        "service.query_hit",
        "service.query_batch",
        # batch sizes (a count per dispatched batch, not seconds)
        "serving.batch_size",
        # routed sub-batch sizes (a count per routing decision)
        "dispatch.effective_batch",
        # manager-side shard round-trip (submit -> reply, seconds)
        "shard.roundtrip",
        # front-door end-to-end response times (seconds)
        "api.response",
    }
)

#: point-in-time levels (may go up and down)
GAUGES = frozenset(
    {
        "serving.queue_depth",
        "cache.size",
        "cache.hit_rate",
        # online batch auto-tuning (runtime reads the measured
        # batch-size distribution back through BatchAwareCostModel)
        "serving.effective_max_batch",
        "serving.effective_batch_window_s",
        # sharded serving fabric (repro.shard)
        "shard.healthy",
        "shard.inflight",
    }
)

ALL_METRICS = COUNTERS | HISTOGRAMS | GAUGES
