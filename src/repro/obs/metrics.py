"""Lightweight counters, timers and service-time histograms.

The paper attributes end-to-end time to sub-processes (Table I) and
calibrates its cost model against measured per-operation service times.
This module is the repository-wide substrate for that accounting: a
:class:`MetricsRegistry` hands out named :class:`Counter` and
:class:`Histogram` objects that the CSR maintenance layer, the serving
loop (:class:`~repro.core.system.QuotaSystem`), the calibration harness
and the benchmarks all share.

Design constraints (this sits on hot paths):

* ``Counter.inc`` and ``Histogram.observe`` are a few attribute ops —
  no locking, no allocation beyond the bounded sample buffer.
* Histograms keep exact ``count``/``total``/``min``/``max`` plus a
  bounded tail of recent samples for percentile estimates, so memory
  stays O(1) per metric over arbitrarily long replays.

The module-level registry returned by :func:`get_metrics` is the
default sink; components accept an explicit registry for isolated
measurements (tests, paired benchmark cells).
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Iterator
from contextlib import contextmanager

import numpy as np

#: samples retained per histogram for percentile estimates
DEFAULT_MAX_SAMPLES = 4096


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time level (e.g. admission-queue depth).

    Unlike :class:`Counter` it moves in both directions; the high-water
    mark is retained so reports can state the worst level a replay
    reached without sampling.
    """

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0
        self.high_water = 0.0

    def __repr__(self) -> str:
        return (
            f"Gauge({self.name}={self.value}, high_water={self.high_water})"
        )


class Histogram:
    """Streaming summary of an observed quantity (e.g. service seconds).

    Exact ``count``, ``total``, ``min``/``max``; percentiles are
    estimated from a bounded buffer of the most recent observations.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples")

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: deque[float] = deque(maxlen=max_samples)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._samples.append(value)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Percentile estimate over the retained samples.

        ``q`` is on the 0-100 scale (``percentile(99)`` is p99); values
        in the open interval (0, 1) raise to catch fraction misuse.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if 0.0 < q < 1.0:
            raise ValueError(
                f"q={q} looks like a fraction; percentiles are on the "
                f"0-100 scale (use {q * 100:g} for the p{q * 100:g})"
            )
        if not self._samples:
            return 0.0
        return float(np.percentile(np.fromiter(self._samples, dtype=float), q))

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples.clear()

    def summary(self) -> dict[str, float]:
        """Count/total/mean/min/max snapshot (no percentiles)."""
        return {
            "count": float(self.count),
            "total": self.total,
            "mean": self.mean(),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count}, mean={self.mean():.3g})"
        )


class MetricsRegistry:
    """Named counters and histograms, created on first access."""

    __slots__ = ("_counters", "_histograms", "_gauges")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, Gauge] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager recording elapsed wall seconds into ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - started)

    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int]:
        """{name: value} for every counter."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def snapshot(self) -> dict[str, dict]:
        """Full copy of the registry state (counters + histogram summaries)."""
        return {
            "counters": self.counters(),
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            },
            "gauges": {
                name: {"value": g.value, "high_water": g.high_water}
                for name, g in sorted(self._gauges.items())
            },
        }

    def reset(self) -> None:
        """Zero every metric (objects stay registered — references held
        by instrumented components remain live)."""
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        for gauge in self._gauges.values():
            gauge.reset()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"histograms={len(self._histograms)}, "
            f"gauges={len(self._gauges)})"
        )


_global_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide default registry."""
    return _global_registry


def reset_metrics() -> None:
    """Zero the default registry (benchmark / test hygiene)."""
    _global_registry.reset()
