"""Evaluation harness: datasets, experiment runner, metrics, reports."""

from repro.evaluation.datasets import DATASETS, DatasetSpec, get_dataset
from repro.evaluation.metrics import (
    AccuracySummary,
    ResponseTimeSummary,
    improvement_percent,
    precision_at_k,
)
from repro.evaluation.report import (
    ascii_histogram,
    banner,
    format_series,
    format_table,
    sparkline,
)
from repro.evaluation.runner import (
    ExperimentConfig,
    ExperimentOutcome,
    build_algorithm,
    run_experiment,
)
from repro.evaluation.validation import FitPoint, FitReport, model_fit_report

__all__ = [
    "DATASETS",
    "AccuracySummary",
    "DatasetSpec",
    "ExperimentConfig",
    "ExperimentOutcome",
    "FitPoint",
    "FitReport",
    "ResponseTimeSummary",
    "ascii_histogram",
    "banner",
    "build_algorithm",
    "format_series",
    "format_table",
    "get_dataset",
    "improvement_percent",
    "precision_at_k",
    "model_fit_report",
    "run_experiment",
    "sparkline",
]
