"""Experiment runner: one (dataset, algorithm, workload, config) cell.

Every benchmark in ``benchmarks/`` funnels through
:func:`run_experiment`, which wires up the dataset graph, the base
algorithm, optional Quota configuration (static or online), optional
Seed reordering, replays the workload on the virtual clock, and — when
asked — measures true PPR error on a sample of the queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController, QuotaDecision
from repro.core.system import QuotaSystem
from repro.evaluation.datasets import DatasetSpec
from repro.evaluation.metrics import AccuracySummary, ResponseTimeSummary
from repro.graph.digraph import DynamicGraph
from repro.ppr import ALGORITHMS, PPRParams
from repro.ppr.base import DynamicPPRAlgorithm
from repro.queueing.simulator import SimulationResult
from repro.queueing.workload import UPDATE, Workload, generate_workload


@dataclass(slots=True)
class ExperimentConfig:
    """Knobs of one experiment cell."""

    algorithm: str = "Agenda"
    use_quota: bool = False
    quota_without_constants: bool = False  # the Quota-c ablation
    epsilon_r: float = 0.0
    reoptimize_every: float | None = None
    lambda_q: float = 10.0
    lambda_u: float = 10.0
    window: float = 5.0
    seed: int = 0
    scale: float = 1.0
    measure_accuracy: bool = False
    accuracy_sample: int = 10
    calibration_queries: int = 4
    cv_q: float = 1.0
    cv_u: float = 1.0


@dataclass(slots=True)
class ExperimentOutcome:
    """Everything a bench needs to print its table row."""

    config: ExperimentConfig
    result: SimulationResult
    response: ResponseTimeSummary
    decision: QuotaDecision | None
    subprocess_totals: dict[str, float]
    accuracy: list[AccuracySummary] = field(default_factory=list)

    @property
    def mean_response_time(self) -> float:
        return self.response.mean

    def mean_accuracy_error(self) -> float:
        if not self.accuracy:
            return 0.0
        return float(
            np.mean([a.max_absolute_error for a in self.accuracy])
        )


def build_algorithm(
    name: str,
    graph: DynamicGraph,
    walk_cap: int,
    seed: int = 0,
    engine: str = "scalar",
) -> DynamicPPRAlgorithm:
    """Instantiate a registered algorithm with standard paper params.

    ``engine`` selects the push-kernel implementation (see
    ``repro.ppr.kernels.ENGINES``); algorithms without a vectorized
    path reject anything but ``"scalar"``.
    """
    params = PPRParams(alpha=0.2, epsilon=0.5, walk_cap=walk_cap)
    algorithm = ALGORITHMS[name](graph, params)
    if engine != "scalar":
        algorithm.set_engine(engine)
    algorithm.seed(seed)
    return algorithm


def run_experiment(
    spec: DatasetSpec,
    config: ExperimentConfig,
    workload: Workload | None = None,
    graph: DynamicGraph | None = None,
) -> ExperimentOutcome:
    """Run one experiment cell end to end.

    Parameters
    ----------
    spec:
        Dataset recipe (graph shape + default rates).
    config:
        Cell configuration; ``config.lambda_q/lambda_u/window`` define
        the workload unless an explicit ``workload`` is given.
    workload, graph:
        Optional pre-built workload/graph so multiple configurations
        can replay the *same* request sequence (paired comparison, as
        in the paper's figures).
    """
    if graph is None:
        graph = spec.build(seed=config.seed, scale=config.scale)
    else:
        graph = graph.copy()
    if workload is None:
        workload = generate_workload(
            graph,
            config.lambda_q,
            config.lambda_u,
            config.window,
            rng=config.seed + 1,
        )

    algorithm = build_algorithm(
        config.algorithm, graph, spec.walk_cap, seed=config.seed
    )

    controller = None
    if config.use_quota:
        model = calibrated_cost_model(
            algorithm,
            num_queries=config.calibration_queries,
            rng=config.seed + 2,
        )
        if config.quota_without_constants:
            model = model.without_constants()
        controller = QuotaController(
            model,
            cv_q=config.cv_q,
            cv_u=config.cv_u,
            extra_starts=[algorithm.get_hyperparameters()],
        )

    system = QuotaSystem(
        algorithm,
        controller,
        epsilon_r=config.epsilon_r,
        reoptimize_every=config.reoptimize_every,
    )
    decision = None
    if config.use_quota and config.reoptimize_every is None:
        decision = system.configure_static(config.lambda_q, config.lambda_u)

    accuracy: list[AccuracySummary] = []
    callback = None
    if config.measure_accuracy:
        shadow = graph.copy()
        for request in workload:
            if request.kind == UPDATE:
                request.update.apply(shadow)
        sample_every = max(workload.num_queries // config.accuracy_sample, 1)
        counter = {"n": 0}

        def callback(request, estimate, pending):
            counter["n"] += 1
            if counter["n"] % sample_every == 0:
                accuracy.append(
                    AccuracySummary.compare(
                        estimate, shadow, algorithm.params.alpha
                    )
                )

    result = system.process(workload, query_callback=callback)
    if decision is None and system.decisions:
        decision = system.decisions[-1]
    return ExperimentOutcome(
        config=config,
        result=result,
        response=ResponseTimeSummary.from_result(result),
        decision=decision,
        subprocess_totals=algorithm.timers.snapshot(),
        accuracy=accuracy,
    )
