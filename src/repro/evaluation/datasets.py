"""Scaled synthetic counterparts of the paper's datasets (Table II).

The six real graphs are not redistributable (and at up to 1.5 B edges
far beyond pure Python), so each is replaced by a synthetic graph that
preserves the properties the experiments exercise:

* the *relative size ladder* (Webs < DBLP < Pokec < LJ < Orkut-ish <
  Twitter), which drives per-operation cost and hence where each
  dataset sits on the stable/unstable spectrum;
* directedness (DBLP and Orkut are undirected);
* heavy-tailed degree distributions (preferential attachment).

Per-dataset default query rates and windows mirror the paper's scheme
("stable on the small graphs, heavily contended on the large ones"),
re-anchored to pure-Python service times exactly as the paper anchors
its rates to C++ service times.  Use ``scale`` to shrink everything
further for quick runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DynamicGraph
from repro.graph.generators import barabasi_albert_graph, erdos_renyi_graph


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """Recipe for one benchmark dataset.

    Attributes
    ----------
    name:
        Paper dataset this stands in for.
    nodes, edges:
        Target size of the synthetic graph.
    directed:
        Matches the Table II type column.
    kind:
        "ba" (preferential attachment) or "er" (uniform random).
    lambda_q:
        Default query arrival rate (per virtual second) used by the
        Figure 3 family of experiments.
    window:
        Default simulation window T in virtual seconds.
    walk_cap:
        Per-dataset cap on the walk parameter K (see PPRParams).
    """

    name: str
    nodes: int
    edges: int
    directed: bool
    kind: str
    lambda_q: float
    window: float
    walk_cap: int

    def build(self, seed: int = 0, scale: float = 1.0) -> DynamicGraph:
        """Materialize the graph (deterministic per seed).

        ``scale`` < 1 shrinks node/edge counts proportionally — handy
        for smoke tests and CI.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        n = max(int(self.nodes * scale), 16)
        m = max(int(self.edges * scale), 2 * n)
        if self.kind == "ba":
            attach = max(round(m / (1.5 * n)), 1)
            return barabasi_albert_graph(
                n, attach=attach, directed=self.directed, seed=seed
            )
        if self.kind == "er":
            return erdos_renyi_graph(
                n, m=m if self.directed else m // 2,
                directed=self.directed, seed=seed,
            )
        raise ValueError(f"unknown dataset kind {self.kind!r}")


# Sizes are the paper's divided by ~1000 (Twitter by 10000); rates are
# re-anchored so that, with the default Agenda configuration, the queue
# is comfortably stable at lambda_u/lambda_q = 1/8 and saturates as the
# ratio approaches 8 — the paper's sweep design.
DATASETS: dict[str, DatasetSpec] = {
    "webs": DatasetSpec(
        name="webs", nodes=280, edges=2300, directed=True, kind="er",
        lambda_q=40.0, window=8.0, walk_cap=2000,
    ),
    "dblp": DatasetSpec(
        name="dblp", nodes=610, edges=2000, directed=False, kind="ba",
        lambda_q=25.0, window=8.0, walk_cap=2500,
    ),
    "pokec": DatasetSpec(
        name="pokec", nodes=1600, edges=30600, directed=True, kind="ba",
        lambda_q=8.0, window=10.0, walk_cap=4000,
    ),
    "lj": DatasetSpec(
        name="lj", nodes=4800, edges=69000, directed=True, kind="ba",
        lambda_q=4.0, window=10.0, walk_cap=6000,
    ),
    "orkut": DatasetSpec(
        name="orkut", nodes=3100, edges=117000, directed=False, kind="ba",
        lambda_q=3.0, window=10.0, walk_cap=6000,
    ),
    "twitter": DatasetSpec(
        name="twitter", nodes=4200, edges=150000, directed=True, kind="ba",
        lambda_q=2.0, window=10.0, walk_cap=8000,
    ),
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    try:
        return DATASETS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
