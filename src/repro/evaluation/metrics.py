"""Metrics: response-time summaries and PPR accuracy measures."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DynamicGraph
from repro.ppr.base import PPRVector
from repro.ppr.power_iteration import ppr_exact
from repro.queueing.simulator import SimulationResult


@dataclass(frozen=True, slots=True)
class ResponseTimeSummary:
    """Distribution summary of query response times (virtual seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_result(cls, result: SimulationResult) -> "ResponseTimeSummary":
        times = result.query_response_times()
        if times.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=int(times.size),
            mean=float(times.mean()),
            p50=float(np.percentile(times, 50)),
            p95=float(np.percentile(times, 95)),
            p99=float(np.percentile(times, 99)),
            max=float(times.max()),
        )


@dataclass(frozen=True, slots=True)
class AccuracySummary:
    """Error of an estimate against exact PPR on one query."""

    max_absolute_error: float
    mean_absolute_error: float
    max_relative_error: float

    @classmethod
    def compare(
        cls,
        estimate: PPRVector,
        graph: DynamicGraph,
        alpha: float,
        delta: float | None = None,
    ) -> "AccuracySummary":
        """Compare ``estimate`` with exact PPR on ``graph``.

        Relative error is evaluated only where exact PPR > delta
        (default 1/n), matching the Eq. 1 guarantee's scope.
        """
        exact = ppr_exact(graph, estimate.source, alpha=alpha)
        delta = delta if delta is not None else 1.0 / max(len(exact), 2)
        abs_errors = []
        rel_errors = [0.0]
        for node in exact:
            err = abs(estimate.get(node, 0.0) - exact[node])
            abs_errors.append(err)
            if exact[node] > delta:
                rel_errors.append(err / exact[node])
        return cls(
            max_absolute_error=float(max(abs_errors)),
            mean_absolute_error=float(np.mean(abs_errors)),
            max_relative_error=float(max(rel_errors)),
        )


def precision_at_k(
    predicted: list[tuple[int, float]],
    graph: DynamicGraph,
    source: int,
    alpha: float,
) -> float:
    """Fraction of the true top-k found by a top-k query result."""
    if not predicted:
        return 0.0
    k = len(predicted)
    exact = ppr_exact(graph, source, alpha=alpha)
    truth = {node for node, _ in exact.top_k(k)}
    hits = sum(1 for node, _ in predicted if node in truth)
    return hits / k


def improvement_percent(baseline: float, improved: float) -> float:
    """The paper's headline metric: (baseline - improved) / baseline."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
