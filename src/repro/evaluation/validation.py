"""Cost-model goodness-of-fit diagnostics.

Quota's decisions are only as good as the calibrated cost model, so a
deployment should *verify the fit* before trusting it: measure real
query/update times at a spread of hyperparameter settings and compare
them with the model's predictions.

:func:`model_fit_report` automates that: it probes the live algorithm
at multiplicative offsets around the current setting, measures mean
query/update times at each, and summarizes prediction quality (log-
space error statistics, since costs span decades).  The
``bench_model_fit`` benchmark prints this table for every algorithm.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.cost_models import CostModel
from repro.graph.updates import EdgeUpdate
from repro.ppr.base import DynamicPPRAlgorithm, clip_unit


@dataclass(frozen=True, slots=True)
class FitPoint:
    """One probed hyperparameter setting with measured vs predicted."""

    beta: dict[str, float]
    measured_t_q: float
    predicted_t_q: float
    measured_t_u: float
    predicted_t_u: float

    def log_error_q(self) -> float:
        """|log10(predicted / measured)| of the query time."""
        return abs(
            math.log10(
                max(self.predicted_t_q, 1e-12)
                / max(self.measured_t_q, 1e-12)
            )
        )

    def log_error_u(self) -> float:
        return abs(
            math.log10(
                max(self.predicted_t_u, 1e-12)
                / max(self.measured_t_u, 1e-12)
            )
        )


@dataclass(slots=True)
class FitReport:
    """Aggregate fit quality over the probed settings."""

    points: list[FitPoint] = field(default_factory=list)

    def mean_log_error_q(self) -> float:
        if not self.points:
            return 0.0
        return float(np.mean([p.log_error_q() for p in self.points]))

    def mean_log_error_u(self) -> float:
        if not self.points:
            return 0.0
        return float(np.mean([p.log_error_u() for p in self.points]))

    def worst_log_error(self) -> float:
        if not self.points:
            return 0.0
        return float(
            max(max(p.log_error_q(), p.log_error_u()) for p in self.points)
        )

    def within_factor(self, factor: float) -> float:
        """Fraction of probed (t_q, t_u) predictions within ``factor``x."""
        if not self.points:
            return 1.0
        budget = math.log10(factor)
        hits = sum(
            (p.log_error_q() <= budget) + (p.log_error_u() <= budget)
            for p in self.points
        )
        return hits / (2 * len(self.points))


def model_fit_report(
    algorithm: DynamicPPRAlgorithm,
    model: CostModel,
    scales: tuple[float, ...] = (0.1, 0.3, 1.0, 3.0, 10.0),
    num_queries: int = 4,
    updates_per_query: int = 1,
    rng: np.random.Generator | int | None = None,
) -> FitReport:
    """Probe the algorithm around its current beta and score the model.

    Parameters
    ----------
    algorithm:
        Live algorithm (probing runs on scratch copies).
    model:
        The (calibrated) cost model under test.
    scales:
        Multiplicative offsets applied to every hyperparameter.
    num_queries, updates_per_query:
        Probe workload per point; the realized update:query ratio is
        fed to the model's query-factor evaluation (Agenda's amortized
        lazy term).
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    base_beta = algorithm.get_hyperparameters()
    report = FitReport()
    for scale in scales:
        probe = type(algorithm)(algorithm.graph.copy(), algorithm.params)
        beta = {k: clip_unit(v * scale) for k, v in base_beta.items()}
        probe.set_hyperparameters(**beta)
        nodes = probe.view.nodes
        t_updates = 0.0
        t_queries = 0.0
        num_updates = 0
        for _ in range(num_queries):
            for _ in range(updates_per_query):
                u, v = rng.choice(nodes, size=2, replace=False)
                started = time.perf_counter()
                probe.apply_update(EdgeUpdate(int(u), int(v)))
                t_updates += time.perf_counter() - started
                num_updates += 1
            source = int(rng.choice(nodes))
            started = time.perf_counter()
            probe.query(source)
            t_queries += time.perf_counter() - started
        measured_t_q = t_queries / num_queries
        measured_t_u = t_updates / max(num_updates, 1)
        lambda_q, lambda_u = 1.0, float(updates_per_query)
        report.points.append(
            FitPoint(
                beta=beta,
                measured_t_q=measured_t_q,
                predicted_t_q=model.query_time(beta, lambda_q, lambda_u),
                measured_t_u=measured_t_u,
                predicted_t_u=model.update_time(beta),
            )
        )
    return report
