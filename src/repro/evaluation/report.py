"""Plain-text table/series rendering for the benchmark reports.

The benchmarks print their reproduction of each paper table/figure as
monospace text so `pytest benchmarks/ --benchmark-only` output can be
diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Columns are right-aligned except the first.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
        return "  ".join(parts)

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render figure-style data: one row per x value, one column per
    line series — the textual equivalent of the paper's plots."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for name in series:
            row.append(float(series[name][i]))
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)


def banner(text: str) -> str:
    """A visually separated section header for bench output."""
    bar = "#" * max(len(text) + 4, 40)
    return f"\n{bar}\n# {text}\n{bar}"


_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of a numeric series (min..max normalized).

    Used by the bench reports to show response-time trajectories inline
    without a plotting dependency.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[4] * len(values)
    steps = len(_BLOCKS) - 1
    return "".join(
        _BLOCKS[int(round((v - lo) / span * steps))] for v in values
    )


def ascii_histogram(
    values: Sequence[float],
    bins: int = 8,
    width: int = 40,
    label_format: str = "{:.3g}",
) -> str:
    """A horizontal ASCII histogram (one row per bin).

    The textual stand-in for the paper's Figure 9(b) distribution plot.
    """
    values = [float(v) for v in values]
    if not values:
        return "(no data)"
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be >= 1")
    lo, hi = min(values), max(values)
    if hi <= lo:
        return f"{label_format.format(lo)}  | {'#' * width}  ({len(values)})"
    edges = [lo + (hi - lo) * i / bins for i in range(bins + 1)]
    counts = [0] * bins
    for v in values:
        index = min(int((v - lo) / (hi - lo) * bins), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * max(int(round(count / peak * width)), 1 if count else 0)
        label = (
            f"[{label_format.format(edges[i])}, "
            f"{label_format.format(edges[i + 1])})"
        )
        lines.append(f"{label:>24s} | {bar:<{width}s} {count}")
    return "\n".join(lines)
