"""Command-line interface: run experiments without writing code.

Subcommands
-----------
``datasets``
    List the registered benchmark datasets and their defaults.
``calibrate``
    Measure and print the tau constants of an algorithm on a dataset.
``configure``
    Run the Quota controller for given arrival rates and print the
    chosen hyperparameters, regime, and predicted response time.
``run``
    Replay a workload (generated or loaded from a CSV trace) through a
    system and print the response-time summary; optionally compare the
    Quota configuration against the algorithm default, and/or serve
    queries through the staleness-bounded result cache
    (``--cache --cache-epsilon 0.1``).
``scenarios``
    Delegate to the scenario fuzz/replay harness
    (``python -m repro.scenarios``): list workload-scenario families,
    fuzz them through every engine under differential oracles, or
    replay one DSL spec.
``serve``
    Stand up the sharded HTTP serving fabric (``repro.shard`` workers
    behind the ``repro.api`` front door) on a dataset graph and serve
    ``/query`` ``/update`` ``/reconfigure`` ``/healthz`` ``/metrics``
    until interrupted.

Examples
--------
::

    python -m repro.cli datasets
    python -m repro.cli calibrate --dataset dblp --algorithm Agenda
    python -m repro.cli configure --dataset dblp --algorithm FORA+ \\
        --lambda-q 20 --lambda-u 40
    python -m repro.cli run --dataset webs --algorithm Agenda --quota \\
        --lambda-q 40 --lambda-u 80 --window 5 --epsilon-r 0.5
    python -m repro.cli run --dataset dblp --algorithm Agenda \\
        --cache --cache-epsilon 0.2
    python -m repro.cli scenarios fuzz --seeds 20 --out cards.json
    python -m repro.cli serve --dataset dblp --shards 2 --port 8080
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.cache import PPRCache
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.core.system import QuotaSystem
from repro.evaluation.datasets import DATASETS, get_dataset
from repro.evaluation.metrics import ResponseTimeSummary, improvement_percent
from repro.evaluation.report import format_table
from repro.evaluation.runner import build_algorithm
from repro.ppr import ALGORITHMS, ENGINE_CHOICES
from repro.queueing.trace_io import load_workload_trace, save_workload_trace
from repro.queueing.workload import QUERY, UPDATE, generate_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quota: QoS-aware PPR over dynamic graphs (ICDE 2024 "
        "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list registered benchmark datasets")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--dataset", default="dblp", help="dataset name (see `datasets`)"
    )
    common.add_argument(
        "--algorithm",
        default="Agenda",
        choices=sorted(ALGORITHMS),
        help="base PPR algorithm",
    )
    common.add_argument("--seed", type=int, default=0, help="random seed")

    cal = sub.add_parser(
        "calibrate", parents=[common],
        help="measure the tau constants of an algorithm",
    )
    cal.add_argument(
        "--queries", type=int, default=5, help="probe queries per point"
    )

    conf = sub.add_parser(
        "configure", parents=[common],
        help="compute the Quota-optimal hyperparameters for given rates",
    )
    conf.add_argument("--lambda-q", type=float, required=True)
    conf.add_argument("--lambda-u", type=float, required=True)
    conf.add_argument(
        "--response-model", default="pk",
        choices=QuotaController.RESPONSE_MODELS,
    )

    run = sub.add_parser(
        "run", parents=[common],
        help="replay a workload and report response times",
    )
    run.add_argument("--lambda-q", type=float, default=None)
    run.add_argument("--lambda-u", type=float, default=None)
    run.add_argument("--window", type=float, default=None)
    run.add_argument(
        "--engine",
        default="auto",
        choices=ENGINE_CHOICES,
        help="push-kernel engine (auto routes per call through the "
        "cost-model dispatcher; scalar is the oracle path; frontier/"
        "batched force the vectorized kernels where the algorithm "
        "supports them)",
    )
    run.add_argument(
        "--quota", action="store_true",
        help="also run the Quota-configured system and compare",
    )
    run.add_argument(
        "--epsilon-r", type=float, default=0.0,
        help="Seed reorder threshold (0 = strict FCFS)",
    )
    run.add_argument(
        "--reoptimize-every", type=float, default=None,
        help="online re-optimization period in virtual seconds",
    )
    run.add_argument(
        "--cache", action="store_true",
        help="serve queries through the staleness-bounded result cache",
    )
    run.add_argument(
        "--cache-epsilon", type=float, default=0.1, metavar="EPS_C",
        help="staleness budget epsilon_c per cached entry (default 0.1)",
    )
    run.add_argument(
        "--trace", default=None,
        help="CSV workload trace to replay instead of generating",
    )
    run.add_argument(
        "--save-trace", default=None,
        help="persist the generated workload to this CSV path",
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="workload-scenario fuzzing (delegates to repro.scenarios)",
        add_help=False,
    )
    scenarios.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to `python -m repro.scenarios`",
    )

    serve = sub.add_parser(
        "serve",
        help="serve PPR over HTTP from a sharded fleet (repro.api)",
        add_help=False,
    )
    serve.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to the serve entry point "
        "(see `serve --help`)",
    )
    return parser


def cmd_datasets() -> int:
    rows = [
        [s.name, s.nodes, s.edges, "directed" if s.directed else "undirected",
         s.lambda_q, s.window]
        for s in DATASETS.values()
    ]
    print(
        format_table(
            ["name", "nodes", "edges", "type", "lambda_q", "window (s)"],
            rows,
            title="registered datasets (scaled stand-ins for Table II)",
            float_format="{:g}",
        )
    )
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    spec = get_dataset(args.dataset)
    graph = spec.build(seed=args.seed)
    algorithm = build_algorithm(
        args.algorithm, graph, spec.walk_cap, seed=args.seed
    )
    model = calibrated_cost_model(
        algorithm, num_queries=args.queries, rng=args.seed
    )
    rows = [[name, tau] for name, tau in sorted(model.taus.items())]
    print(
        format_table(
            ["sub-process", "tau (s per unit factor)"],
            rows,
            title=f"{args.algorithm} on {spec.name} "
            f"(n={graph.num_nodes}, m={graph.num_edges})",
            float_format="{:.3e}",
        )
    )
    return 0


def cmd_configure(args: argparse.Namespace) -> int:
    spec = get_dataset(args.dataset)
    graph = spec.build(seed=args.seed)
    algorithm = build_algorithm(
        args.algorithm, graph, spec.walk_cap, seed=args.seed
    )
    model = calibrated_cost_model(algorithm, rng=args.seed)
    controller = QuotaController(
        model,
        extra_starts=[algorithm.get_hyperparameters()],
        response_model=args.response_model,
    )
    decision = controller.configure(args.lambda_q, args.lambda_u)
    print(f"regime:    {decision.regime}")
    print(f"rho:       {decision.traffic_intensity:.4f}")
    if decision.is_stable:
        print(
            f"predicted mean response time: "
            f"{decision.predicted_response_time * 1e3:.3f} ms"
        )
    for name, value in decision.beta.items():
        print(f"{name:10s} = {value:.6e}")
    print(f"(solved in {decision.configure_seconds * 1e3:.1f} ms)")
    return 0


def _summarize(label: str, result) -> list[object]:
    summary = ResponseTimeSummary.from_result(result)
    return [
        label,
        summary.mean * 1e3,
        summary.p50 * 1e3,
        summary.p95 * 1e3,
        result.mean_service_time(QUERY) * 1e3,
        result.mean_service_time(UPDATE) * 1e3,
        result.empirical_load(),
    ]


def cmd_run(args: argparse.Namespace) -> int:
    spec = get_dataset(args.dataset)
    graph = spec.build(seed=args.seed)
    lambda_q = args.lambda_q if args.lambda_q is not None else spec.lambda_q
    lambda_u = args.lambda_u if args.lambda_u is not None else spec.lambda_q
    window = args.window if args.window is not None else spec.window

    if args.trace:
        workload = load_workload_trace(args.trace)
    else:
        workload = generate_workload(
            graph, lambda_q, lambda_u, window, rng=args.seed + 1
        )
    if args.save_trace:
        save_workload_trace(workload, args.save_trace)
        print(f"workload trace written to {args.save_trace}")
    print(
        f"{workload.num_queries} queries + {workload.num_updates} updates "
        f"over {workload.t_end:g}s on {spec.name} "
        f"(n={graph.num_nodes}, m={graph.num_edges})"
    )

    def make_cache() -> PPRCache | None:
        if not args.cache:
            return None
        return PPRCache(epsilon_c=args.cache_epsilon)

    rows = []
    baseline = build_algorithm(
        args.algorithm, graph.copy(), spec.walk_cap, seed=args.seed,
        engine=args.engine,
    )
    base_cache = make_cache()
    base_result = QuotaSystem(
        baseline, epsilon_r=args.epsilon_r, cache=base_cache
    ).process(workload)
    label = f"{args.algorithm} (default)"
    if base_cache is not None:
        label += " +cache"
    rows.append(_summarize(label, base_result))

    if args.quota:
        tuned = build_algorithm(
            args.algorithm, graph.copy(), spec.walk_cap, seed=args.seed,
            engine=args.engine,
        )
        controller = QuotaController(
            calibrated_cost_model(tuned, rng=args.seed + 2),
            extra_starts=[tuned.get_hyperparameters()],
        )
        quota_cache = make_cache()
        system = QuotaSystem(
            tuned,
            controller,
            epsilon_r=args.epsilon_r,
            reoptimize_every=args.reoptimize_every,
            cache=quota_cache,
        )
        if args.reoptimize_every is None:
            system.configure_static(lambda_q, lambda_u)
        quota_result = system.process(workload)
        label = f"Quota-{args.algorithm}"
        if quota_cache is not None:
            label += " +cache"
        rows.append(_summarize(label, quota_result))

    print(
        format_table(
            ["system", "mean R (ms)", "p50 (ms)", "p95 (ms)",
             "t_q (ms)", "t_u (ms)", "load"],
            rows,
        )
    )
    if args.quota:
        print(
            f"response-time reduction: "
            f"{improvement_percent(rows[0][1], rows[1][1]):.1f}%"
        )
    if args.cache and base_cache is not None:
        stats = base_cache.stats()
        print(
            f"cache (epsilon_c={args.cache_epsilon:g}): "
            f"hit rate {stats['hit_rate']:.2f} over "
            f"{stats['lookups']:.0f} lookups, "
            f"{stats['size']:.0f} live entries"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "serve":
        # forward before argparse: REMAINDER refuses to capture a
        # leading option token (`serve --dataset ...`), so the serve
        # entry point owns its whole argument list, --help included
        from repro.api.serve import main as serve_main

        return serve_main(raw[1:])
    args = build_parser().parse_args(raw)
    if args.command == "scenarios":
        # lazy import: the harness pulls in the serving stack, which
        # the lightweight subcommands should not pay for
        from repro.scenarios.__main__ import main as scenarios_main

        return scenarios_main(args.rest)
    try:
        if args.command == "datasets":
            return cmd_datasets()
        if args.command == "calibrate":
            return cmd_calibrate(args)
        if args.command == "configure":
            return cmd_configure(args)
        if args.command == "run":
            return cmd_run(args)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
