"""Workload-scenario DSL: named traffic shapes beyond the paper's five.

The paper evaluates QoS under five hand-picked dynamic patterns
(Fig. 4/10/11).  Production PPR serving faces a far wider space —
diurnal cycles, flash crowds, update storms, skewed and *shifting*
source popularity, adversarial cache-busting request sequences, and
replayed real edge streams ("Approximate Personalized PageRank on
Dynamic Graphs", arXiv 1603.07796).  This module names those shapes as
first-class :class:`Scenario` values that every harness in the repo
can consume, because each one compiles down to the existing
:class:`~repro.queueing.workload.WorkloadSegment` /
:class:`~repro.queueing.workload.Workload` form.

The DSL has two equivalent surfaces:

* **builders** — ``flash_crowd(spike_factor=40)`` in Python;
* **compact text specs** — ``"flash-crowd(spike_factor=40)"`` on the
  CLI, parsed by :func:`parse_scenario`.  Grammar::

      spec    := family [ "(" kwargs ")" ]
      kwargs  := key "=" value { "," key "=" value }
      value   := int | float | quoted or bare string

A :class:`Scenario` is *declarative*: rates per segment, plus an
optional query-source sampler (skew families) and an optional explicit
edge stream (replay family).  :meth:`Scenario.compile` materializes it
into a concrete :class:`~repro.queueing.workload.Workload` for a given
graph and RNG — generation reuses ``generate_segmented_workload`` and
then rewrites query sources through the sampler, so every workload
invariant (sortedness, metadata accounting) is inherited from the one
battle-tested generator rather than re-implemented per family.
"""

from __future__ import annotations

import math
import os
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.queueing.arrivals import wikipedia_like_trace
from repro.queueing.workload import (
    QUERY,
    UPDATE,
    FloatArray,
    NodeArray,
    Request,
    Workload,
    WorkloadSegment,
    _random_update_endpoints,
    dynamic_pattern_segments,
    generate_segmented_workload,
)

#: query-source sampler: (nodes, query arrival times, rng) -> sources.
#: Receiving the arrival times lets skew families shift their hot set
#: mid-window and adversarial families key off request position.
SourceSampler = Callable[
    [NodeArray, FloatArray, np.random.Generator], NodeArray
]

#: the paper's five Fig. 4 patterns, exposed as one DSL family
PAPER_PATTERNS = (
    "query-inclined",
    "query-declined",
    "update-inclined",
    "update-declined",
    "balanced",
)


@dataclass(frozen=True, slots=True)
class Scenario:
    """One named workload shape, compiled on demand.

    Attributes
    ----------
    name:
        Instance label (family plus distinguishing parameters).
    family:
        Registry key this scenario was built from.
    segments:
        Piecewise-constant rate schedule (the ``WorkloadSegment`` form
        every existing bench and simulator consumes).
    description:
        One-line human summary for report cards.
    source_sampler:
        Optional query-source rewrite (uniform when None).
    edge_stream:
        Optional explicit update stream replayed over the window
        (SNAP-style edge list order preserved; ``toggle`` semantics so
        repeated pairs stay applicable).  Overrides rate-generated
        updates.
    synthesize_stream:
        With ``edge_stream`` None, draw this many synthetic stream
        edges at compile time (used when no real trace file is at
        hand; the *timing* burstiness is what the family exercises).
    stream_burst:
        Burst factor of the stream's arrival process
        (:func:`~repro.queueing.arrivals.wikipedia_like_trace`).
    epsilon_r:
        Suggested Seed reorder budget for replays of this scenario.
    deadline_s:
        Per-query SLO deadline in virtual seconds (report cards score
        p50/p99 against it; None = no deadline).
    """

    name: str
    family: str
    segments: tuple[WorkloadSegment, ...]
    description: str = ""
    source_sampler: SourceSampler | None = None
    edge_stream: tuple[tuple[int, int], ...] | None = None
    synthesize_stream: int = 0
    stream_burst: float = 4.0
    epsilon_r: float = 0.0
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError(f"scenario {self.name!r} has no segments")
        if any(s.duration <= 0 for s in self.segments):
            raise ValueError("segment durations must be positive")

    @property
    def t_end(self) -> float:
        return sum(s.duration for s in self.segments)

    # ------------------------------------------------------------------
    def compile(
        self,
        graph: DynamicGraph,
        rng: np.random.Generator | int | None = None,
    ) -> Workload:
        """Materialize this scenario into a workload over ``graph``."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        workload = generate_segmented_workload(
            graph, list(self.segments), rng
        )
        requests = list(workload.requests)
        t_end = workload.t_end
        lambda_u = workload.lambda_u

        stream = self.edge_stream
        if stream is None and self.synthesize_stream > 0:
            nodes = np.fromiter(
                graph.nodes(), dtype=np.int64, count=graph.num_nodes
            )
            heads, tails = _random_update_endpoints(
                self.synthesize_stream, nodes, rng
            )
            stream = tuple(
                (int(u), int(v)) for u, v in zip(heads, tails)
            )
        if stream is not None:
            # replace rate-generated updates with the replayed stream,
            # arriving on a bursty (real-log-like) clock
            requests = [r for r in requests if r.kind == QUERY]
            rate = max(len(stream) / t_end, 1e-9)
            times = wikipedia_like_trace(
                rate, t_end, rng, burst_factor=self.stream_burst
            )
            count = min(times.size, len(stream))
            for t, (u, v) in zip(times[:count], stream[:count]):
                requests.append(
                    Request(float(t), UPDATE, update=EdgeUpdate(u, v))
                )
            lambda_u = count / t_end if t_end > 0 else 0.0

        if self.source_sampler is not None:
            nodes = np.fromiter(
                graph.nodes(), dtype=np.int64, count=graph.num_nodes
            )
            query_positions = [
                i for i, r in enumerate(requests) if r.kind == QUERY
            ]
            arrivals = np.asarray(
                [requests[i].arrival for i in query_positions],
                dtype=np.float64,
            )
            sources = self.source_sampler(nodes, arrivals, rng)
            if sources.shape != arrivals.shape:
                raise ValueError(
                    f"source sampler returned {sources.shape}, "
                    f"expected {arrivals.shape}"
                )
            for i, s in zip(query_positions, sources):
                requests[i] = Request(
                    requests[i].arrival, QUERY, source=int(s)
                )

        requests.sort(key=lambda r: r.arrival)
        return Workload(requests, t_end, workload.lambda_q, lambda_u)


# ----------------------------------------------------------------------
# source samplers
# ----------------------------------------------------------------------
def zipf_sampler(
    exponent: float, shift_at_s: float | None = None
) -> SourceSampler:
    """Zipf-skewed sources; optionally re-rank the hot set mid-window.

    Node popularity follows rank^(-exponent) over a random permutation
    of the node set.  With ``shift_at_s`` set, queries arriving after
    that time draw from a *second* independent permutation — the
    shifting-hot-set pattern that invalidates any cache warmed on the
    first regime.
    """
    if exponent <= 0:
        raise ValueError("exponent must be positive")

    def sample(
        nodes: NodeArray, arrivals: FloatArray, rng: np.random.Generator
    ) -> NodeArray:
        n = nodes.size
        weights = np.arange(1, n + 1, dtype=np.float64) ** (-exponent)
        probs = weights / weights.sum()
        ranks = rng.choice(n, size=arrivals.size, p=probs)
        perm_a = rng.permutation(n)
        if shift_at_s is None:
            picked = perm_a[ranks]
        else:
            perm_b = rng.permutation(n)
            picked = np.where(
                arrivals < shift_at_s, perm_a[ranks], perm_b[ranks]
            )
        return np.asarray(nodes[picked], dtype=np.int64)

    return sample


def cache_buster_sampler() -> SourceSampler:
    """Adversarial round-robin over every node, in a fixed shuffle.

    The worst case for any LRU-flavored result cache whose capacity is
    below the node count: by the time a source repeats, the cycle has
    pushed its entry out, so the steady-state hit rate pins to ~0 while
    a popularity-skewed stream of the same rate would hit constantly.
    """

    def sample(
        nodes: NodeArray, arrivals: FloatArray, rng: np.random.Generator
    ) -> NodeArray:
        order = rng.permutation(nodes)
        idx = np.arange(arrivals.size, dtype=np.int64) % nodes.size
        return np.asarray(order[idx], dtype=np.int64)

    return sample


# ----------------------------------------------------------------------
# family builders
# ----------------------------------------------------------------------
def diurnal(
    t_end: float = 24.0,
    lambda_q: float = 22.0,
    lambda_u: float = 5.0,
    cycles: float = 2.0,
    phases: int = 12,
    amplitude: float = 0.8,
) -> Scenario:
    """Sinusoidal day/night cycle; update traffic peaks off-hours."""
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must lie in [0, 1)")
    if phases < 2:
        raise ValueError("need at least two phases")
    segments = []
    for i in range(phases):
        frac = (i + 0.5) / phases
        wave = math.sin(2.0 * math.pi * cycles * frac)
        segments.append(
            WorkloadSegment(
                t_end / phases,
                lambda_q * (1.0 + amplitude * wave),
                lambda_u * (1.0 - amplitude * wave),
            )
        )
    return Scenario(
        name=f"diurnal(cycles={cycles:g})",
        family="diurnal",
        segments=tuple(segments),
        description="sinusoidal day/night rate cycle, updates off-peak",
        deadline_s=0.5,
    )


def flash_crowd(
    t_end: float = 24.0,
    lambda_q: float = 10.0,
    lambda_u: float = 3.0,
    spike_factor: float = 20.0,
    spike_at: float = 0.5,
    spike_width: float = 0.125,
) -> Scenario:
    """A 10-100x query spike in an otherwise calm window."""
    if spike_factor <= 1.0:
        raise ValueError("spike_factor must exceed 1")
    if not 0.0 < spike_at < 1.0 or not 0.0 < spike_width < 1.0:
        raise ValueError("spike_at and spike_width must lie in (0, 1)")
    pre = spike_at * t_end
    width = min(spike_width * t_end, t_end - pre - 1e-9)
    post = t_end - pre - width
    segments = [
        WorkloadSegment(pre, lambda_q, lambda_u),
        WorkloadSegment(width, lambda_q * spike_factor, lambda_u),
    ]
    if post > 0:
        segments.append(WorkloadSegment(post, lambda_q, lambda_u))
    return Scenario(
        name=f"flash-crowd(x{spike_factor:g})",
        family="flash-crowd",
        segments=tuple(segments),
        description=f"{spike_factor:g}x query spike at t={pre:g}s",
        deadline_s=0.5,
    )


def update_storm(
    t_end: float = 24.0,
    lambda_q: float = 6.0,
    lambda_u: float = 3.0,
    storm_factor: float = 25.0,
    storm_at: float = 0.4,
    storm_width: float = 0.2,
    epsilon_r: float = 0.3,
) -> Scenario:
    """A burst of edge updates that floods the write path / Seed queue."""
    if storm_factor <= 1.0:
        raise ValueError("storm_factor must exceed 1")
    if not 0.0 < storm_at < 1.0 or not 0.0 < storm_width < 1.0:
        raise ValueError("storm_at and storm_width must lie in (0, 1)")
    pre = storm_at * t_end
    width = min(storm_width * t_end, t_end - pre - 1e-9)
    post = t_end - pre - width
    segments = [
        WorkloadSegment(pre, lambda_q, lambda_u),
        WorkloadSegment(width, lambda_q, lambda_u * storm_factor),
    ]
    if post > 0:
        segments.append(WorkloadSegment(post, lambda_q, lambda_u))
    return Scenario(
        name=f"update-storm(x{storm_factor:g})",
        family="update-storm",
        segments=tuple(segments),
        description=f"{storm_factor:g}x update storm at t={pre:g}s",
        epsilon_r=epsilon_r,
        deadline_s=0.5,
    )


def zipf_hotset(
    t_end: float = 24.0,
    lambda_q: float = 20.0,
    lambda_u: float = 3.0,
    exponent: float = 1.1,
    shift_at: float = 0.5,
) -> Scenario:
    """Zipf source skew whose hot set is re-drawn mid-window."""
    if not 0.0 < shift_at < 1.0:
        raise ValueError("shift_at must lie in (0, 1)")
    return Scenario(
        name=f"zipf-hotset(s={exponent:g})",
        family="zipf-hotset",
        segments=(WorkloadSegment(t_end, lambda_q, lambda_u),),
        description=(
            f"Zipf({exponent:g}) sources, hot set shifts at "
            f"t={shift_at * t_end:g}s"
        ),
        source_sampler=zipf_sampler(exponent, shift_at * t_end),
        deadline_s=0.5,
    )


def cache_buster(
    t_end: float = 24.0,
    lambda_q: float = 20.0,
    lambda_u: float = 1.0,
) -> Scenario:
    """Adversarial source cycle defeating LRU-style result caches."""
    return Scenario(
        name="cache-buster",
        family="cache-buster",
        segments=(WorkloadSegment(t_end, lambda_q, lambda_u),),
        description="round-robin source cycle longer than any cache",
        source_sampler=cache_buster_sampler(),
        deadline_s=0.5,
    )


def edge_replay(
    t_end: float = 24.0,
    lambda_q: float = 8.0,
    path: str | os.PathLike[str] | None = None,
    edges: Sequence[tuple[int, int]] | None = None,
    stream_size: int = 120,
    burst_factor: float = 4.0,
) -> Scenario:
    """Replay a SNAP-style edge stream as the update traffic.

    ``path`` loads a whitespace-separated ``u v`` edge list (comment
    lines ``#``-prefixed, the SNAP distribution format) preserving the
    stream *order*; ``edges`` passes one in-process.  With neither, a
    synthetic stream of ``stream_size`` edges is drawn at compile time
    — the family still exercises what matters: updates arriving in a
    fixed replayed order on a bursty real-log-like clock rather than
    as a homogeneous Poisson process.
    """
    if path is not None and edges is not None:
        raise ValueError("pass either path or edges, not both")
    stream: tuple[tuple[int, int], ...] | None = None
    if path is not None:
        stream = tuple(load_edge_stream(path))
    elif edges is not None:
        stream = tuple((int(u), int(v)) for u, v in edges)
    return Scenario(
        name="edge-replay",
        family="edge-replay",
        segments=(WorkloadSegment(t_end, lambda_q, 0.0),),
        description="SNAP-style ordered edge stream on a bursty clock",
        edge_stream=stream,
        synthesize_stream=0 if stream is not None else stream_size,
        stream_burst=burst_factor,
        deadline_s=0.5,
    )


def paper_pattern(
    pattern: str = "query-inclined",
    t_end: float = 24.0,
    seg_seed: int = 0,
) -> Scenario:
    """One of the paper's five Fig. 4 evolving-rate patterns.

    Kept in the registry as the differential anchor: scenarios the
    existing benches already replay must keep producing the same
    shapes through the new machinery.
    """
    segments = dynamic_pattern_segments(pattern, t_end, rng=seg_seed)
    return Scenario(
        name=f"paper:{pattern}",
        family="paper-pattern",
        segments=tuple(segments),
        description=f"Fig. 4 pattern {pattern!r}",
        deadline_s=0.5,
    )


def load_edge_stream(
    path: str | os.PathLike[str],
) -> list[tuple[int, int]]:
    """Read a SNAP-style edge list preserving stream order."""
    stream: list[tuple[int, int]] = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{line_no}: expected 'u v', got {line!r}"
                )
            stream.append((int(parts[0]), int(parts[1])))
    return stream


# ----------------------------------------------------------------------
# registry + text-spec parsing
# ----------------------------------------------------------------------
FAMILIES: dict[str, Callable[..., Scenario]] = {
    "diurnal": diurnal,
    "flash-crowd": flash_crowd,
    "update-storm": update_storm,
    "zipf-hotset": zipf_hotset,
    "cache-buster": cache_buster,
    "edge-replay": edge_replay,
    "paper-pattern": paper_pattern,
}


def build_scenario(spec: Mapping[str, object]) -> Scenario:
    """Build a scenario from a ``{"family": ..., **kwargs}`` mapping."""
    if "family" not in spec:
        raise ValueError("scenario spec needs a 'family' key")
    family = str(spec["family"])
    if family not in FAMILIES:
        raise ValueError(
            f"unknown scenario family {family!r}; "
            f"choose from {sorted(FAMILIES)}"
        )
    kwargs = {k: v for k, v in spec.items() if k != "family"}
    return FAMILIES[family](**kwargs)


def _parse_value(text: str) -> object:
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_scenario(text: str) -> Scenario:
    """Parse the compact text form, e.g. ``flash-crowd(spike_factor=40)``.

    Grammar (module docstring): a family name, optionally followed by a
    parenthesized comma-separated ``key=value`` list.  Values parse as
    int, then float, then (optionally quoted) string.
    """
    text = text.strip()
    if "(" not in text:
        return build_scenario({"family": text})
    if not text.endswith(")"):
        raise ValueError(f"unbalanced parentheses in scenario spec {text!r}")
    family, _, arg_text = text[:-1].partition("(")
    spec: dict[str, object] = {"family": family.strip()}
    arg_text = arg_text.strip()
    if arg_text:
        for item in arg_text.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(
                    f"scenario argument {item.strip()!r} is not key=value"
                )
            spec[key.strip()] = _parse_value(value)
    return build_scenario(spec)


__all__ = [
    "FAMILIES",
    "PAPER_PATTERNS",
    "Scenario",
    "SourceSampler",
    "build_scenario",
    "cache_buster",
    "cache_buster_sampler",
    "diurnal",
    "edge_replay",
    "flash_crowd",
    "load_edge_stream",
    "paper_pattern",
    "parse_scenario",
    "update_storm",
    "zipf_hotset",
    "zipf_sampler",
]
