"""CLI of the scenario fuzz/replay harness.

::

    python -m repro.scenarios list
    python -m repro.scenarios fuzz --seeds 20 --out report.json
    python -m repro.scenarios fuzz --seeds 5 --quick
    python -m repro.scenarios fuzz --seeds 3 --scale   # nightly profile
    python -m repro.scenarios replay --spec "flash-crowd(spike_factor=40)"

``fuzz`` exits non-zero when any oracle was violated, so the command
doubles as the CI smoke gate (deterministic given ``--seeds``).
``replay`` runs one scenario spec (the compact DSL text form) through
the modeled engines — and the measured runtime unless ``--quick`` —
and prints its report cards.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

import numpy as np

from repro.evaluation.report import format_table
from repro.graph.generators import barabasi_albert_graph
from repro.scenarios.dsl import FAMILIES, parse_scenario
from repro.scenarios.fuzz import (
    SCALE_NODES,
    FuzzReport,
    ReportCard,
    run_fuzz,
    run_measured,
    run_modeled,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.scenarios",
        description="workload-scenario fuzzing with differential oracles",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered scenario families")

    fuzz = sub.add_parser(
        "fuzz", help="sweep seeded scenarios through every engine"
    )
    fuzz.add_argument(
        "--seeds", type=int, default=5, help="seeds per family (default 5)"
    )
    fuzz.add_argument(
        "--families",
        default=None,
        help="comma-separated family subset (default: all)",
    )
    fuzz.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="graph size (default 160; 10000 with --scale)",
    )
    fuzz.add_argument(
        "--out", default=None, help="write the report-card JSON here"
    )
    fuzz.add_argument(
        "--quick",
        action="store_true",
        help="modeled engines only (skip measured runtime + drift demo)",
    )
    fuzz.add_argument(
        "--scale",
        action="store_true",
        help="large-graph profile: 10^4-node graphs and deeper measured "
        "replays (nightly cron job; the PR gate stays small)",
    )

    replay = sub.add_parser(
        "replay", help="run one scenario spec and print its report cards"
    )
    replay.add_argument(
        "--spec",
        required=True,
        help='DSL text form, e.g. "flash-crowd(spike_factor=40)"',
    )
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--nodes", type=int, default=160)
    replay.add_argument(
        "--quick", action="store_true", help="skip the measured runtime"
    )
    return parser


def _card_rows(cards: Sequence[ReportCard]) -> list[list[object]]:
    return [
        [
            c.scenario,
            c.engine,
            c.seed,
            c.requests,
            c.p50_ms,
            c.p99_ms,
            "-" if c.deadline_ms is None else f"{c.deadline_hit_rate:.2f}",
            c.shed_rate,
            c.hit_rate,
            c.staleness_spent,
            c.violations,
        ]
        for c in cards
    ]


def _print_cards(cards: Sequence[ReportCard], title: str) -> None:
    print(
        format_table(
            [
                "scenario",
                "engine",
                "seed",
                "reqs",
                "p50 (ms)",
                "p99 (ms)",
                "SLO met",
                "shed",
                "hit rate",
                "staleness",
                "viol",
            ],
            _card_rows(cards),
            title=title,
            float_format="{:.3f}",
        )
    )


def cmd_list() -> int:
    rows = []
    for name in sorted(FAMILIES):
        scenario = FAMILIES[name]()
        rows.append(
            [name, len(scenario.segments), scenario.t_end, scenario.description]
        )
    print(
        format_table(
            ["family", "segments", "t_end (s)", "description"],
            rows,
            title="registered scenario families (repro.scenarios)",
            float_format="{:g}",
        )
    )
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    families = (
        [f.strip() for f in args.families.split(",") if f.strip()]
        if args.families
        else None
    )
    nodes = (
        args.nodes
        if args.nodes is not None
        else (SCALE_NODES if args.scale else 160)
    )
    report = run_fuzz(
        args.seeds,
        families=families,
        nodes=nodes,
        measured=not args.quick,
        drift=not args.quick,
        scale=args.scale,
        log=print,
    )
    _print_cards(
        report.cards,
        f"scenario fuzz: {args.seeds} seed(s) x "
        f"{len(report.families)} families",
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report cards written to {args.out}")
    measured = sorted(report.measured_families())
    if measured:
        print(f"measured-runtime coverage: {', '.join(measured)}")
    if not report.ok:
        print(f"{len(report.violations)} ORACLE VIOLATION(S):")
        for violation in report.violations:
            print(f"  {violation}")
        return 1
    print("all oracles passed")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    scenario = parse_scenario(args.spec)
    rng = np.random.default_rng(args.seed)
    graph = barabasi_albert_graph(args.nodes, attach=2, seed=args.seed + 1)
    workload = scenario.compile(graph, rng)
    print(
        f"{scenario.name}: {workload.num_queries} queries + "
        f"{workload.num_updates} updates over {workload.t_end:g}s"
    )
    cards, violations = run_modeled(scenario, workload, graph, args.seed)
    if not args.quick:
        card, measured_violations = run_measured(
            scenario, workload, graph, args.seed
        )
        cards.append(card)
        violations += measured_violations
    _print_cards(cards, f"replay: {scenario.name}")
    if violations:
        print(f"{len(violations)} ORACLE VIOLATION(S):")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print("all oracles passed")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return cmd_list()
        if args.command == "fuzz":
            return cmd_fuzz(args)
        if args.command == "replay":
            return cmd_replay(args)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())


# re-exported so ``repro.cli scenarios ...`` can delegate here
__all__ = ["FuzzReport", "build_parser", "main"]
