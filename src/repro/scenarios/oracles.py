"""Differential and invariant oracles for scenario replays.

Each checker inspects one replay artifact — the generated workload, a
modeled :class:`~repro.queueing.simulator.SimulationResult`, or a
measured :class:`~repro.serving.runtime.ServingReport` — and returns a
list of :class:`OracleViolation` (empty = healthy).  The fuzz harness
(:mod:`repro.scenarios.fuzz`) aggregates them across engines; CI fails
on any non-empty union.

The oracle set, and why each holds:

* **workload invariants** — arrivals sorted and inside ``[0, t_end)``;
  request-kind conservation.  These are the generator's contract; every
  downstream replay assumes them.
* **simulation invariants** — per-request time monotonicity (``arrival
  <= start <= finish``), finite non-negative service, conservation
  (every submitted request completes exactly once: Seed defers updates
  but the simulators drain every queue before returning), and busy
  time bounded by ``servers * horizon`` (no simulator may manufacture
  capacity).
* **modeled differential** — with ``epsilon_r = 0``, one server, no
  cache, the Seed-aware simulator *is* FCFS: identical per-request
  timelines (the documented coincidence contract of
  :class:`~repro.queueing.seed_simulator.SeedAwareQueueSimulator`).
* **final-graph differential** — edge updates use toggle semantics, so
  replaying the same update sequence through any engine must land on
  the same final edge set as a direct sequential application.
* **measured snapshot equivalence** — the runtime's OK update records,
  replayed in observed graph-version order on a shadow copy of the
  pre-run graph, must reproduce the final edge set exactly with
  distinct versions, and every OK query must report a version inside
  the run's span (the single-serialized-writer contract; mirrors the
  ablation bench's oracle).
* **no shed under capacity** — an admission queue at least as large as
  the whole workload can never legitimately shed.
* **staleness budget** — no live cache entry may carry accumulated
  staleness above ``epsilon_c``; charging must have evicted it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.store import PPRCache
from repro.graph.digraph import DynamicGraph
from repro.queueing.simulator import SimulationResult
from repro.queueing.workload import QUERY, UPDATE, Workload
from repro.serving.runtime import FAILED, OK, SHED, TIMEOUT, ServingReport

#: slack for comparing virtual timestamps (pure float arithmetic)
TIME_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class OracleViolation:
    """One violated invariant, attributed to a scenario and engine."""

    oracle: str
    scenario: str
    engine: str
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.scenario} / {self.engine}] {self.oracle}: {self.detail}"
        )


# ----------------------------------------------------------------------
# workload invariants
# ----------------------------------------------------------------------
def check_workload(
    scenario_name: str, workload: Workload
) -> list[OracleViolation]:
    """Generator contract: sorted, in-window, kind-conserving."""

    def bad(oracle: str, detail: str) -> OracleViolation:
        return OracleViolation(oracle, scenario_name, "generator", detail)

    violations: list[OracleViolation] = []
    previous = 0.0
    for i, request in enumerate(workload):
        if request.arrival < previous - TIME_EPS:
            violations.append(
                bad(
                    "arrival-monotone",
                    f"request {i} arrives at {request.arrival} after "
                    f"{previous}",
                )
            )
            break
        previous = request.arrival
    if workload.requests:
        first = workload.requests[0].arrival
        last = workload.requests[-1].arrival
        if first < 0.0 or last >= workload.t_end + TIME_EPS:
            violations.append(
                bad(
                    "arrival-window",
                    f"arrivals span [{first}, {last}] outside "
                    f"[0, {workload.t_end})",
                )
            )
    counted = workload.num_queries + workload.num_updates
    if counted != len(workload):
        violations.append(
            bad(
                "kind-conservation",
                f"{counted} classified of {len(workload)} requests",
            )
        )
    return violations


# ----------------------------------------------------------------------
# modeled-simulation invariants
# ----------------------------------------------------------------------
def check_simulation(
    scenario_name: str,
    engine: str,
    workload: Workload,
    result: SimulationResult,
    servers: int,
) -> list[OracleViolation]:
    """Conservation + per-request monotonicity + capacity bound."""

    def bad(oracle: str, detail: str) -> OracleViolation:
        return OracleViolation(oracle, scenario_name, engine, detail)

    violations: list[OracleViolation] = []
    if len(result.completed) != len(workload):
        violations.append(
            bad(
                "conservation",
                f"{len(result.completed)} completions for "
                f"{len(workload)} submitted requests",
            )
        )
    for kind, submitted in (
        (QUERY, workload.num_queries),
        (UPDATE, workload.num_updates),
    ):
        done = len(result.of_kind(kind))
        if done != submitted:
            violations.append(
                bad(
                    "conservation",
                    f"{done}/{submitted} {kind} requests completed",
                )
            )
    for i, c in enumerate(result.completed):
        if c.start < c.arrival - TIME_EPS:
            violations.append(
                bad(
                    "time-monotone",
                    f"completion {i} starts at {c.start} before its "
                    f"arrival {c.arrival}",
                )
            )
            break
        if c.finish < c.start - TIME_EPS or not c.service >= 0.0:
            violations.append(
                bad(
                    "time-monotone",
                    f"completion {i} has start={c.start} "
                    f"finish={c.finish} service={c.service}",
                )
            )
            break
    busy = result.total_busy_time()
    capacity = servers * result.horizon
    if busy > capacity + TIME_EPS * max(len(result.completed), 1):
        violations.append(
            bad(
                "capacity",
                f"busy time {busy:.6f}s exceeds {servers} server(s) x "
                f"horizon {result.horizon:.6f}s",
            )
        )
    return violations


def check_modeled_equivalence(
    scenario_name: str,
    fcfs: SimulationResult,
    seed_aware: SimulationResult,
) -> list[OracleViolation]:
    """FCFS == Seed-aware at ``epsilon_r = 0``, one server, no cache."""

    def bad(detail: str) -> OracleViolation:
        return OracleViolation(
            "fcfs-seed-differential", scenario_name, "modeled", detail
        )

    if len(fcfs.completed) != len(seed_aware.completed):
        return [
            bad(
                f"{len(fcfs.completed)} vs {len(seed_aware.completed)} "
                f"completions"
            )
        ]

    def timeline(
        result: SimulationResult,
    ) -> list[tuple[float, float, float, str]]:
        return sorted(
            (c.arrival, c.start, c.finish, c.kind) for c in result.completed
        )

    for i, (a, b) in enumerate(zip(timeline(fcfs), timeline(seed_aware))):
        if a[3] != b[3] or any(
            abs(x - y) > TIME_EPS for x, y in zip(a[:3], b[:3])
        ):
            return [bad(f"completion {i} diverges: FCFS {a} vs Seed {b}")]
    return []


def check_final_graph(
    scenario_name: str,
    engine: str,
    expected: DynamicGraph,
    actual: DynamicGraph,
) -> list[OracleViolation]:
    """Toggle updates commute into one final edge set per sequence."""
    expected_edges = set(expected.edges())
    actual_edges = set(actual.edges())
    if expected_edges == actual_edges:
        return []
    missing = len(expected_edges - actual_edges)
    extra = len(actual_edges - expected_edges)
    return [
        OracleViolation(
            "final-graph-differential",
            scenario_name,
            engine,
            f"final edge sets differ: {missing} missing, {extra} extra",
        )
    ]


# ----------------------------------------------------------------------
# measured-runtime invariants
# ----------------------------------------------------------------------
def check_runtime_report(
    scenario_name: str,
    report: ServingReport,
    submitted: int,
    initial_graph: DynamicGraph,
    final_graph: DynamicGraph,
    under_capacity: bool,
) -> list[OracleViolation]:
    """Measured-run contract: conservation, no faults, no shed when
    under capacity, snapshot-version equivalence.

    ``initial_graph`` must be a disposable pre-run copy — the version-
    order replay mutates it.
    """

    def bad(oracle: str, detail: str) -> OracleViolation:
        return OracleViolation(oracle, scenario_name, "measured", detail)

    violations: list[OracleViolation] = []
    if len(report.records) != submitted:
        violations.append(
            bad(
                "conservation",
                f"{len(report.records)} records for {submitted} "
                f"submitted requests",
            )
        )
    known = {OK, SHED, TIMEOUT, FAILED}
    unknown = {r.status for r in report.records} - known
    if unknown:
        violations.append(bad("status", f"unknown statuses {unknown}"))
    if report.fault_count:
        violations.append(
            bad("no-faults", f"{report.fault_count} failed records")
        )
    if under_capacity and report.shed_count:
        violations.append(
            bad(
                "no-shed-under-capacity",
                f"{report.shed_count} requests shed although the "
                f"admission queue fits the whole workload",
            )
        )
    for r in report.records:
        if r.status == OK and (
            r.started_s < r.submitted_s - TIME_EPS
            or r.finished_s < r.started_s - TIME_EPS
        ):
            violations.append(
                bad(
                    "time-monotone",
                    f"record ({r.kind}) has submitted={r.submitted_s} "
                    f"started={r.started_s} finished={r.finished_s}",
                )
            )
            break

    # snapshot-version equivalence: replay OK updates in version order
    applied = sorted(
        (r for r in report.records if r.status == OK and r.kind == UPDATE),
        key=lambda r: r.version,
    )
    versions = [r.version for r in applied]
    if len(set(versions)) != len(versions):
        violations.append(
            bad("version-order", "two updates claim the same snapshot")
        )
    shadow = initial_graph
    for record in applied:
        update = record.request.update
        assert update is not None  # UPDATE requests carry one
        update.apply(shadow)
    violations += check_final_graph(
        scenario_name, "measured", shadow, final_graph
    )
    newest = max(max(versions, default=0), final_graph.version)
    for r in report.records:
        if r.status == OK and r.kind == QUERY and not 0 <= r.version <= newest:
            violations.append(
                bad(
                    "query-version",
                    f"query observed version {r.version} outside "
                    f"[0, {newest}]",
                )
            )
            break
    return violations


def check_staleness_budget(
    scenario_name: str, engine: str, cache: PPRCache
) -> list[OracleViolation]:
    """No live entry may exceed its ``epsilon_c`` staleness budget."""
    worst = cache.worst_staleness()
    if worst <= cache.epsilon_c + TIME_EPS:
        return []
    return [
        OracleViolation(
            "staleness-budget",
            scenario_name,
            engine,
            f"live entry carries staleness {worst:.6f} above "
            f"epsilon_c={cache.epsilon_c}",
        )
    ]


__all__ = [
    "OracleViolation",
    "TIME_EPS",
    "check_final_graph",
    "check_modeled_equivalence",
    "check_runtime_report",
    "check_simulation",
    "check_staleness_budget",
    "check_workload",
]
