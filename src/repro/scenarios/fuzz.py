"""Scenario fuzz/replay harness with differential oracles + report cards.

For every ``(seed, family)`` cell the harness materializes a jittered
scenario (a flash crowd draws its spike factor from the 10-100x range,
a Zipf family its exponent, ...), compiles it to a workload, and
replays it through three engines:

1. :class:`~repro.queueing.simulator.FCFSQueueSimulator` (modeled,
   one server);
2. :class:`~repro.queueing.seed_simulator.SeedAwareQueueSimulator`
   (modeled, two servers, the scenario's ``epsilon_r``, a
   :class:`~repro.cache.ReplayCache` in front) — plus a quiet
   ``epsilon_r=0`` single-server run used purely for the FCFS
   differential;
3. the measured :class:`~repro.serving.ServingRuntime` (real threads,
   open-loop paced replay via :meth:`serve_timed`, result cache,
   snapshot-version equivalence oracle) — rotated across the seed axis
   so one ``fuzz --seeds 20`` sweep exercises every family through the
   measured stack without paying a measured run per cell.

All oracle checkers from :mod:`repro.scenarios.oracles` run on every
engine's output; each engine also emits a :class:`ReportCard` (p50/p99
vs the scenario's deadline, shed/timeout rates, staleness budget spent,
hit rate) so a fuzz sweep doubles as an SLO regression table.

The drift demo closes the ROADMAP online re-optimization loop: a flash
crowd replayed through the measured runtime with a
:class:`~repro.core.system.RateDriftDetector` watching empirical rates
from the ``on_submit`` hook; the spike must trigger at least one
:meth:`~repro.serving.ServingRuntime.reconfigure` (asserted as an
oracle) — the QuotaController's re-solve is driven by observed drift,
not a fixed period.

Everything is deterministic per seed: all randomness flows from
``np.random.default_rng`` seeded off the ``(seed, family)`` cell.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.cache.staleness import ReplayCache
from repro.cache.store import PPRCache
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.core.system import RateDriftDetector
from repro.evaluation.runner import build_algorithm
from repro.graph.digraph import DynamicGraph
from repro.graph.generators import barabasi_albert_graph
from repro.obs import MetricsRegistry, get_metrics
from repro.queueing.simulator import (
    FCFSQueueSimulator,
    ServiceFn,
    SimulationResult,
)
from repro.queueing.seed_simulator import SeedAwareQueueSimulator
from repro.queueing.workload import QUERY, Request, Workload
from repro.scenarios.dsl import (
    FAMILIES,
    PAPER_PATTERNS,
    Scenario,
    build_scenario,
    diurnal,
    edge_replay,
    flash_crowd,
    paper_pattern,
    update_storm,
    zipf_hotset,
)
from repro.scenarios.oracles import (
    OracleViolation,
    check_modeled_equivalence,
    check_final_graph,
    check_runtime_report,
    check_simulation,
    check_staleness_budget,
    check_workload,
)
from repro.serving.runtime import ServingRuntime

#: modeled service durations (virtual seconds); rho ~ 0.5 at the
#: default base rates, so spikes/storms genuinely overload the queue
MODELED_QUERY_S = 0.02
MODELED_UPDATE_S = 0.008

#: cap on requests fed to the measured runtime per cell (the modeled
#: engines replay the full workload; real threads need a bound)
MEASURED_MAX_REQUESTS = 120

#: wall-clock target for one measured open-loop replay (seconds)
MEASURED_TARGET_WALL_S = 0.35

#: ``--scale`` profile: 10^4-node graphs with a deeper measured replay.
#: The PR-gating fuzz job stays at the small defaults; this profile is
#: for the nightly cron run, where minutes are cheap and the bugs worth
#: hunting are the ones that only show up at size (allocation pressure,
#: frontier blow-ups, percentile drift on long tails).
SCALE_NODES = 10_000
SCALE_MEASURED_MAX_REQUESTS = 320
SCALE_WALK_CAP = 256
SCALE_TARGET_WALL_S = 1.5

#: cache staleness budget used by both modeled and measured replays
FUZZ_EPSILON_C = 0.2

LogFn = Callable[[str], None]


def modeled_service_fn(
    query_s: float = MODELED_QUERY_S, update_s: float = MODELED_UPDATE_S
) -> ServiceFn:
    """Constant-cost modeled service (deterministic across engines)."""

    def service(request: Request) -> float:
        return query_s if request.kind == QUERY else update_s

    return service


# ----------------------------------------------------------------------
# report cards
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ReportCard:
    """Per-(scenario, engine) SLO summary of one replay."""

    scenario: str
    family: str
    seed: int
    engine: str
    requests: int
    queries: int
    updates: int
    p50_ms: float
    p99_ms: float
    deadline_ms: float | None
    deadline_hit_rate: float
    shed_rate: float
    timeout_rate: float
    hit_rate: float
    staleness_budget: float
    staleness_spent: float
    reconfigurations: int
    violations: int

    def to_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "family": self.family,
            "seed": self.seed,
            "engine": self.engine,
            "requests": self.requests,
            "queries": self.queries,
            "updates": self.updates,
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "deadline_ms": (
                None if self.deadline_ms is None else round(self.deadline_ms, 3)
            ),
            "deadline_hit_rate": round(self.deadline_hit_rate, 4),
            "shed_rate": round(self.shed_rate, 4),
            "timeout_rate": round(self.timeout_rate, 4),
            "hit_rate": round(self.hit_rate, 4),
            "staleness_budget": self.staleness_budget,
            "staleness_spent": round(self.staleness_spent, 6),
            "reconfigurations": self.reconfigurations,
            "violations": self.violations,
        }


@dataclass(slots=True)
class FuzzReport:
    """Outcome of one fuzz sweep: every card plus every violation."""

    seeds: int
    families: list[str]
    cards: list[ReportCard] = field(default_factory=list)
    violations: list[OracleViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def measured_families(self) -> set[str]:
        return {c.family for c in self.cards if c.engine == "measured"}

    def to_dict(self) -> dict[str, object]:
        return {
            "generator": "repro.scenarios fuzz",
            "seeds": self.seeds,
            "families": self.families,
            "ok": self.ok,
            "cards": [c.to_dict() for c in self.cards],
            "violations": [str(v) for v in self.violations],
        }


def _percentiles_ms(times_s: Sequence[float]) -> tuple[float, float]:
    if not times_s:
        return 0.0, 0.0
    arr = np.asarray(times_s, dtype=np.float64)
    return (
        float(np.percentile(arr, 50)) * 1e3,
        float(np.percentile(arr, 99)) * 1e3,
    )


def _deadline_hit_rate(
    times_s: Sequence[float], deadline_s: float | None
) -> float:
    if deadline_s is None or not times_s:
        return 1.0
    met = sum(1 for t in times_s if t <= deadline_s)
    return met / len(times_s)


def _modeled_card(
    scenario: Scenario,
    seed: int,
    engine: str,
    result: SimulationResult,
    hit_rate: float,
    staleness_spent: float,
    violations: int,
) -> ReportCard:
    times = [c.response_time for c in result.of_kind(QUERY)]
    p50, p99 = _percentiles_ms(times)
    return ReportCard(
        scenario=scenario.name,
        family=scenario.family,
        seed=seed,
        engine=engine,
        requests=len(result.completed),
        queries=len(result.of_kind(QUERY)),
        updates=len(result.completed) - len(result.of_kind(QUERY)),
        p50_ms=p50,
        p99_ms=p99,
        deadline_ms=(
            None if scenario.deadline_s is None else scenario.deadline_s * 1e3
        ),
        deadline_hit_rate=_deadline_hit_rate(times, scenario.deadline_s),
        shed_rate=0.0,
        timeout_rate=0.0,
        hit_rate=hit_rate,
        staleness_budget=FUZZ_EPSILON_C,
        staleness_spent=staleness_spent,
        reconfigurations=0,
        violations=violations,
    )


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------
def run_modeled(
    scenario: Scenario,
    workload: Workload,
    graph: DynamicGraph,
    seed: int,
) -> tuple[list[ReportCard], list[OracleViolation]]:
    """FCFS + Seed-aware modeled replays with the differential oracles."""
    service = modeled_service_fn()
    violations = check_workload(scenario.name, workload)

    fcfs = FCFSQueueSimulator(service, servers=1, modeled=True).run(workload)
    violations += check_simulation(
        scenario.name, "fcfs", workload, fcfs, servers=1
    )

    quiet = MetricsRegistry()
    seed_graph = graph.copy()
    replay_cache = ReplayCache(
        PPRCache(capacity=96, epsilon_c=FUZZ_EPSILON_C, metrics=quiet),
        seed_graph,
        alpha=0.2,
        hit_service_s=MODELED_QUERY_S * 0.25,
    )
    seed_sim = SeedAwareQueueSimulator(
        service,
        seed_graph,
        epsilon_r=scenario.epsilon_r,
        servers=2,
        cache=replay_cache,
    ).run(workload)
    violations += check_simulation(
        scenario.name, "seed-aware", workload, seed_sim, servers=2
    )
    violations += check_staleness_budget(
        scenario.name, "seed-aware", replay_cache.cache
    )

    # toggle updates commute into one final edge set: the Seed-aware
    # replay (defer/flush/drain paths) must land where a plain
    # sequential application lands
    reference = graph.copy()
    for request in workload:
        if request.update is not None:
            request.update.apply(reference)
    violations += check_final_graph(
        scenario.name, "seed-aware", reference, seed_graph
    )

    # the coincidence contract: epsilon_r=0, k=1, no cache => FCFS
    differential = SeedAwareQueueSimulator(
        service, graph.copy(), epsilon_r=0.0, servers=1
    ).run(workload)
    violations += check_modeled_equivalence(scenario.name, fcfs, differential)

    cards = [
        _modeled_card(
            scenario,
            seed,
            "fcfs",
            fcfs,
            hit_rate=0.0,
            staleness_spent=0.0,
            violations=sum(1 for v in violations if v.engine == "fcfs"),
        ),
        _modeled_card(
            scenario,
            seed,
            "seed-aware",
            seed_sim,
            hit_rate=replay_cache.hit_rate(),
            staleness_spent=replay_cache.cache.worst_staleness(),
            violations=sum(1 for v in violations if v.engine == "seed-aware"),
        ),
    ]
    return cards, violations


def _truncate_for_measured(
    workload: Workload, limit: int = MEASURED_MAX_REQUESTS
) -> Workload:
    """First ``limit`` requests, window cut at the last kept arrival."""
    requests = workload.requests[:limit]
    if len(requests) == len(workload.requests):
        return workload
    t_cut = requests[-1].arrival + 1e-6 if requests else workload.t_end
    return Workload(requests, t_cut, workload.lambda_q, workload.lambda_u)


def run_measured(
    scenario: Scenario,
    workload: Workload,
    graph: DynamicGraph,
    seed: int,
    walk_cap: int = 64,
    limit: int = MEASURED_MAX_REQUESTS,
    target_wall_s: float = MEASURED_TARGET_WALL_S,
) -> tuple[ReportCard, list[OracleViolation]]:
    """Open-loop paced replay through the real ServingRuntime."""
    trimmed = _truncate_for_measured(workload, limit=limit)
    time_scale = (
        target_wall_s / trimmed.t_end if trimmed.t_end > 0 else 1.0
    )
    quiet = MetricsRegistry()
    serving_graph = graph.copy()
    initial = serving_graph.copy()
    algorithm = build_algorithm("FORA", serving_graph, walk_cap, seed=seed)
    cache = PPRCache(capacity=128, epsilon_c=FUZZ_EPSILON_C, metrics=quiet)
    runtime = ServingRuntime(
        algorithm,
        workers=2,
        epsilon_r=scenario.epsilon_r,
        queue_capacity=len(trimmed) + 8,
        cache=cache,
        metrics=quiet,
    )
    with runtime:
        report = runtime.serve_timed(trimmed, time_scale=time_scale)
    violations = check_runtime_report(
        scenario.name,
        report,
        submitted=len(trimmed),
        initial_graph=initial,
        final_graph=serving_graph,
        under_capacity=True,
    )
    violations += check_staleness_budget(scenario.name, "measured", cache)

    times = [r.response_s for r in report.completed_queries()]
    p50, p99 = _percentiles_ms(times)
    total = len(report.records) if report.records else 1
    card = ReportCard(
        scenario=scenario.name,
        family=scenario.family,
        seed=seed,
        engine="measured",
        requests=len(report.records),
        queries=sum(1 for r in report.records if r.kind == QUERY),
        updates=sum(1 for r in report.records if r.kind != QUERY),
        p50_ms=p50,
        p99_ms=p99,
        deadline_ms=None,  # wall-clock timings; virtual deadline n/a
        deadline_hit_rate=1.0,
        shed_rate=report.shed_count / total,
        timeout_rate=report.timeout_count / total,
        hit_rate=report.cache_hit_rate(),
        staleness_budget=FUZZ_EPSILON_C,
        staleness_spent=cache.worst_staleness(),
        reconfigurations=len(report.decisions),
        violations=len(violations),
    )
    return card, violations


def run_drift_demo(
    nodes: int = 150,
    seed: int = 7,
    metrics: MetricsRegistry | None = None,
) -> tuple[ReportCard, list[OracleViolation]]:
    """Flash crowd + RateDriftDetector -> live QuotaController re-solve.

    The detector watches empirical rates (virtual clock: request
    arrivals) from the ``serve_timed`` submission hook; once the spike
    drifts past threshold it re-solves through
    :meth:`ServingRuntime.reconfigure` and re-arms at the new pair.
    At least one reconfiguration is asserted as an oracle: a 12x spike
    that never trips the detector means the loop is wired wrong.
    """
    metrics = metrics if metrics is not None else get_metrics()
    scenario = flash_crowd(
        t_end=16.0, lambda_q=8.0, spike_factor=12.0, spike_at=0.4
    )
    rng = np.random.default_rng(seed)
    graph = barabasi_albert_graph(nodes, attach=2, seed=seed)
    workload = _truncate_for_measured(
        scenario.compile(graph, rng), limit=160
    )
    quiet = MetricsRegistry()
    serving_graph = graph.copy()
    initial = serving_graph.copy()
    algorithm = build_algorithm("FORA", serving_graph, 64, seed=seed)
    controller = QuotaController(
        calibrated_cost_model(algorithm, num_queries=2, rng=seed + 1),
        extra_starts=[algorithm.get_hyperparameters()],
    )
    runtime = ServingRuntime(
        algorithm,
        workers=2,
        queue_capacity=len(workload) + 8,
        controller=controller,
        metrics=quiet,
    )
    detector = RateDriftDetector(
        configured_q=scenario.segments[0].lambda_q,
        configured_u=scenario.segments[0].lambda_u,
        window=3.0,
        threshold=0.6,
        min_events=15,
    )
    reconfigured = 0

    def on_submit(request: Request, _now_s: float) -> None:
        nonlocal reconfigured
        detector.observe(request.kind, request.arrival)
        drifted = detector.check(request.arrival)
        if drifted is None:
            return
        lambda_q, lambda_u = drifted
        if lambda_q <= 0:
            return
        runtime.reconfigure(lambda_q, lambda_u, quick=True)
        detector.rearm(lambda_q, lambda_u)
        reconfigured += 1
        metrics.counter("scenario.reconfigurations").inc()

    time_scale = (
        MEASURED_TARGET_WALL_S / workload.t_end if workload.t_end > 0 else 1.0
    )
    with runtime:
        report = runtime.serve_timed(
            workload, time_scale=time_scale, on_submit=on_submit
        )
    violations = check_runtime_report(
        scenario.name,
        report,
        submitted=len(workload),
        initial_graph=initial,
        final_graph=serving_graph,
        under_capacity=True,
    )
    if reconfigured == 0:
        violations.append(
            OracleViolation(
                "drift-reconfigure",
                scenario.name,
                "measured",
                "a 12x flash crowd never tripped the drift detector",
            )
        )
    times = [r.response_s for r in report.completed_queries()]
    p50, p99 = _percentiles_ms(times)
    total = len(report.records) if report.records else 1
    card = ReportCard(
        scenario=f"{scenario.name}+drift",
        family=scenario.family,
        seed=seed,
        engine="measured",
        requests=len(report.records),
        queries=sum(1 for r in report.records if r.kind == QUERY),
        updates=sum(1 for r in report.records if r.kind != QUERY),
        p50_ms=p50,
        p99_ms=p99,
        deadline_ms=None,
        deadline_hit_rate=1.0,
        shed_rate=report.shed_count / total,
        timeout_rate=report.timeout_count / total,
        hit_rate=0.0,
        staleness_budget=FUZZ_EPSILON_C,
        staleness_spent=0.0,
        reconfigurations=reconfigured,
        violations=len(violations),
    )
    return card, violations


# ----------------------------------------------------------------------
# scenario jitter + sweep driver
# ----------------------------------------------------------------------
def jittered_scenario(family: str, rng: np.random.Generator) -> Scenario:
    """A family instance with fuzzed parameters (deterministic per rng)."""
    if family == "flash-crowd":
        return flash_crowd(
            spike_factor=float(rng.uniform(10.0, 100.0)),
            spike_at=float(rng.uniform(0.3, 0.7)),
        )
    if family == "update-storm":
        return update_storm(storm_factor=float(rng.uniform(10.0, 50.0)))
    if family == "zipf-hotset":
        return zipf_hotset(
            exponent=float(rng.uniform(0.8, 1.6)),
            shift_at=float(rng.uniform(0.3, 0.7)),
        )
    if family == "diurnal":
        return diurnal(
            cycles=float(rng.uniform(1.0, 3.0)),
            amplitude=float(rng.uniform(0.5, 0.9)),
        )
    if family == "edge-replay":
        return edge_replay(
            stream_size=int(rng.integers(60, 160)),
            burst_factor=float(rng.uniform(2.0, 8.0)),
        )
    if family == "paper-pattern":
        pattern = PAPER_PATTERNS[int(rng.integers(len(PAPER_PATTERNS)))]
        return paper_pattern(pattern, seg_seed=int(rng.integers(1 << 31)))
    return build_scenario({"family": family})


def run_fuzz(
    seeds: int,
    families: Sequence[str] | None = None,
    nodes: int = 160,
    measured: bool = True,
    drift: bool = True,
    scale: bool = False,
    metrics: MetricsRegistry | None = None,
    log: LogFn | None = None,
) -> FuzzReport:
    """The full sweep: ``seeds x families`` cells plus the drift demo.

    Modeled engines replay every cell; the measured runtime is rotated
    (cell ``seed % len(families)``) so a 20-seed sweep still pushes
    every family through real threads.  Deterministic given ``seeds``.

    ``scale`` switches the measured replays to the large-graph profile
    (deeper request cap, bigger walk budget, longer wall target); the
    caller picks the matching graph size via ``nodes`` —
    :data:`SCALE_NODES` is the intended pairing.
    """
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    chosen = list(families) if families is not None else sorted(FAMILIES)
    unknown = set(chosen) - set(FAMILIES)
    if unknown:
        raise ValueError(f"unknown families {sorted(unknown)}")
    metrics = metrics if metrics is not None else get_metrics()
    report = FuzzReport(seeds=seeds, families=chosen)
    runs_counter = metrics.counter("scenario.runs")
    violations_counter = metrics.counter("scenario.violations")
    walk_cap = SCALE_WALK_CAP if scale else 64
    limit = SCALE_MEASURED_MAX_REQUESTS if scale else MEASURED_MAX_REQUESTS
    target_wall_s = SCALE_TARGET_WALL_S if scale else MEASURED_TARGET_WALL_S

    for seed in range(seeds):
        for index, family in enumerate(chosen):
            rng = np.random.default_rng(seed * 9176 + index * 131 + 5)
            scenario = jittered_scenario(family, rng)
            graph = barabasi_albert_graph(nodes, attach=2, seed=1000 + seed)
            workload = scenario.compile(graph, rng)
            cards, violations = run_modeled(scenario, workload, graph, seed)
            runs_counter.inc(2)
            if measured and index == seed % len(chosen):
                card, measured_violations = run_measured(
                    scenario,
                    workload,
                    graph,
                    seed,
                    walk_cap=walk_cap,
                    limit=limit,
                    target_wall_s=target_wall_s,
                )
                cards.append(card)
                violations += measured_violations
                runs_counter.inc()
            report.cards += cards
            report.violations += violations
            if violations:
                violations_counter.inc(len(violations))
            if log is not None:
                engines = ",".join(c.engine for c in cards)
                log(
                    f"seed {seed:>3} {scenario.name:<28} [{engines}] "
                    f"{len(workload):>5} reqs "
                    f"{'OK' if not violations else f'{len(violations)} VIOLATIONS'}"
                )
    if drift:
        card, violations = run_drift_demo(metrics=metrics)
        report.cards.append(card)
        report.violations += violations
        runs_counter.inc()
        if violations:
            violations_counter.inc(len(violations))
        if log is not None:
            log(
                f"drift {card.scenario}: {card.reconfigurations} "
                f"reconfiguration(s), "
                f"{'OK' if not violations else f'{len(violations)} VIOLATIONS'}"
            )
    return report


__all__ = [
    "FuzzReport",
    "MEASURED_MAX_REQUESTS",
    "SCALE_NODES",
    "ReportCard",
    "jittered_scenario",
    "modeled_service_fn",
    "run_drift_demo",
    "run_fuzz",
    "run_measured",
    "run_modeled",
]
