"""Workload-scenario DSL, generators, and the fuzz/replay harness.

``repro.scenarios`` names production-shaped traffic patterns (diurnal
cycles, flash crowds, update storms, Zipf/shifting hot sets,
cache-busting adversaries, replayed edge streams) as first-class
:class:`~repro.scenarios.dsl.Scenario` values that compile to the
ordinary :class:`~repro.queueing.workload.Workload` form, and drives
them through every serving engine in the repo under differential and
invariant oracles (``python -m repro.scenarios fuzz``).  See
docs/DEVELOPMENT.md, "Scenario fuzzing".
"""

from repro.scenarios.dsl import (
    FAMILIES,
    PAPER_PATTERNS,
    Scenario,
    SourceSampler,
    build_scenario,
    cache_buster,
    diurnal,
    edge_replay,
    flash_crowd,
    load_edge_stream,
    paper_pattern,
    parse_scenario,
    update_storm,
    zipf_hotset,
)
from repro.scenarios.fuzz import (
    FuzzReport,
    ReportCard,
    jittered_scenario,
    run_drift_demo,
    run_fuzz,
    run_measured,
    run_modeled,
)
from repro.scenarios.oracles import OracleViolation

__all__ = [
    "FAMILIES",
    "FuzzReport",
    "OracleViolation",
    "PAPER_PATTERNS",
    "ReportCard",
    "Scenario",
    "SourceSampler",
    "build_scenario",
    "cache_buster",
    "diurnal",
    "edge_replay",
    "flash_crowd",
    "jittered_scenario",
    "load_edge_stream",
    "paper_pattern",
    "parse_scenario",
    "run_drift_demo",
    "run_fuzz",
    "run_measured",
    "run_modeled",
    "update_storm",
    "zipf_hotset",
]
