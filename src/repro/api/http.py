"""Minimal stdlib HTTP/1.1 server over the :class:`FrontDoor`.

``asyncio.start_server`` + hand-rolled request parsing — no external
web framework (the container policy), and nothing here is load-bearing
for correctness: every endpoint is a one-line serialization of a
:class:`~repro.api.frontdoor.FrontDoor` coroutine, which is what the
tests exercise in memory.

Endpoints
---------
==========================  ==========================================
``GET /query``              ``source`` (required), ``top_k``,
                            ``budget_s`` query params -> PPR vector;
                            503 + ``Retry-After`` when shed, 504 when
                            the deadline budget is exhausted.
``POST /update``            JSON ``{"u", "v", "kind"}`` -> assigned
                            fabric version + ack set.
``POST /reconfigure``       JSON ``{"lambda_q", "lambda_u"}`` ->
                            per-shard QuotaController decisions.
``GET /healthz``            fleet health; 503 while any range is shed.
``GET /metrics``            aggregated manager + per-worker metrics
                            (JSON).
==========================  ==========================================

Connections are single-request (``Connection: close``): the closed-loop
clients this serves open one request at a time and the parser stays
trivially correct.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from repro.api.frontdoor import ApiResponse, FrontDoor

if TYPE_CHECKING:
    from asyncio import AbstractServer, StreamReader, StreamWriter

#: refuse bodies / header blocks beyond this (pre-auth memory bound)
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _render(response: ApiResponse) -> bytes:
    body = json.dumps(response.body).encode()
    reason = _REASONS.get(response.status_code, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status_code} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if response.retry_after_s is not None:
        # Retry-After is integer seconds; round up so the hint never
        # tells a client to come back too early
        lines.append(f"Retry-After: {max(1, math.ceil(response.retry_after_s))}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _bad(status_code: int, message: str) -> ApiResponse:
    return ApiResponse(status_code, {"status": "error", "error": message})


def _query_param(
    params: dict[str, list[str]], name: str
) -> str | None:
    values = params.get(name)
    return values[0] if values else None


class HttpServer:
    """One listening socket serving a :class:`FrontDoor`."""

    def __init__(
        self,
        frontdoor: FrontDoor,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.frontdoor = frontdoor
        self.host = host
        self.port = port
        self._server: "AbstractServer | None" = None

    async def start(self) -> "HttpServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: "StreamReader", writer: "StreamWriter"
    ) -> None:
        received_s = time.perf_counter()
        try:
            response = await self._dispatch(reader, received_s)
        except Exception as exc:  # pragma: no cover - defensive edge
            response = _bad(500, f"internal error: {exc!r}")
        try:
            writer.write(_render(response))
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(
        self, reader: "StreamReader", received_s: float
    ) -> ApiResponse:
        try:
            header_block = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return _bad(400, "truncated request")
        except asyncio.LimitOverrunError:
            return _bad(413, "header block too large")
        if len(header_block) > MAX_HEADER_BYTES:
            return _bad(413, "header block too large")
        head, *header_lines = header_block.decode(
            "latin-1"
        ).rstrip("\r\n").split("\r\n")
        parts = head.split()
        if len(parts) != 3:
            return _bad(400, f"malformed request line {head!r}")
        method, target, _version = parts
        headers = {}
        for line in header_lines:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                return _bad(400, "bad Content-Length")
            if n > MAX_BODY_BYTES:
                return _bad(413, "body too large")
            try:
                body = await reader.readexactly(n)
            except asyncio.IncompleteReadError:
                return _bad(400, "truncated body")
        url = urlsplit(target)
        route = (method.upper(), url.path)
        if route == ("GET", "/query"):
            return await self._query(parse_qs(url.query), received_s)
        if route == ("POST", "/update"):
            return await self._update(body)
        if route == ("POST", "/reconfigure"):
            return await self._reconfigure(body)
        if route == ("GET", "/healthz"):
            return await self.frontdoor.healthz()
        if route == ("GET", "/metrics"):
            return await self.frontdoor.metrics_snapshot()
        if url.path in ("/query", "/update", "/reconfigure", "/healthz", "/metrics"):
            return _bad(405, f"{method} not allowed on {url.path}")
        return _bad(404, f"no route {url.path!r}")

    # ------------------------------------------------------------------
    async def _query(
        self, params: dict[str, list[str]], received_s: float
    ) -> ApiResponse:
        raw_source = _query_param(params, "source")
        if raw_source is None:
            return _bad(400, "missing required query param 'source'")
        try:
            source = int(raw_source)
            raw_top_k = _query_param(params, "top_k")
            top_k = int(raw_top_k) if raw_top_k is not None else None
            raw_budget = _query_param(params, "budget_s")
            budget_s = float(raw_budget) if raw_budget is not None else None
        except ValueError as exc:
            return _bad(400, f"bad query param: {exc}")
        return await self.frontdoor.query(
            source, budget_s=budget_s, top_k=top_k, received_s=received_s
        )

    async def _update(self, body: bytes) -> ApiResponse:
        payload = _parse_json(body)
        if payload is None:
            return _bad(400, "body must be a JSON object")
        try:
            u = int(payload["u"])
            v = int(payload["v"])
            kind = str(payload.get("kind", "toggle"))
        except (KeyError, TypeError, ValueError) as exc:
            return _bad(400, f"bad update body: {exc!r}")
        return await self.frontdoor.update(u, v, kind)

    async def _reconfigure(self, body: bytes) -> ApiResponse:
        payload = _parse_json(body)
        if payload is None:
            return _bad(400, "body must be a JSON object")
        try:
            lambda_q = float(payload["lambda_q"])
            lambda_u = float(payload["lambda_u"])
        except (KeyError, TypeError, ValueError) as exc:
            return _bad(400, f"bad reconfigure body: {exc!r}")
        return await self.frontdoor.reconfigure(lambda_q, lambda_u)


def _parse_json(body: bytes) -> dict[str, object] | None:
    try:
        payload = json.loads(body.decode() or "{}")
    except (ValueError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None
