"""Asyncio front door over a :class:`~repro.shard.ShardManager`.

:class:`FrontDoor` is the transport-independent service layer — every
HTTP endpoint in :mod:`repro.api.http` is a thin serialization of one
of its coroutines, and tests drive the coroutines directly (the
"in-memory transport"), so admission, deadline propagation, and drift
handling are exercised without sockets.

Three QoS behaviors live here rather than in the manager:

* **Deadline propagation** — a request's total ``budget_s`` starts
  ticking when the front door first sees it; only the *remaining*
  budget is forwarded, so time burned queueing upstream counts against
  the shard-side deadline, and a budget that is already gone is
  answered ``timeout`` without wasting a shard slot.
* **Shed surfacing** — every shed (front-door, manager admission, or
  worker admission queue) carries a ``retry_after_s`` hint mapped onto
  the HTTP ``Retry-After`` header.
* **Drift-driven reconfiguration** — arrivals feed a
  :class:`~repro.core.system.RateDriftDetector`; once the observed
  (lambda_q, lambda_u) drifts past threshold, the fleet's
  QuotaControllers are re-solved via
  :meth:`~repro.shard.ShardManager.reconfigure` on a worker thread
  (never on the event loop) and the detector re-arms at the new pair.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.system import RateDriftDetector
from repro.obs import MetricsRegistry
from repro.queueing.workload import QUERY, UPDATE

if TYPE_CHECKING:
    from repro.shard.manager import QueryOutcome, ShardManager

#: Retry-After fallback when an outcome carries no hint
DEFAULT_RETRY_AFTER_S = 1.0


@dataclass(frozen=True, slots=True)
class ApiResponse:
    """Transport-neutral response envelope.

    ``status_code`` follows HTTP semantics (200 served, 400 bad
    request, 503 shed + Retry-After, 504 deadline exceeded, 500
    worker fault) so the HTTP layer maps it one-to-one and in-memory
    tests assert on the same codes the wire would carry.
    """

    status_code: int
    body: dict[str, object]
    #: seconds; rendered as a Retry-After header when set
    retry_after_s: float | None = None

    @property
    def ok(self) -> bool:
        return self.status_code == 200


@dataclass(slots=True)
class DriftPolicy:
    """Knobs for the online re-optimization loop."""

    #: configured rates the detector is armed at
    lambda_q: float
    lambda_u: float
    window_s: float = 5.0
    threshold: float = 0.5
    min_events: int = 20
    #: floor between fleet re-solves (a reconfigure rebuilds indexes)
    cooldown_s: float = 2.0


@dataclass(slots=True)
class _DriftState:
    detector: RateDriftDetector
    policy: DriftPolicy
    last_reconfigure_s: float = field(default=0.0)
    inflight: threading.Event = field(default_factory=threading.Event)


class FrontDoor:
    """Service layer between transports and the shard fabric."""

    def __init__(
        self,
        manager: "ShardManager",
        *,
        default_top_k: int | None = 50,
        default_budget_s: float | None = None,
        drift: DriftPolicy | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.manager = manager
        self.default_top_k = default_top_k
        self.default_budget_s = default_budget_s
        self.metrics = metrics if metrics is not None else manager.metrics
        self._drift: _DriftState | None = None
        if drift is not None:
            self._drift = _DriftState(
                detector=RateDriftDetector(
                    configured_q=drift.lambda_q,
                    configured_u=drift.lambda_u,
                    window=drift.window_s,
                    threshold=drift.threshold,
                    min_events=drift.min_events,
                ),
                policy=drift,
            )
        #: last drift-triggered reconfigure results (observability)
        self.reconfigurations: list[dict[str, object]] = []

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    async def query(
        self,
        source: int,
        budget_s: float | None = None,
        top_k: int | None = None,
        received_s: float | None = None,
    ) -> ApiResponse:
        """Serve one SSPPR query with deadline propagation.

        ``received_s`` (``time.perf_counter()`` domain) is when the
        transport first saw the request — parsing and upstream
        queueing between then and now burns the caller's budget.
        """
        started = time.perf_counter()
        self.metrics.counter("api.requests").inc()
        self._observe_arrival(QUERY, started)
        budget = budget_s if budget_s is not None else self.default_budget_s
        remaining: float | None = None
        if budget is not None:
            spent = started - (received_s if received_s is not None else started)
            # received_s comes from the transport's wall clock; a
            # skewed or stepped client clock can place it in the
            # future (spent < 0) which would silently *extend* the
            # deadline past budget_s.  Clamp to [0, budget]: at best
            # the caller has the whole budget left, at worst none.
            spent = min(max(spent, 0.0), budget)
            remaining = budget - spent
            if remaining <= 0.0:
                self.metrics.counter("api.shed").inc()
                self._observe_response(started)
                return ApiResponse(
                    504,
                    {
                        "status": "timeout",
                        "source": source,
                        "reason": "budget exhausted before dispatch",
                    },
                )
        try:
            future = self.manager.query(
                source,
                deadline_s=remaining,
                top_k=top_k if top_k is not None else self.default_top_k,
            )
        except ValueError as exc:
            self._observe_response(started)
            return ApiResponse(
                400, {"status": "bad-request", "error": str(exc)}
            )
        outcome = await asyncio.wrap_future(future)
        self._maybe_reconfigure()
        self._observe_response(started)
        return self._outcome_response(outcome)

    async def update(
        self, u: int, v: int, kind: str = "toggle"
    ) -> ApiResponse:
        """Broadcast one edge update (blocks a worker thread, not the loop)."""
        started = time.perf_counter()
        self.metrics.counter("api.requests").inc()
        self._observe_arrival(UPDATE, started)
        loop = asyncio.get_running_loop()
        try:
            outcome = await loop.run_in_executor(
                None, lambda: self.manager.update(u, v, kind)
            )
        except (ValueError, RuntimeError) as exc:
            self._observe_response(started)
            return ApiResponse(
                400, {"status": "bad-request", "error": str(exc)}
            )
        self._maybe_reconfigure()
        self._observe_response(started)
        return ApiResponse(
            200,
            {
                "status": "ok",
                "version": outcome.version,
                "acked_shards": list(outcome.acked_shards),
                "skipped_shards": list(outcome.skipped_shards),
            },
        )

    async def reconfigure(
        self, lambda_q: float, lambda_u: float
    ) -> ApiResponse:
        """Explicitly re-solve every shard's QuotaController."""
        started = time.perf_counter()
        self.metrics.counter("api.requests").inc()
        loop = asyncio.get_running_loop()
        results = await loop.run_in_executor(
            None, lambda: self.manager.reconfigure(lambda_q, lambda_u)
        )
        drift = self._drift
        if drift is not None:
            drift.detector.rearm(lambda_q, lambda_u)
        self._observe_response(started)
        return ApiResponse(
            200,
            {
                "status": "ok",
                "lambda_q": lambda_q,
                "lambda_u": lambda_u,
                "shards": results,
            },
        )

    async def healthz(self) -> ApiResponse:
        """Fleet liveness; 503 while any shard range is shed."""
        loop = asyncio.get_running_loop()
        health = await loop.run_in_executor(None, self.manager.healthz)
        code = 200 if health.get("healthy") else 503
        return ApiResponse(
            code,
            health,
            retry_after_s=None if code == 200 else DEFAULT_RETRY_AFTER_S,
        )

    async def metrics_snapshot(self) -> ApiResponse:
        """Aggregated manager + per-worker metrics."""
        loop = asyncio.get_running_loop()
        snapshot = await loop.run_in_executor(
            None, self.manager.metrics_snapshot
        )
        return ApiResponse(200, snapshot)

    # ------------------------------------------------------------------
    def _outcome_response(self, outcome: "QueryOutcome") -> ApiResponse:
        body: dict[str, object] = {
            "status": outcome.status,
            "source": outcome.source,
            "shard": outcome.shard_id,
        }
        if outcome.status == "ok":
            body["version"] = outcome.version
            body["cached"] = outcome.cached
            body["values"] = outcome.values or []
            body["response_s"] = outcome.response_s
            return ApiResponse(200, body)
        if outcome.shed_reason is not None:
            body["shed_reason"] = outcome.shed_reason
        if outcome.error is not None:
            body["error"] = outcome.error
        if outcome.status == "timeout":
            self.metrics.counter("api.shed").inc()
            return ApiResponse(504, body)
        if outcome.status in ("shed", "unavailable"):
            self.metrics.counter("api.shed").inc()
            return ApiResponse(
                503,
                body,
                retry_after_s=(
                    outcome.retry_after_s
                    if outcome.retry_after_s is not None
                    else DEFAULT_RETRY_AFTER_S
                ),
            )
        return ApiResponse(500, body)

    def _observe_response(self, started_s: float) -> None:
        self.metrics.histogram("api.response").observe(
            time.perf_counter() - started_s
        )

    # -- drift loop ----------------------------------------------------
    def _observe_arrival(self, kind: str, now_s: float) -> None:
        drift = self._drift
        if drift is not None:
            drift.detector.observe(kind, now_s)

    def _maybe_reconfigure(self) -> None:
        """Re-solve the fleet when arrival rates drifted (off-loop)."""
        drift = self._drift
        if drift is None or drift.inflight.is_set():
            return
        now = time.perf_counter()
        if now - drift.last_reconfigure_s < drift.policy.cooldown_s:
            return
        pair = drift.detector.check(now)
        if pair is None:
            return
        drift.inflight.set()

        def _solve() -> None:
            lambda_q, lambda_u = pair
            try:
                results = self.manager.reconfigure(lambda_q, lambda_u)
                drift.detector.rearm(lambda_q, lambda_u)
                drift.last_reconfigure_s = time.perf_counter()
                self.reconfigurations.append(
                    {
                        "lambda_q": lambda_q,
                        "lambda_u": lambda_u,
                        "shards": results,
                    }
                )
            finally:
                drift.inflight.clear()

        threading.Thread(
            target=_solve, name="frontdoor-reconfigure", daemon=True
        ).start()
