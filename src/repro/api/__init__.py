"""Asyncio front door for the sharded serving fabric.

* :mod:`repro.api.frontdoor` — :class:`FrontDoor`, the transport-
  independent service layer (admission, deadline propagation,
  Retry-After shedding, drift-driven reconfiguration) over a
  :class:`~repro.shard.ShardManager`.  Tests drive its coroutines
  directly; this is the "in-memory transport".
* :mod:`repro.api.http` — :class:`HttpServer`, a dependency-free
  HTTP/1.1 serialization of the front door (``/query`` ``/update``
  ``/reconfigure`` ``/healthz`` ``/metrics``).
* :mod:`repro.api.serve` — the ``python -m repro.cli serve`` entry
  point.
"""

from repro.api.frontdoor import ApiResponse, DriftPolicy, FrontDoor
from repro.api.http import HttpServer

__all__ = ["ApiResponse", "DriftPolicy", "FrontDoor", "HttpServer"]
