"""``python -m repro.cli serve`` — stand up the sharded HTTP service.

Builds a dataset graph, spins up a :class:`~repro.shard.ShardManager`
(worker processes by default), wraps it in the asyncio front door, and
serves until interrupted.  Drift-driven reconfiguration is armed
whenever ``--quota`` is given (the workers then build calibrated
QuotaControllers at start).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from collections.abc import Sequence

from repro.api.frontdoor import DriftPolicy, FrontDoor
from repro.api.http import HttpServer
from repro.evaluation.datasets import get_dataset
from repro.ppr import ALGORITHMS
from repro.shard.backend import BACKENDS
from repro.shard.manager import ShardManager
from repro.shard.router import ROUTERS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="serve PPR queries over HTTP from a sharded fleet",
    )
    parser.add_argument("--dataset", default="dblp")
    parser.add_argument(
        "--algorithm", default="FORA", choices=sorted(ALGORITHMS)
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--backend", default="process", choices=BACKENDS)
    parser.add_argument("--router", default="hash", choices=ROUTERS)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--workers-per-shard", type=int, default=1,
        help="runtime worker threads inside each shard process",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=64,
        help="per-shard inflight bound before the front door sheds",
    )
    parser.add_argument(
        "--top-k", type=int, default=50,
        help="default vector truncation for /query responses",
    )
    parser.add_argument(
        "--budget-s", type=float, default=None,
        help="default per-query deadline budget in seconds",
    )
    parser.add_argument(
        "--cache-epsilon", type=float, default=None,
        help="enable the per-shard result cache at this epsilon_c",
    )
    parser.add_argument(
        "--epsilon-r", type=float, default=0.0,
        help="Seed reorder threshold per shard (0 = strict FCFS)",
    )
    parser.add_argument(
        "--quota", action="store_true",
        help="build per-shard QuotaControllers and arm drift-driven "
        "reconfiguration",
    )
    parser.add_argument("--lambda-q", type=float, default=None)
    parser.add_argument("--lambda-u", type=float, default=None)
    parser.add_argument(
        "--drift-threshold", type=float, default=0.5,
        help="relative rate drift that triggers a fleet re-solve",
    )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    spec = get_dataset(args.dataset)
    graph = spec.build(seed=args.seed)
    lambda_q = args.lambda_q if args.lambda_q is not None else spec.lambda_q
    lambda_u = args.lambda_u if args.lambda_u is not None else spec.lambda_q
    print(
        f"building {args.shards}-shard fleet ({args.backend}) on "
        f"{spec.name} (n={graph.num_nodes}, m={graph.num_edges})...",
        flush=True,
    )
    manager = ShardManager(
        graph,
        args.shards,
        backend=args.backend,
        router=args.router,
        algorithm=args.algorithm,
        walk_cap=spec.walk_cap,
        seed=args.seed,
        epsilon_r=args.epsilon_r,
        workers_per_shard=args.workers_per_shard,
        cache_epsilon=args.cache_epsilon,
        use_controller=args.quota,
        max_inflight_per_shard=args.max_inflight,
    )
    drift = (
        DriftPolicy(
            lambda_q=lambda_q,
            lambda_u=lambda_u,
            threshold=args.drift_threshold,
        )
        if args.quota
        else None
    )
    frontdoor = FrontDoor(
        manager,
        default_top_k=args.top_k,
        default_budget_s=args.budget_s,
        drift=drift,
    )
    server = HttpServer(frontdoor, args.host, args.port)
    await server.start()
    print(
        f"serving on http://{args.host}:{server.port}  "
        f"(endpoints: /query /update /reconfigure /healthz /metrics)",
        flush=True,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - signal path
        pass
    finally:
        await server.stop()
        manager.stop()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        print("interrupted; fleet stopped", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
