"""Workload generation: interleaved query/update request timelines.

Matches Section VIII-B/C of the paper: queries and updates arrive as
two independent processes over a window T; query sources are uniform
over the current node set; updates pick two random nodes (toggle
semantics).  Also provides the Figure 4 dynamic rate patterns
(query-inclined, balanced, update-inclined, update-declined,
query-declined), built as piecewise-constant rate segments whose
durations follow the paper's exponential(mean 10 s) phase lengths.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np
from numpy.typing import NDArray

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.queueing.arrivals import ArrivalProcess, PoissonArrivals

QUERY = "query"
UPDATE = "update"

FloatArray = NDArray[np.float64]
NodeArray = NDArray[np.int64]


@dataclass(frozen=True, slots=True)
class Request:
    """One arrival: an SSPPR query (source node) or an edge update.

    ``tag`` is an optional caller-chosen correlation id carried
    through serving untouched — the sharded fabric
    (:mod:`repro.shard`) uses it to match completion records back to
    the network request that submitted them.  It never affects
    scheduling, equality of generated workloads, or trace round-trips
    (traces neither persist nor restore tags).
    """

    arrival: float
    kind: str
    source: int | None = None
    update: EdgeUpdate | None = None
    tag: int | None = None

    def __post_init__(self) -> None:
        if self.kind == QUERY:
            if self.source is None:
                raise ValueError("query request needs a source node")
        elif self.kind == UPDATE:
            if self.update is None:
                raise ValueError("update request needs an EdgeUpdate")
        else:
            raise ValueError(f"unknown request kind {self.kind!r}")


@dataclass(slots=True)
class Workload:
    """A time-ordered request sequence plus its generation metadata."""

    requests: list[Request]
    t_end: float
    lambda_q: float
    lambda_u: float

    def __post_init__(self) -> None:
        arrivals = [r.arrival for r in self.requests]
        if arrivals != sorted(arrivals):
            self.requests = sorted(self.requests, key=lambda r: r.arrival)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> Request:
        return self.requests[index]

    @property
    def num_queries(self) -> int:
        return sum(1 for r in self.requests if r.kind == QUERY)

    @property
    def num_updates(self) -> int:
        return sum(1 for r in self.requests if r.kind == UPDATE)

    def empirical_rates(self) -> tuple[float, float]:
        """Observed (lambda_q, lambda_u) over the window."""
        if self.t_end <= 0:
            return 0.0, 0.0
        return self.num_queries / self.t_end, self.num_updates / self.t_end


def _random_queries(
    times: FloatArray, nodes: NodeArray, rng: np.random.Generator
) -> list[Request]:
    sources = rng.choice(nodes, size=times.size)
    return [
        Request(float(t), QUERY, source=int(s)) for t, s in zip(times, sources)
    ]


def _random_update_endpoints(
    count: int, nodes: NodeArray, rng: np.random.Generator
) -> tuple[NodeArray, NodeArray]:
    """Draw ``count`` uniform ordered pairs of *distinct* nodes, in bulk.

    Equivalent in distribution to ``count`` sequential
    ``rng.choice(nodes, size=2, replace=False)`` draws — the tail is
    uniform over the node set, the head uniform over the remaining
    nodes — but O(count) instead of O(count * len(nodes)): the old
    per-update ``choice(..., replace=False)`` built an n-sized
    probability scratch per draw, making update-storm generation
    O(m * n) on large node sets.  Self-loops from the independent bulk
    draws are rejected and redrawn (expected O(1) rounds: the loop
    retains 1/n of the pairs per round).
    """
    u = nodes[rng.integers(0, nodes.size, size=count)]
    v = nodes[rng.integers(0, nodes.size, size=count)]
    collided = u == v
    while bool(np.any(collided)):
        v[collided] = nodes[
            rng.integers(0, nodes.size, size=int(np.sum(collided)))
        ]
        collided = u == v
    return u, v


def _random_updates(
    times: FloatArray, nodes: NodeArray, rng: np.random.Generator
) -> list[Request]:
    if times.size == 0:
        return []
    heads, tails = _random_update_endpoints(times.size, nodes, rng)
    return [
        Request(float(t), UPDATE, update=EdgeUpdate(int(u), int(v)))
        for t, u, v in zip(times, heads, tails)
    ]


def generate_workload(
    graph: DynamicGraph,
    lambda_q: float,
    lambda_u: float,
    t_end: float,
    rng: np.random.Generator | int | None = None,
    query_process: ArrivalProcess | None = None,
    update_process: ArrivalProcess | None = None,
    query_times: FloatArray | None = None,
    update_times: FloatArray | None = None,
) -> Workload:
    """Generate a mixed workload over [0, t_end).

    Parameters
    ----------
    graph:
        Supplies the node population for query sources and update
        endpoints (the initial node set, as in the paper).
    lambda_q, lambda_u:
        Mean arrival rates (used by the default Poisson processes and
        recorded in the workload metadata).  Either may be zero to
        produce a pure stream of the other kind.
    rng:
        Numpy generator or seed.
    query_process, update_process:
        Alternative :class:`ArrivalProcess` instances (Table III).  A
        supplied process is always honored, even when the matching
        ``lambda_*`` hint is 0 (the hint is a metadata default, not a
        gate — previously a ``TraceArrivals`` passed alongside a
        placeholder rate of 0 silently yielded an empty stream); when
        the hint is 0 the recorded metadata rate is the *empirical*
        rate of the generated stream instead.
    query_times, update_times:
        Explicit timestamp arrays; override the processes entirely
        (used for trace replay).
    """
    if lambda_q < 0 or lambda_u < 0:
        raise ValueError("arrival rates must be non-negative")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    nodes = np.fromiter(graph.nodes(), dtype=np.int64, count=graph.num_nodes)
    if nodes.size < 2:
        raise ValueError("workload generation needs at least two nodes")

    def empirical(times: FloatArray) -> float:
        return times.size / t_end if t_end > 0 else 0.0

    if query_times is None:
        if query_process is not None:
            query_times = query_process.generate(t_end, rng)
            if lambda_q == 0:
                lambda_q = empirical(query_times)
        elif lambda_q > 0:
            query_times = PoissonArrivals(lambda_q).generate(t_end, rng)
        else:
            query_times = np.empty(0, dtype=np.float64)
    if update_times is None:
        if update_process is not None:
            update_times = update_process.generate(t_end, rng)
            if lambda_u == 0:
                lambda_u = empirical(update_times)
        elif lambda_u > 0:
            update_times = PoissonArrivals(lambda_u).generate(t_end, rng)
        else:
            update_times = np.empty(0, dtype=np.float64)

    requests = _random_queries(query_times, nodes, rng)
    requests += _random_updates(update_times, nodes, rng)
    requests.sort(key=lambda r: r.arrival)
    return Workload(requests, t_end, lambda_q, lambda_u)


# ----------------------------------------------------------------------
# Dynamic rate patterns (Figure 4 / Figure 10 / Figure 11)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WorkloadSegment:
    """A stretch of time with constant arrival rates."""

    duration: float
    lambda_q: float
    lambda_u: float


def dynamic_pattern_segments(
    pattern: str,
    total_time: float,
    rng: np.random.Generator | int | None = None,
    mean_phase: float = 10.0,
    q_range: tuple[float, float] = (10.0, 30.0),
    u_range: tuple[float, float] = (10.0, 30.0),
    q_fixed: float = 5.0,
    u_fixed: float = 5.0,
) -> list[WorkloadSegment]:
    """Segments for one of the paper's five evolving-workload patterns.

    Patterns (Section VIII-D):

    * ``query-inclined``  — lambda_q ramps q_range[0] -> q_range[1], lambda_u = u_fixed
    * ``query-declined``  — lambda_q ramps q_range[1] -> q_range[0], lambda_u = u_fixed
    * ``update-inclined`` — lambda_u ramps u_range[0] -> u_range[1], lambda_q = q_fixed
    * ``update-declined`` — lambda_u ramps u_range[1] -> u_range[0], lambda_q = q_fixed
    * ``balanced``        — both ramp from range[0] to the midpoint

    Phase durations are exponential with mean ``mean_phase`` ("the
    intervals keeping stable rates follow a Poisson distribution with
    an average of 10 s").
    """
    known = (
        "query-inclined",
        "query-declined",
        "update-inclined",
        "update-declined",
        "balanced",
    )
    if pattern not in known:
        raise ValueError(f"unknown pattern {pattern!r}; choose from {known}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    durations: list[float] = []
    elapsed = 0.0
    while elapsed < total_time:
        d = float(rng.exponential(mean_phase))
        d = min(d, total_time - elapsed)
        if d <= 0:
            break
        durations.append(d)
        elapsed += d
    steps = max(len(durations), 1)

    def ramp(lo: float, hi: float, i: int) -> float:
        # a single phase has nowhere to ramp: it runs at the pattern's
        # *starting* rate (returning hi here made a short query-inclined
        # window spend its whole duration at peak rate, and a declining
        # pattern start at its end rate)
        if steps == 1:
            return lo
        return lo + (hi - lo) * i / (steps - 1)

    segments: list[WorkloadSegment] = []
    for i, duration in enumerate(durations):
        if pattern == "query-inclined":
            lq, lu = ramp(q_range[0], q_range[1], i), u_fixed
        elif pattern == "query-declined":
            lq, lu = ramp(q_range[1], q_range[0], i), u_fixed
        elif pattern == "update-inclined":
            lq, lu = q_fixed, ramp(u_range[0], u_range[1], i)
        elif pattern == "update-declined":
            lq, lu = q_fixed, ramp(u_range[1], u_range[0], i)
        else:  # balanced
            mid_q = (q_range[0] + q_range[1]) / 2
            mid_u = (u_range[0] + u_range[1]) / 2
            lq = ramp(q_range[0], mid_q, i)
            lu = ramp(u_range[0], mid_u, i)
        segments.append(WorkloadSegment(duration, lq, lu))
    return segments


def generate_segmented_workload(
    graph: DynamicGraph,
    segments: list[WorkloadSegment],
    rng: np.random.Generator | int | None = None,
) -> Workload:
    """Concatenate per-segment Poisson workloads into one timeline."""
    if not segments:
        raise ValueError("need at least one segment")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    requests: list[Request] = []
    offset = 0.0
    for segment in segments:
        piece = generate_workload(
            graph, segment.lambda_q, segment.lambda_u, segment.duration, rng
        )
        requests += [
            Request(
                r.arrival + offset, r.kind, source=r.source, update=r.update
            )
            for r in piece
        ]
        offset += segment.duration
    total_q = sum(s.lambda_q * s.duration for s in segments) / offset
    total_u = sum(s.lambda_u * s.duration for s in segments) / offset
    requests.sort(key=lambda r: r.arrival)
    return Workload(requests, offset, total_q, total_u)
