"""Arrival-time processes.

The paper models query and update arrivals as Poisson processes
(Section VIII-B) and stress-tests robustness under Uniform, Geometric,
Normal, and Gamma inter-arrival distributions plus a real Wikipedia
event stream (Table III).  Every process here generates arrival
*timestamps* in virtual seconds over a window [0, t_end); all draw from
a caller-supplied numpy generator for reproducibility.

``wikipedia_like_trace`` is the substitution for the paper's Wikipedia
stream [72]: a doubly-stochastic (rate-switching) Poisson process that
exhibits the bursts and lulls of a real event log — the property the
paper's experiment actually exercises (live rate monitoring).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np
from numpy.typing import NDArray

FloatArray = NDArray[np.float64]


class ArrivalProcess(ABC):
    """Generates arrival timestamps at a configured mean rate."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate

    @abstractmethod
    def inter_arrivals(
        self, count: int, rng: np.random.Generator
    ) -> FloatArray:
        """Draw ``count`` positive inter-arrival gaps (mean 1/rate)."""

    def generate(self, t_end: float, rng: np.random.Generator) -> FloatArray:
        """Arrival timestamps in [0, t_end), sorted ascending."""
        if t_end <= 0:
            return np.empty(0, dtype=np.float64)
        expected = self.rate * t_end
        times: list[FloatArray] = []
        total = 0.0
        # draw in chunks until we pass t_end
        while total < t_end:
            chunk = self.inter_arrivals(max(int(expected) + 16, 16), rng)
            arrivals = np.asarray(total + np.cumsum(chunk), dtype=np.float64)
            times.append(arrivals)
            advanced = float(arrivals[-1])
            if advanced <= total:
                # a whole chunk of zero gaps would spin this loop
                # forever; that violates the strictly-positive
                # inter-arrival contract, so fail loudly
                raise RuntimeError(
                    f"{type(self).__name__}.inter_arrivals made no "
                    f"progress (all gaps <= 0); inter-arrival gaps "
                    f"must be strictly positive"
                )
            total = advanced
        all_times = np.concatenate(times)
        return np.asarray(all_times[all_times < t_end], dtype=np.float64)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rate={self.rate:g})"


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrivals — the paper's default."""

    def inter_arrivals(
        self, count: int, rng: np.random.Generator
    ) -> FloatArray:
        return np.asarray(
            rng.exponential(1.0 / self.rate, size=count), dtype=np.float64
        )


class UniformArrivals(ArrivalProcess):
    """Inter-arrivals uniform on (0, 2/rate] — mean 1/rate, CV 1/sqrt(3)."""

    def inter_arrivals(
        self, count: int, rng: np.random.Generator
    ) -> FloatArray:
        # rng.random() draws from [0, 1), so 1 - draw lies in (0, 1]:
        # gaps stay strictly positive (rng.uniform's half-open interval
        # includes 0.0, which creates duplicate timestamps and can
        # stall generate's chunk loop)
        return np.asarray(
            (1.0 - rng.random(size=count)) * (2.0 / self.rate),
            dtype=np.float64,
        )


class GeometricArrivals(ArrivalProcess):
    """Discrete-clock geometric inter-arrivals.

    Time advances in ticks of ``tick`` seconds; each tick an arrival
    occurs with probability ``rate * tick`` (must be < 1).  The
    resulting inter-arrival is geometric with mean 1/rate.
    """

    def __init__(self, rate: float, tick: float | None = None) -> None:
        super().__init__(rate)
        self.tick = tick if tick is not None else 0.1 / rate
        if not 0 < self.rate * self.tick < 1:
            raise ValueError("rate * tick must lie in (0, 1)")

    def inter_arrivals(
        self, count: int, rng: np.random.Generator
    ) -> FloatArray:
        p = self.rate * self.tick
        gaps = rng.geometric(p, size=count) * self.tick
        return np.asarray(gaps, dtype=np.float64)


class NormalArrivals(ArrivalProcess):
    """Truncated-normal inter-arrivals with coefficient of variation ``cv``."""

    def __init__(self, rate: float, cv: float = 0.5) -> None:
        super().__init__(rate)
        if cv <= 0:
            raise ValueError("cv must be positive")
        self.cv = cv

    def inter_arrivals(
        self, count: int, rng: np.random.Generator
    ) -> FloatArray:
        mean = 1.0 / self.rate
        draws = rng.normal(mean, self.cv * mean, size=count)
        # reflect non-positive draws to keep gaps strictly positive
        return np.asarray(
            np.maximum(np.abs(draws), mean * 1e-6), dtype=np.float64
        )


class GammaArrivals(ArrivalProcess):
    """Gamma(shape, scale) inter-arrivals with mean 1/rate."""

    def __init__(self, rate: float, shape: float = 2.0) -> None:
        super().__init__(rate)
        if shape <= 0:
            raise ValueError("shape must be positive")
        self.shape = shape

    def inter_arrivals(
        self, count: int, rng: np.random.Generator
    ) -> FloatArray:
        scale = 1.0 / (self.rate * self.shape)
        return np.asarray(
            rng.gamma(self.shape, scale, size=count), dtype=np.float64
        )


class TraceArrivals(ArrivalProcess):
    """Replay of explicit timestamps (e.g. extracted from a real log)."""

    def __init__(self, times: Sequence[float]) -> None:
        arr = np.asarray(sorted(times), dtype=np.float64)
        if arr.size and arr[0] < 0:
            raise ValueError("trace timestamps must be non-negative")
        if arr.size >= 2 and float(arr[-1]) <= 0.0:
            # every timestamp is 0.0: the span is empty and any rate
            # estimate would be meaningless (the old 1e-12 clamp
            # produced rates near 1e12, poisoning downstream
            # traffic-intensity estimates)
            raise ValueError(
                "trace has multiple events but zero time span; "
                "cannot estimate an arrival rate"
            )
        # a single event (or none) carries no span information: fall
        # back to a 1-second window instead of a degenerate clamp
        span = float(arr[-1]) if arr.size and float(arr[-1]) > 0.0 else 1.0
        super().__init__(rate=max(arr.size / span, 1e-12))
        self._times: FloatArray = arr

    def inter_arrivals(
        self, count: int, rng: np.random.Generator
    ) -> FloatArray:
        raise NotImplementedError("trace replay does not resample gaps")

    def generate(self, t_end: float, rng: np.random.Generator) -> FloatArray:
        kept = self._times[self._times < t_end]
        return np.asarray(kept, dtype=np.float64).copy()


def wikipedia_like_trace(
    rate: float,
    t_end: float,
    rng: np.random.Generator,
    burst_factor: float = 4.0,
    mean_phase: float | None = None,
) -> FloatArray:
    """Bursty arrival timestamps mimicking a live event stream.

    A two-state Markov-modulated Poisson process: the instantaneous rate
    alternates between a calm state (2 rate / (1 + burst_factor)) and a
    bursty state (2 rate burst_factor / (1 + burst_factor)), with
    exponentially distributed phase lengths of equal mean, so the
    long-run mean rate is exactly ``rate``.

    This is the documented substitution for the paper's Wikipedia
    stream — it produces the non-homogeneous arrivals that force
    Quota's online rate monitoring to re-optimize.
    """
    if rate <= 0 or t_end <= 0:
        raise ValueError("rate and t_end must be positive")
    phase_mean = mean_phase if mean_phase is not None else t_end / 10.0
    low = 2.0 * rate / (1.0 + burst_factor)
    rates = (low, low * burst_factor)
    times: list[float] = []
    t = 0.0
    state = int(rng.integers(0, 2))
    while t < t_end:
        phase_len = float(rng.exponential(phase_mean))
        phase_end = min(t + phase_len, t_end)
        current = rates[state]
        while True:
            t += float(rng.exponential(1.0 / current))
            if t >= phase_end:
                break
            times.append(t)
        t = phase_end
        state = 1 - state
    return np.asarray(times, dtype=np.float64)
