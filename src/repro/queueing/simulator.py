"""Virtual-time FCFS single-server queue simulator.

The central reproduction substitution (DESIGN.md §3): rather than
wall-clock-sleeping between arrivals — unaffordable and noisy in pure
Python — the simulator advances a *virtual clock*.  Each request's
service duration is supplied by a caller-provided ``service_fn`` (either
the measured execution time of the real PPR operation, or a modeled
cost), and completion times follow the Lindley recursion

    start_i  = max(arrival_i, finish_{i-1})
    finish_i = start_i + service_i

which is exactly the FCFS dynamics of Figure 1.  Response time =
finish - arrival, the quantity every experiment reports.
"""

from __future__ import annotations

import heapq
import math
import warnings
from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.cache.staleness import ReplayCache
from repro.queueing.workload import QUERY, UPDATE, Request, Workload


class MeasuredParallelWarning(UserWarning):
    """A k > 1 simulation ran without declaring ``modeled=True``.

    With multiple virtual servers only the *timeline* is parallel: a
    ``service_fn`` that actually executes work (measured mode) still
    runs sequentially in this process, so presenting its output as a
    parallel measurement mislabels the result.  Pass ``modeled=True``
    to assert the service durations are modeled (cost-function) values,
    or use :class:`repro.serving.ServingRuntime` for genuinely
    concurrent measured execution.
    """


@dataclass(frozen=True, slots=True)
class CompletedRequest:
    """A request with its simulated timing."""

    request: Request
    start: float
    finish: float
    service: float

    @property
    def arrival(self) -> float:
        return self.request.arrival

    @property
    def kind(self) -> str:
        return self.request.kind

    @property
    def waiting_time(self) -> float:
        return self.start - self.request.arrival

    @property
    def response_time(self) -> float:
        return self.finish - self.request.arrival


class SimulationResult:
    """Aggregated outcome of one simulated workload replay."""

    def __init__(self, completed: list[CompletedRequest], t_end: float) -> None:
        self.completed = completed
        self.t_end = t_end

    def __len__(self) -> int:
        return len(self.completed)

    def of_kind(self, kind: str) -> list[CompletedRequest]:
        return [c for c in self.completed if c.kind == kind]

    def query_response_times(self) -> NDArray[np.float64]:
        return np.array(
            [c.response_time for c in self.completed if c.kind == QUERY],
            dtype=np.float64,
        )

    def mean_query_response_time(self) -> float:
        """The paper's headline metric R_q."""
        times = self.query_response_times()
        return float(times.mean()) if times.size else 0.0

    def percentile_query_response_time(self, q: float) -> float:
        """Response-time percentile of the queries.

        ``q`` is on the 0-100 scale (``99`` is the p99, matching
        ``np.percentile``).  Values in the open interval (0, 1) are
        rejected: they almost always mean the caller passed a fraction
        (``0.99``) where a percentage was intended, which would silently
        return roughly the *minimum* instead of the tail.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if 0.0 < q < 1.0:
            raise ValueError(
                f"q={q} looks like a fraction; percentiles are on the "
                f"0-100 scale (use {q * 100:g} for the p{q * 100:g})"
            )
        times = self.query_response_times()
        return float(np.percentile(times, q)) if times.size else 0.0

    def mean_service_time(self, kind: str) -> float:
        services = [c.service for c in self.completed if c.kind == kind]
        return float(np.mean(services)) if services else 0.0

    def total_busy_time(self) -> float:
        return float(sum(c.service for c in self.completed))

    @property
    def horizon(self) -> float:
        """Virtual-time span the load metrics are normalized by.

        The workload window ``t_end`` extended to the last completion:
        the server may legitimately stay busy past the arrival window,
        and dividing busy time by a span shorter than the work it
        contains would report rho > 1 for an underloaded system.  Both
        :meth:`utilization` and :meth:`empirical_load` use this same
        denominator.
        """
        if not self.completed:
            return self.t_end
        return max(self.t_end, max(c.finish for c in self.completed))

    def utilization(self) -> float:
        """Fraction of virtual time the server was busy."""
        if not self.completed:
            return 0.0
        horizon = self.horizon
        return self.total_busy_time() / horizon if horizon > 0 else 0.0

    def empirical_load(self) -> float:
        """lambda_q t_q + lambda_u t_u estimated from the replay.

        Shares :attr:`horizon` with :meth:`utilization` so the two
        never disagree about the denominator.
        """
        horizon = self.horizon
        if horizon <= 0:
            return 0.0
        return self.total_busy_time() / horizon


ServiceFn = Callable[[Request], float]


def validate_service(service: float, request: Request) -> float:
    """Reject negative / NaN / infinite service durations.

    The seed implementation only rejected ``service < 0``; a NaN or
    inf (a cost model dividing by a zero rate, an uninitialized probe)
    passed the check and silently poisoned every later finish time and
    all derived metrics — NaN compares false against everything, so
    the Lindley recursion never noticed.
    """
    if service < 0 or not math.isfinite(service):
        raise ValueError(
            f"service_fn returned invalid duration {service!r} "
            f"for request {request!r}"
        )
    return service


class FCFSQueueSimulator:
    """Replays a workload through a single FCFS server in virtual time.

    Parameters
    ----------
    service_fn:
        Maps a request to its service duration in virtual seconds.
        The two standard choices are *measured* service (execute the
        real PPR query/update and return its wall time) and *modeled*
        service (evaluate a cost function).  Executing inside the
        service function is what keeps algorithm state (graph, index)
        consistent with the replay order.
    servers:
        Number of parallel servers (default 1, the paper's setting).
        With k > 1 each request is dispatched FCFS to the earliest-free
        server — the substrate for the "parallel PPR processing"
        future-work direction.
    modeled:
        Declare that ``service_fn`` returns *modeled* (cost-function)
        durations rather than executing work.  With ``servers > 1``
        this declaration matters: measured execution is still
        sequential in this process — only the virtual timeline is
        parallel — so a k > 1 run without ``modeled=True`` emits
        :class:`MeasuredParallelWarning` instead of letting benches
        mislabel a sequential-execution timeline as parallel.  For
        genuinely concurrent measured serving use
        :class:`repro.serving.ServingRuntime`.
    cache:
        Optional :class:`~repro.cache.ReplayCache` reproducing the
        serving runtime's hit/miss service-time mixture in virtual
        time: a query that hits is charged ``cache.hit_service_s``
        and ``service_fn`` is *not* invoked (mirroring
        lookup-before-compute); a miss runs normally and is admitted
        at its service cost; every update charges the cache's
        staleness tracker *after* ``service_fn`` ran, so a measured
        service function that mutates the graph is charged against
        post-update degrees.
    """

    def __init__(
        self,
        service_fn: ServiceFn,
        servers: int = 1,
        modeled: bool = False,
        cache: ReplayCache | None = None,
    ) -> None:
        if servers < 1:
            raise ValueError("servers must be >= 1")
        self._service_fn = service_fn
        self._servers = servers
        self._modeled = modeled
        self._cache = cache

    def run(
        self,
        workload: Workload | Iterable[Request],
        t_end: float | None = None,
    ) -> SimulationResult:
        """Process every request in arrival (FCFS) order."""
        if isinstance(workload, Workload):
            requests = workload.requests
            horizon = workload.t_end if t_end is None else t_end
        else:
            requests = sorted(workload, key=lambda r: r.arrival)
            # resolved below once completions are known: a raw iterable
            # has no generation window, and using the last *arrival*
            # alone would under-span the replay (service extends past
            # it), inflating the load metrics above 1 for an
            # underloaded system
            horizon = t_end
        if self._servers > 1 and not self._modeled:
            warnings.warn(
                "FCFSQueueSimulator with servers > 1 executes service_fn "
                "sequentially; only the virtual timeline is parallel. "
                "Pass modeled=True to declare modeled service durations, "
                "or use repro.serving.ServingRuntime for measured "
                "concurrency.",
                MeasuredParallelWarning,
                stacklevel=2,
            )
        completed: list[CompletedRequest] = []
        # min-heap of per-server next-free times
        free_at = [0.0] * self._servers
        heapq.heapify(free_at)
        cache = self._cache
        for request in requests:
            earliest = heapq.heappop(free_at)
            start = max(request.arrival, earliest)
            if (
                cache is not None
                and request.kind == QUERY
                and request.source is not None
                and cache.hit(request.source)
            ):
                service = cache.hit_service_s
            else:
                service = validate_service(
                    float(self._service_fn(request)), request
                )
                if cache is not None:
                    if request.kind == QUERY and request.source is not None:
                        cache.admit(request.source, cost_s=service)
                    elif request.kind == UPDATE and request.update is not None:
                        cache.on_update(request.update)
            finish = start + service
            completed.append(CompletedRequest(request, start, finish, service))
            heapq.heappush(free_at, finish)
        if horizon is None:
            last_arrival = requests[-1].arrival if requests else 0.0
            last_finish = max((c.finish for c in completed), default=0.0)
            horizon = max(last_arrival, last_finish)
        return SimulationResult(completed, horizon)
