"""Virtual-time FCFS single-server queue simulator.

The central reproduction substitution (DESIGN.md §3): rather than
wall-clock-sleeping between arrivals — unaffordable and noisy in pure
Python — the simulator advances a *virtual clock*.  Each request's
service duration is supplied by a caller-provided ``service_fn`` (either
the measured execution time of the real PPR operation, or a modeled
cost), and completion times follow the Lindley recursion

    start_i  = max(arrival_i, finish_{i-1})
    finish_i = start_i + service_i

which is exactly the FCFS dynamics of Figure 1.  Response time =
finish - arrival, the quantity every experiment reports.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.queueing.workload import QUERY, Request, Workload


@dataclass(frozen=True, slots=True)
class CompletedRequest:
    """A request with its simulated timing."""

    request: Request
    start: float
    finish: float
    service: float

    @property
    def arrival(self) -> float:
        return self.request.arrival

    @property
    def kind(self) -> str:
        return self.request.kind

    @property
    def waiting_time(self) -> float:
        return self.start - self.request.arrival

    @property
    def response_time(self) -> float:
        return self.finish - self.request.arrival


class SimulationResult:
    """Aggregated outcome of one simulated workload replay."""

    def __init__(self, completed: list[CompletedRequest], t_end: float) -> None:
        self.completed = completed
        self.t_end = t_end

    def __len__(self) -> int:
        return len(self.completed)

    def of_kind(self, kind: str) -> list[CompletedRequest]:
        return [c for c in self.completed if c.kind == kind]

    def query_response_times(self) -> np.ndarray:
        return np.array(
            [c.response_time for c in self.completed if c.kind == QUERY]
        )

    def mean_query_response_time(self) -> float:
        """The paper's headline metric R_q."""
        times = self.query_response_times()
        return float(times.mean()) if times.size else 0.0

    def percentile_query_response_time(self, q: float) -> float:
        times = self.query_response_times()
        return float(np.percentile(times, q)) if times.size else 0.0

    def mean_service_time(self, kind: str) -> float:
        services = [c.service for c in self.completed if c.kind == kind]
        return float(np.mean(services)) if services else 0.0

    def total_busy_time(self) -> float:
        return float(sum(c.service for c in self.completed))

    def utilization(self) -> float:
        """Fraction of virtual time the server was busy."""
        if not self.completed:
            return 0.0
        horizon = max(self.t_end, max(c.finish for c in self.completed))
        return self.total_busy_time() / horizon if horizon > 0 else 0.0

    def empirical_load(self) -> float:
        """lambda_q t_q + lambda_u t_u estimated from the replay."""
        if self.t_end <= 0:
            return 0.0
        return self.total_busy_time() / self.t_end


ServiceFn = Callable[[Request], float]


class FCFSQueueSimulator:
    """Replays a workload through a single FCFS server in virtual time.

    Parameters
    ----------
    service_fn:
        Maps a request to its service duration in virtual seconds.
        The two standard choices are *measured* service (execute the
        real PPR query/update and return its wall time) and *modeled*
        service (evaluate a cost function).  Executing inside the
        service function is what keeps algorithm state (graph, index)
        consistent with the replay order.
    servers:
        Number of parallel servers (default 1, the paper's setting).
        With k > 1 each request is dispatched FCFS to the earliest-free
        server — the substrate for the "parallel PPR processing"
        future-work direction.  Note that with k > 1 the *modeled*
        service mode is the sensible one: measured execution is still
        sequential in this process, only the virtual timeline is
        parallel.
    """

    def __init__(self, service_fn: ServiceFn, servers: int = 1) -> None:
        if servers < 1:
            raise ValueError("servers must be >= 1")
        self._service_fn = service_fn
        self._servers = servers

    def run(
        self,
        workload: Workload | Iterable[Request],
        t_end: float | None = None,
    ) -> SimulationResult:
        """Process every request in arrival (FCFS) order."""
        if isinstance(workload, Workload):
            requests = workload.requests
            horizon = workload.t_end if t_end is None else t_end
        else:
            requests = sorted(workload, key=lambda r: r.arrival)
            horizon = t_end if t_end is not None else (
                requests[-1].arrival if requests else 0.0
            )
        import heapq

        completed: list[CompletedRequest] = []
        # min-heap of per-server next-free times
        free_at = [0.0] * self._servers
        heapq.heapify(free_at)
        for request in requests:
            earliest = heapq.heappop(free_at)
            start = max(request.arrival, earliest)
            service = float(self._service_fn(request))
            if service < 0:
                raise ValueError(
                    f"service_fn returned negative duration {service}"
                )
            finish = start + service
            completed.append(CompletedRequest(request, start, finish, service))
            heapq.heappush(free_at, finish)
        return SimulationResult(completed, horizon)
