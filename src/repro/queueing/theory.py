"""Queueing-theory formulas of Section IV-A.

Two regimes:

* **Stable** (rho = lambda_q t_q + lambda_u t_u < 1): Eq. 2, an
  M/G/1-style Pollaczek–Khinchine estimate of the mean query response
  time over a mixed query/update stream (from Toain [31]).
* **Unstable** (rho >= 1): Lemma 1, the asymptotic linear growth of the
  N-th query's response time; minimizing rho minimizes per-query delay.

These are the objective functions Quota optimizes.
"""

from __future__ import annotations

import math


def _require_rates(lambda_q: float, lambda_u: float) -> None:
    """Reject negative arrival rates.

    A negative lambda yields rho < 0 and negative "waiting" times that
    an optimizer will happily chase; rates are frequencies and must be
    non-negative.
    """
    if lambda_q < 0 or lambda_u < 0:
        raise ValueError(
            f"arrival rates must be non-negative, got "
            f"lambda_q={lambda_q}, lambda_u={lambda_u}"
        )


def traffic_intensity(
    lambda_q: float, lambda_u: float, t_q: float, t_u: float
) -> float:
    """rho = lambda_q * t_q + lambda_u * t_u (Definition 2)."""
    _require_rates(lambda_q, lambda_u)
    return lambda_q * t_q + lambda_u * t_u


def is_stable(
    lambda_q: float, lambda_u: float, t_q: float, t_u: float
) -> bool:
    """Stability predicate: the offered load fits in one server-second."""
    return traffic_intensity(lambda_q, lambda_u, t_q, t_u) < 1.0


def expected_response_time(
    lambda_q: float,
    lambda_u: float,
    t_q: float,
    t_u: float,
    cv_q: float = 1.0,
    cv_u: float = 1.0,
) -> float:
    """Eq. 2: mean query response time in the stable regime.

        R_q = [lambda_u t_u^2 (1 + CV_u^2) + lambda_q t_q^2 (1 + CV_q^2)]
              / (2 (1 - rho))  +  t_q

    Returns ``math.inf`` when the queue is unstable (rho >= 1), where
    the formula is undefined — callers switch to
    :func:`unstable_response_growth` there, exactly as Quota's
    objective dispatch does.

    Parameters
    ----------
    cv_q, cv_u:
        Coefficients of variation of the service times.  The paper
        treats these as fixed (tuning them is "insignificant compared
        with tuning mean query/update times"); 1.0 matches
        exponential-like service variability.
    """
    _require_rates(lambda_q, lambda_u)
    if t_q < 0 or t_u < 0:
        raise ValueError("service times must be non-negative")
    rho = traffic_intensity(lambda_q, lambda_u, t_q, t_u)
    if rho >= 1.0:
        return math.inf
    waiting = (
        lambda_u * t_u**2 * (1.0 + cv_u**2)
        + lambda_q * t_q**2 * (1.0 + cv_q**2)
    ) / (2.0 * (1.0 - rho))
    return waiting + t_q


def unstable_response_growth(
    lambda_q: float, lambda_u: float, t_q: float, t_u: float
) -> float:
    """Lemma 1: lim W_{N_q} / N_q = (rho - 1) / lambda_q for rho >= 1.

    The response time of the N-th query grows linearly at this rate in
    an overloaded queue; it is zero (no asymptotic growth) when the
    queue is stable.
    """
    if lambda_q <= 0:
        raise ValueError("lambda_q must be positive")
    if lambda_u < 0:
        raise ValueError(f"lambda_u must be non-negative, got {lambda_u}")
    rho = traffic_intensity(lambda_q, lambda_u, t_q, t_u)
    return max(rho - 1.0, 0.0) / lambda_q


# ----------------------------------------------------------------------
# Alternative response-time estimates.
#
# The paper notes (after Eq. 2) that "other estimates in [31] that are
# under different models are also applicable in our framework".  These
# are the two standard alternatives; QuotaController accepts any of the
# three via its ``response_model`` option.
# ----------------------------------------------------------------------
def mm1_response_time(
    lambda_q: float, lambda_u: float, t_q: float, t_u: float
) -> float:
    """M/M/1 estimate: treat the mixed stream as one exponential server.

    The combined arrival rate is lambda_q + lambda_u and the effective
    mean service time is the load-weighted mixture; response time is
    the classic W = 1 / (mu - lambda), of which the query's share keeps
    the final t_q service term (waiting is shared FCFS).

    Cruder than Eq. 2 — it ignores the service-time mixture's true
    variance — but needs no CV inputs.
    """
    _require_rates(lambda_q, lambda_u)
    if t_q < 0 or t_u < 0:
        raise ValueError("service times must be non-negative")
    total_rate = lambda_q + lambda_u
    if total_rate <= 0:
        return t_q
    mean_service = (lambda_q * t_q + lambda_u * t_u) / total_rate
    rho = total_rate * mean_service
    if rho >= 1.0:
        return math.inf
    waiting = rho * mean_service / (1.0 - rho)
    return waiting + t_q


def heavy_traffic_response_time(
    lambda_q: float,
    lambda_u: float,
    t_q: float,
    t_u: float,
    cv_q: float = 1.0,
    cv_u: float = 1.0,
    cv_arrival: float = 1.0,
) -> float:
    """Kingman/heavy-traffic (G/G/1) estimate.

    W ~ rho / (1 - rho) * (C_a^2 + C_s^2) / 2 * E[S], the diffusion
    approximation that becomes exact as rho -> 1 [78].  Useful when the
    queue runs close to saturation, where Eq. 2 and the M/M/1 form
    under-weight variability.
    """
    _require_rates(lambda_q, lambda_u)
    if t_q < 0 or t_u < 0:
        raise ValueError("service times must be non-negative")
    total_rate = lambda_q + lambda_u
    if total_rate <= 0:
        return t_q
    mean_service = (lambda_q * t_q + lambda_u * t_u) / total_rate
    rho = total_rate * mean_service
    if rho >= 1.0:
        return math.inf
    if mean_service <= 0:
        return t_q
    # second moment of the service mixture -> squared CV of service
    second = (
        lambda_q * t_q**2 * (1.0 + cv_q**2)
        + lambda_u * t_u**2 * (1.0 + cv_u**2)
    ) / total_rate
    cv_service_sq = max(second / mean_service**2 - 1.0, 0.0)
    waiting = (
        rho
        / (1.0 - rho)
        * (cv_arrival**2 + cv_service_sq)
        / 2.0
        * mean_service
    )
    return waiting + t_q
