"""Event-driven k-server simulator with Seed reordering + idle drain.

:class:`~repro.queueing.simulator.FCFSQueueSimulator` replays strict
FCFS; the measured serving loop
(:class:`~repro.core.system.QuotaSystem` and the concurrent
:class:`~repro.serving.ServingRuntime`) additionally defers updates
through the Seed queue, forces a flush when a query's ordering-error
budget is exceeded, and drains deferred updates while servers idle.
:class:`SeedAwareQueueSimulator` models *those* semantics in virtual
time, for any number of servers, so modeled and measured runs of the
same workload are directly comparable (the Issue-3 measured-vs-modeled
contract; see docs/DEVELOPMENT.md).

Semantics
---------
* **k servers** — each executing request occupies the earliest-free
  server (min-heap of per-server next-free times, the event queue of
  the discrete simulation).
* **Seed reordering** (``epsilon_r > 0``) — updates are deferred into a
  :class:`~repro.core.seed.SeedQueue` at zero server cost; a query
  whose Lemma 2 bound exceeds ``epsilon_r`` first pays for a full flush
  on its server, then runs.
* **Idle drain** — between arrivals, any server idle before the next
  arrival applies pending updates one at a time (oldest first).
* **Modeled time, real structure** — service durations come from the
  caller's ``service_fn`` (a cost model), but updates *do* mutate the
  supplied graph so Seed's degree-dependent bookkeeping tracks the
  true structure, exactly as in a measured run.

Single-writer approximation: in the measured runtime, updates and
flushes serialize through one writer and briefly exclude readers; here
a flush occupies only the server that triggered it.  The approximation
is documented rather than modeled — it biases the simulation slightly
optimistic under heavy update traffic.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.cache.staleness import ReplayCache
from repro.core.seed import SeedQueue
from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.queueing.simulator import (
    CompletedRequest,
    ServiceFn,
    SimulationResult,
    validate_service,
)
from repro.queueing.workload import UPDATE, Request, Workload

ApplyFn = Callable[[EdgeUpdate], EdgeUpdate]


class _GraphApplier:
    """Minimal :class:`~repro.core.seed.UpdateApplier` over a graph."""

    __slots__ = ("_apply",)

    def __init__(self, apply_fn: ApplyFn) -> None:
        self._apply = apply_fn

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        return self._apply(update)


class SeedAwareQueueSimulator:
    """Discrete-event replay: k FCFS servers + Seed reordering + drain.

    Parameters
    ----------
    service_fn:
        Maps a request to its *modeled* service duration in virtual
        seconds.  Flushed updates are charged through the same
        function (one call per flushed update), so query/update/flush
        costs stay mutually consistent.
    graph:
        The live graph; updates mutate it (structure is real, time is
        modeled) so the Seed bound sees true degrees.
    alpha, epsilon_r:
        Seed parameters; ``epsilon_r = 0`` restores strict FCFS and
        makes ``servers=1`` runs coincide with
        :class:`~repro.queueing.simulator.FCFSQueueSimulator`.
    servers:
        Number of modeled servers (k of the parallel-serving bench).
    apply_update:
        Override for how an update is executed (default: toggle the
        edge on ``graph``).  An index-based algorithm's
        ``apply_update`` can be passed to keep its index in sync.
    cache:
        Optional :class:`~repro.cache.ReplayCache` reproducing the
        serving runtime's hit/miss mixture: a query that hits is
        charged ``cache.hit_service_s`` and skips the Seed flush
        check (its staleness budget covers applied updates; deferred
        ones are invisible to a fresh recompute too); a miss runs
        normally and is admitted.  Every applied update — direct,
        idle-drained, or flushed — charges the cache's staleness
        tracker right after mutating the graph.
    """

    def __init__(
        self,
        service_fn: ServiceFn,
        graph: DynamicGraph,
        alpha: float = 0.2,
        epsilon_r: float = 0.0,
        servers: int = 1,
        apply_update: ApplyFn | None = None,
        cache: ReplayCache | None = None,
    ) -> None:
        if servers < 1:
            raise ValueError("servers must be >= 1")
        self._service_fn = service_fn
        self._graph = graph
        self._alpha = alpha
        self._epsilon_r = epsilon_r
        self._servers = servers
        self._cache = cache
        apply_fn: ApplyFn = (
            apply_update
            if apply_update is not None
            else lambda update: update.apply(graph)
        )
        if cache is not None:
            # every apply path (direct, idle drain, forced flush) runs
            # through this applier, so charging here covers them all —
            # and charges each update against the degrees it saw
            base_fn = apply_fn

            def charging_fn(update: EdgeUpdate) -> EdgeUpdate:
                resolved = base_fn(update)
                assert cache is not None
                cache.on_update(resolved)
                return resolved

            apply_fn = charging_fn
        self._applier = _GraphApplier(apply_fn)

    # ------------------------------------------------------------------
    def _service(self, request: Request) -> float:
        return validate_service(float(self._service_fn(request)), request)

    def _drain_idle(
        self,
        seed_queue: SeedQueue,
        free_at: list[float],
        completed: list[CompletedRequest],
        until: float,
    ) -> None:
        """Apply pending updates on servers idle before ``until``."""
        while free_at[0] < until:
            head = seed_queue.peek()
            if head is None:
                break
            request = Request(head.arrival, UPDATE, update=head.update)
            service = self._service(request)
            free = heapq.heappop(free_at)
            start = max(free, head.arrival)
            finish = start + service
            item = seed_queue.flush_one(self._applier)
            assert item is not None  # queue was non-empty
            completed.append(CompletedRequest(request, start, finish, service))
            heapq.heappush(free_at, finish)

    def _flush_all(
        self,
        seed_queue: SeedQueue,
        completed: list[CompletedRequest],
        start: float,
    ) -> float:
        """Charge a full flush sequentially from ``start``; return end."""
        clock = start
        while True:
            head = seed_queue.peek()
            if head is None:
                break
            request = Request(head.arrival, UPDATE, update=head.update)
            service = self._service(request)
            item = seed_queue.flush_one(self._applier)
            assert item is not None
            completed.append(
                CompletedRequest(request, clock, clock + service, service)
            )
            clock += service
        return clock

    # ------------------------------------------------------------------
    def run(
        self,
        workload: Workload | list[Request],
        t_end: float | None = None,
    ) -> SimulationResult:
        """Replay ``workload`` through the modeled Seed-aware servers."""
        if isinstance(workload, Workload):
            requests = list(workload.requests)
            horizon = workload.t_end if t_end is None else t_end
        else:
            requests = sorted(workload, key=lambda r: r.arrival)
            horizon = t_end

        seed_queue = SeedQueue(self._graph, self._alpha, self._epsilon_r)
        completed: list[CompletedRequest] = []
        free_at = [0.0] * self._servers
        heapq.heapify(free_at)

        for request in requests:
            self._drain_idle(seed_queue, free_at, completed, request.arrival)

            if request.kind == UPDATE:
                update = request.update
                assert update is not None  # UPDATE requests carry one
                if self._epsilon_r > 0.0:
                    seed_queue.add(update, request.arrival)
                    continue
                service = self._service(request)
                free = heapq.heappop(free_at)
                start = max(request.arrival, free)
                finish = start + service
                self._applier.apply_update(update)
                completed.append(
                    CompletedRequest(request, start, finish, service)
                )
                heapq.heappush(free_at, finish)
                continue

            # --- query -----------------------------------------------
            source = request.source
            assert source is not None  # QUERY requests carry one
            free = heapq.heappop(free_at)
            start = max(request.arrival, free)
            if self._cache is not None and self._cache.hit(source):
                # served from cache: no flush check (epsilon_c covers
                # applied updates; deferred ones are invisible to a
                # fresh recompute too), only the hit service time
                service = self._cache.hit_service_s
                finish = start + service
                completed.append(
                    CompletedRequest(request, start, finish, service)
                )
                heapq.heappush(free_at, finish)
                continue
            if len(seed_queue) and seed_queue.should_flush(source):
                start = self._flush_all(seed_queue, completed, start)
            service = self._service(request)
            if self._cache is not None:
                self._cache.admit(source, cost_s=service)
            finish = start + service
            completed.append(CompletedRequest(request, start, finish, service))
            heapq.heappush(free_at, finish)

        # Drain any still-pending updates after the window closes.
        if len(seed_queue):
            drain_from = max(
                free_at[0],
                max(item.arrival for item in seed_queue.pending),
            )
            self._flush_all(seed_queue, completed, drain_from)

        completed.sort(key=lambda c: (c.start, c.arrival))
        if horizon is None:
            last_arrival = requests[-1].arrival if requests else 0.0
            last_finish = max((c.finish for c in completed), default=0.0)
            horizon = max(last_arrival, last_finish)
        return SimulationResult(completed, horizon)


__all__ = ["SeedAwareQueueSimulator"]
