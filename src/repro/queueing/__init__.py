"""Queueing substrate: arrivals, workloads, theory, and the simulator.

The paper's experiments replay mixed query/update request streams
through an FCFS single-server queue and measure *response time* —
queueing delay plus service time.  This subpackage provides:

* arrival-time processes (Poisson and the Table III alternatives),
* workload generation, including the Figure 4 dynamic rate patterns,
* the queueing-theory formulas of Section IV-A (Eq. 2, Lemma 1),
* a virtual-time FCFS discrete-event simulator.
"""

from repro.queueing.arrivals import (
    ArrivalProcess,
    GammaArrivals,
    GeometricArrivals,
    NormalArrivals,
    PoissonArrivals,
    TraceArrivals,
    UniformArrivals,
    wikipedia_like_trace,
)
from repro.queueing.simulator import (
    CompletedRequest,
    FCFSQueueSimulator,
    MeasuredParallelWarning,
    SimulationResult,
)
from repro.queueing.theory import (
    expected_response_time,
    heavy_traffic_response_time,
    is_stable,
    mm1_response_time,
    traffic_intensity,
    unstable_response_growth,
)
from repro.queueing.workload import (
    Request,
    Workload,
    WorkloadSegment,
    dynamic_pattern_segments,
    generate_segmented_workload,
    generate_workload,
)

# imported last: seed_simulator pulls in repro.core (Seed), which in
# turn imports repro.queueing.simulator/workload — both fully loaded by
# this point, keeping the package import acyclic
from repro.queueing.seed_simulator import SeedAwareQueueSimulator  # noqa: E402

__all__ = [
    "ArrivalProcess",
    "CompletedRequest",
    "FCFSQueueSimulator",
    "MeasuredParallelWarning",
    "GammaArrivals",
    "GeometricArrivals",
    "NormalArrivals",
    "PoissonArrivals",
    "Request",
    "SeedAwareQueueSimulator",
    "SimulationResult",
    "TraceArrivals",
    "UniformArrivals",
    "Workload",
    "WorkloadSegment",
    "dynamic_pattern_segments",
    "expected_response_time",
    "generate_segmented_workload",
    "generate_workload",
    "heavy_traffic_response_time",
    "is_stable",
    "mm1_response_time",
    "traffic_intensity",
    "unstable_response_growth",
    "wikipedia_like_trace",
]
