"""Workload trace persistence (CSV).

Real deployments replay recorded request logs (the paper extracts 100
events from the Wikipedia stream, records "the source node, request
type, and arrival time stamp", and replays them).  This module stores
and loads workloads in exactly that shape:

    # timestamp,kind,a,b,update_kind
    0.01314,query,42,,
    0.01892,update,17,205,toggle
    0.02105,update,17,205,delete

where ``a`` is the query source (queries) or the edge tail (updates),
``b`` the edge head (updates only), and ``update_kind`` the
:class:`~repro.graph.updates.EdgeUpdate` kind — ``toggle`` (resolve
against the live graph), or an explicit ``insert`` / ``delete``.  The
column matters for *resolved* traces: an explicit ``insert`` replayed
as a toggle flips to a delete whenever the edge already exists, so
dropping the kind silently changes replay semantics.

Legacy 4-column traces (without ``update_kind``) are still read; their
updates load as ``toggle``, which is exactly what the old writer
could express.  Blank ``update_kind`` cells on update rows mean
``toggle`` too; query rows must leave the column empty.
"""

from __future__ import annotations

import csv
import math
import os

from repro.graph.updates import EdgeUpdate
from repro.queueing.workload import QUERY, UPDATE, Request, Workload

_HEADER = ["timestamp", "kind", "a", "b", "update_kind"]
#: pre-update_kind layout, still accepted on read (updates as toggle)
_LEGACY_HEADER = ["timestamp", "kind", "a", "b"]

_UPDATE_KINDS = frozenset({"toggle", "insert", "delete"})


def save_workload_trace(
    workload: Workload, path: str | os.PathLike[str]
) -> None:
    """Write a workload to a CSV trace file."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for request in workload:
            if request.kind == QUERY:
                writer.writerow(
                    [f"{request.arrival!r}", QUERY, request.source, "", ""]
                )
            else:
                update = request.update
                assert update is not None  # UPDATE requests carry one
                writer.writerow(
                    [
                        f"{request.arrival!r}",
                        UPDATE,
                        update.u,
                        update.v,
                        update.kind,
                    ]
                )


def load_workload_trace(
    path: str | os.PathLike[str], t_end: float | None = None
) -> Workload:
    """Load a workload from a CSV trace file.

    Parameters
    ----------
    path:
        Trace written by :func:`save_workload_trace` (or hand-authored
        in the same format).  Legacy 4-column traces load with every
        update as ``toggle``.
    t_end:
        Window length; defaults to the last timestamp in the trace.

    Raises
    ------
    ValueError
        On malformed rows, naming ``file:line``: bad kind, missing or
        extra fields, negative / NaN / infinite timestamps (a
        non-finite timestamp would silently poison the horizon and
        every derived arrival rate), or an unknown update kind.
    """
    requests: list[Request] = []
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path}: empty trace file")
        stripped = [h.strip() for h in header]
        if stripped == _HEADER:
            columns = len(_HEADER)
        elif stripped == _LEGACY_HEADER:
            columns = len(_LEGACY_HEADER)
        else:
            raise ValueError(
                f"{path}: expected header {_HEADER} "
                f"(or legacy {_LEGACY_HEADER}), got {header}"
            )
        for line_no, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) != columns:
                raise ValueError(
                    f"{path}:{line_no}: expected {columns} columns, "
                    f"got {len(row)}"
                )
            try:
                timestamp = float(row[0])
            except ValueError:
                raise ValueError(
                    f"{path}:{line_no}: bad timestamp {row[0]!r}"
                ) from None
            if not math.isfinite(timestamp):
                raise ValueError(
                    f"{path}:{line_no}: non-finite timestamp {timestamp}"
                )
            if timestamp < 0:
                raise ValueError(
                    f"{path}:{line_no}: negative timestamp {timestamp}"
                )
            kind = row[1].strip()
            update_kind = (
                row[4].strip() if columns == len(_HEADER) else ""
            )
            if kind == QUERY:
                if update_kind:
                    raise ValueError(
                        f"{path}:{line_no}: query rows must leave "
                        f"update_kind empty, got {update_kind!r}"
                    )
                requests.append(
                    Request(timestamp, QUERY, source=int(row[2]))
                )
            elif kind == UPDATE:
                update_kind = update_kind or "toggle"
                if update_kind not in _UPDATE_KINDS:
                    raise ValueError(
                        f"{path}:{line_no}: unknown update kind "
                        f"{update_kind!r} (expected one of "
                        f"{sorted(_UPDATE_KINDS)})"
                    )
                requests.append(
                    Request(
                        timestamp,
                        UPDATE,
                        update=EdgeUpdate(
                            int(row[2]), int(row[3]), update_kind
                        ),
                    )
                )
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown request kind {kind!r}"
                )
    requests.sort(key=lambda r: r.arrival)
    horizon = t_end if t_end is not None else (
        requests[-1].arrival if requests else 0.0
    )
    num_q = sum(1 for r in requests if r.kind == QUERY)
    num_u = len(requests) - num_q
    span = max(horizon, 1e-12)
    return Workload(requests, horizon, num_q / span, num_u / span)
