"""Workload trace persistence (CSV).

Real deployments replay recorded request logs (the paper extracts 100
events from the Wikipedia stream, records "the source node, request
type, and arrival time stamp", and replays them).  This module stores
and loads workloads in exactly that shape:

    # timestamp,kind,a,b
    0.01314,query,42,
    0.01892,update,17,205

where ``a`` is the query source (queries) or the edge tail (updates)
and ``b`` the edge head (updates only).
"""

from __future__ import annotations

import csv
import os

from repro.graph.updates import EdgeUpdate
from repro.queueing.workload import QUERY, UPDATE, Request, Workload

_HEADER = ["timestamp", "kind", "a", "b"]


def save_workload_trace(
    workload: Workload, path: str | os.PathLike[str]
) -> None:
    """Write a workload to a CSV trace file."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for request in workload:
            if request.kind == QUERY:
                writer.writerow(
                    [f"{request.arrival!r}", QUERY, request.source, ""]
                )
            else:
                update = request.update
                assert update is not None  # UPDATE requests carry one
                writer.writerow(
                    [f"{request.arrival!r}", UPDATE, update.u, update.v]
                )


def load_workload_trace(
    path: str | os.PathLike[str], t_end: float | None = None
) -> Workload:
    """Load a workload from a CSV trace file.

    Parameters
    ----------
    path:
        Trace written by :func:`save_workload_trace` (or hand-authored
        in the same format).
    t_end:
        Window length; defaults to the last timestamp in the trace.

    Raises
    ------
    ValueError
        On malformed rows (bad kind, missing fields, negative time).
    """
    requests: list[Request] = []
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path}: empty trace file")
        if [h.strip() for h in header] != _HEADER:
            raise ValueError(
                f"{path}: expected header {_HEADER}, got {header}"
            )
        for line_no, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) != 4:
                raise ValueError(f"{path}:{line_no}: expected 4 columns")
            timestamp = float(row[0])
            if timestamp < 0:
                raise ValueError(
                    f"{path}:{line_no}: negative timestamp {timestamp}"
                )
            kind = row[1].strip()
            if kind == QUERY:
                requests.append(
                    Request(timestamp, QUERY, source=int(row[2]))
                )
            elif kind == UPDATE:
                requests.append(
                    Request(
                        timestamp,
                        UPDATE,
                        update=EdgeUpdate(int(row[2]), int(row[3])),
                    )
                )
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown request kind {kind!r}"
                )
    requests.sort(key=lambda r: r.arrival)
    horizon = t_end if t_end is not None else (
        requests[-1].arrival if requests else 0.0
    )
    num_q = sum(1 for r in requests if r.kind == QUERY)
    num_u = len(requests) - num_q
    span = max(horizon, 1e-12)
    return Workload(requests, horizon, num_q / span, num_u / span)
