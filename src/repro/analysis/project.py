"""Project-wide analysis: module graph, call graph, lock-context dataflow.

The per-file rules (R1-R6) see one AST at a time; the concurrency
rules (R7-R11, :mod:`repro.analysis.concurrency`) need to know what a
*call* does — does ``self._record(...)`` take a mutex, does
``flush_one`` mutate the graph, may ``_charge_cache`` already be
inside a writer critical section?  This module builds that knowledge:

* :class:`ProjectIndex` parses every file into a symbol table
  (module-level functions plus class methods, qualified as
  ``module.Class.method``) and resolves call sites against it.
* A structural walk of each function body tracks the **lock context**
  — the ordered set of ``(lock, mode)`` pairs held at every statement
  — through ``with lock.read_locked()/write_locked():`` blocks, plain
  ``with some_lock:`` mutexes, and explicit ``acquire_*``/``release_*``
  pairs, recording an event stream (acquisitions, calls, attribute
  writes, CSR-view assignments, name loads) annotated with the context.
* A fixpoint pass propagates **entry contexts** through the call
  graph: a function called only from writer critical sections is known
  to run under the write lock, transitively.
* Per-function summaries (``returns_view``, ``mutates_graph``) let the
  interprocedural CSR-snapshot rule (R10) see through helper calls the
  per-function R3 cannot.

Lock identity
-------------
Locks are named by their *owner*: ``self._rwlock`` inside class
``ServingRuntime`` becomes ``ServingRuntime._rwlock``; a module-level
``LOCK`` becomes ``module.LOCK``; a function-local lock is qualified
by the function.  Two instances of the same class therefore share a
lock name — a deliberately conservative choice (per-instance aliasing
is invisible statically, and instances of one class follow one
discipline anyway).

Soundness model (assumptions and limits)
----------------------------------------
This is a *may*-analysis tuned to this codebase's straight-line
locking style; docs/DEVELOPMENT.md states the contract in full:

* ``acquire_*`` / ``release_*`` pairs are matched linearly in source
  order (conditional acquisition via ``if not lock.acquire_write(...):
  return`` is handled; release on one branch only is not).
* A callee's entry context is the **union** over its call sites —
  a function called both under and outside a lock is treated as
  possibly-under for conflict detection.
* Calls are resolved by local name, ``self.``-method lookup, import
  alias, or project-wide *unique* name; ambiguous names stay
  unresolved (no propagation through them).  Common container-method
  names (``append``, ``get``, ...) are never unique-resolved.
* Nested function definitions and lambdas are not walked as part of
  the enclosing body (they execute later, under unknown context).
"""

from __future__ import annotations

import ast
import dataclasses
import re
from collections.abc import Iterator, Mapping, Sequence
from pathlib import Path

from repro.analysis.engine import Finding, LintConfig, LintModule

# lock-context modes
READ = "read"
WRITE = "write"
MUTEX = "mutex"

#: attribute names that are the RW-lock API (never resolved as calls)
LOCK_API = frozenset(
    {
        "read_locked",
        "write_locked",
        "acquire_read",
        "acquire_write",
        "release_read",
        "release_write",
        "acquire",
        "release",
    }
)

#: receiver names treated as mutexes in ``with X:`` / ``X.acquire()``
#: — ``lock``/``mutex`` as a whole ``_``-separated component
#: (``_seed_lock``, ``lock_a``; not ``blocked`` or ``deadlock``)
_LOCKISH_RE = re.compile(r"(?:^|_)(?:lock|mutex)(?:_|$)", re.IGNORECASE)

#: DynamicGraph mutators (mirrors rules.CsrViewLifetimeRule.MUTATORS)
GRAPH_MUTATORS = frozenset(
    {
        "add_edge",
        "remove_edge",
        "toggle_edge",
        "add_node",
        "remove_node",
        "restore",
        "apply_update",
        "apply",
    }
)

#: container methods that mutate an annotated attribute in place (R9)
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "popleft",
        "appendleft",
        "remove",
        "discard",
        "clear",
        "update",
        "add",
        "setdefault",
        "move_to_end",
    }
)

#: method names too generic for unique-name call resolution (container
#: protocol + instrument API); resolving these by uniqueness would link
#: dict/list/metric calls to unrelated project symbols
_NEVER_UNIQUE = frozenset(
    {
        "append", "add", "get", "set", "pop", "clear", "copy", "update",
        "remove", "discard", "extend", "insert", "join", "split", "strip",
        "items", "keys", "values", "observe", "inc", "dec", "put", "take",
        "apply", "apply_update", "run", "start", "stop", "close", "open",
        "read", "write", "send", "query", "reset", "submit", "count",
        "index", "sort", "mean", "min", "max", "sum", "format", "match",
        "search", "group", "encode", "decode", "flush", "peek", "offer",
    }
)


def lockish(name: str) -> bool:
    """Heuristic: does this identifier name a mutex?"""
    return bool(_LOCKISH_RE.search(name))


def expr_text(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclasses.dataclass(frozen=True, slots=True)
class Held:
    """One lock held in a context: identity plus acquisition mode."""

    lock: str
    mode: str

    def describe(self) -> str:
        return f"{self.lock}[{self.mode}]"


@dataclasses.dataclass(slots=True)
class Event:
    """One context-annotated occurrence inside a function body.

    ``kind`` is one of ``acquire`` (lock acquisition; ``data`` is the
    :class:`Held`), ``call`` (``data`` is the ``ast.Call``),
    ``attr_write`` (``data`` is the attribute name; covers plain
    assignment, augmented assignment, subscript stores, ``del``, and
    mutating method calls on the attribute), ``view_assign`` (``data``
    is ``(varname, call_node)``), and ``load`` (``data`` is the name).
    ``held`` is the *local* context; add the function's entry context
    for the effective one.
    """

    kind: str
    line: int
    col: int
    held: tuple[Held, ...]
    data: object


@dataclasses.dataclass(slots=True)
class FunctionInfo:
    """One function/method plus its context-annotated event stream."""

    qualname: str
    simple_name: str
    module: "ProjectModule"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None
    events: list[Event] = dataclasses.field(default_factory=list)
    #: union of contexts this function may be entered under
    entry_holds: set[Held] = dataclasses.field(default_factory=set)
    #: resolved callees (qualnames), populated by ProjectIndex
    callees: set[str] = dataclasses.field(default_factory=set)
    returns_view: bool = False
    mutates_graph: bool = False

    def effective(self, event: Event) -> frozenset[Held]:
        """Locks that may be held when ``event`` executes."""
        return frozenset(event.held) | frozenset(self.entry_holds)

    def iter_events(self, kind: str) -> Iterator[Event]:
        return (e for e in self.events if e.kind == kind)


class ProjectModule:
    """One parsed file: LintModule + module name + symbol ownership."""

    def __init__(self, lint: LintModule, name: str) -> None:
        self.lint = lint
        self.name = name
        #: names assigned at module level (for lock qualification)
        self.globals: set[str] = {
            target.id
            for node in lint.tree.body
            if isinstance(node, ast.Assign)
            for target in node.targets
            if isinstance(target, ast.Name)
        }
        self.aliases = _import_aliases(lint.tree)

    @property
    def path(self) -> str:
        return self.lint.path


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local alias -> imported dotted name."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module is not None:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def module_name_for(path: str) -> str:
    """Dotted module name for a file path.

    Files under a ``repro`` package directory get their real dotted
    name (``.../src/repro/ppr/csr.py`` -> ``repro.ppr.csr``); anything
    else uses its stem, which is how fixture projects in tests refer
    to each other (``import helper``).
    """
    parts = Path(path).parts
    stem = Path(path).stem
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        dotted = list(parts[idx:-1]) + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


# ----------------------------------------------------------------------
# context walker
# ----------------------------------------------------------------------
class _ContextWalker:
    """Walks one function body tracking the held-lock tuple."""

    def __init__(self, info: FunctionInfo, index: "ProjectIndex") -> None:
        self.info = info
        self.index = index
        self.module = info.module

    # -- lock naming ---------------------------------------------------
    def lock_id(self, node: ast.AST) -> str | None:
        """Owner-qualified identity for a lock expression."""
        text = expr_text(node)
        if text is None:
            return None
        head, _, rest = text.partition(".")
        if head == "self" and self.info.class_name is not None:
            if rest:
                return f"{self.info.class_name}.{rest}"
            # ``self`` itself is the lock (RWLock's own methods)
            return self.info.class_name
        if head == "cls" and self.info.class_name is not None and rest:
            return f"{self.info.class_name}.{rest}"
        if head in self.module.globals:
            return f"{self.module.name}.{text}"
        # function-local (parameter or local variable)
        return f"{self.info.qualname}:{text}"

    # -- recognizers ---------------------------------------------------
    def _with_item_lock(self, expr: ast.expr) -> Held | None:
        """Held context established by one ``with`` item, if any."""
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "read_locked",
                "write_locked",
            ):
                lock = self.lock_id(func.value)
                if lock is not None:
                    mode = READ if func.attr == "read_locked" else WRITE
                    return Held(lock, mode)
            return None
        text = expr_text(expr)
        if text is not None and lockish(text.rsplit(".", 1)[-1]):
            lock = self.lock_id(expr)
            if lock is not None:
                return Held(lock, MUTEX)
        return None

    def _call_lock_op(self, call: ast.Call) -> tuple[Held, str] | None:
        """(held, "acquire"/"release") for explicit lock-API calls."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if attr in ("acquire_read", "acquire_write"):
            lock = self.lock_id(func.value)
            if lock is None:
                return None
            mode = READ if attr == "acquire_read" else WRITE
            return Held(lock, mode), "acquire"
        if attr in ("release_read", "release_write"):
            lock = self.lock_id(func.value)
            if lock is None:
                return None
            mode = READ if attr == "release_read" else WRITE
            return Held(lock, mode), "release"
        if attr in ("acquire", "release"):
            text = expr_text(func.value)
            if text is None or not lockish(text.rsplit(".", 1)[-1]):
                return None
            lock = self.lock_id(func.value)
            if lock is None:
                return None
            return Held(lock, MUTEX), "acquire" if attr == "acquire" else (
                "release"
            )
        return None

    # -- event emission ------------------------------------------------
    def _emit(
        self, kind: str, node: ast.AST, held: tuple[Held, ...], data: object
    ) -> None:
        self.info.events.append(
            Event(
                kind,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                held,
                data,
            )
        )

    def _scan_expr(
        self, expr: ast.expr, held: tuple[Held, ...]
    ) -> tuple[Held, ...]:
        """Record events inside an expression; returns the (possibly
        extended) held tuple — explicit ``acquire_*`` calls inside an
        expression (``if not lock.acquire_write(0):``) take effect."""
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda, ast.FunctionDef)):
                continue
            if isinstance(node, ast.Call):
                op = self._call_lock_op(node)
                if op is not None:
                    lock, action = op
                    if action == "acquire":
                        self._emit("acquire", node, held, lock)
                        held = held + (lock,)
                    else:
                        held = tuple(h for h in held if h != lock)
                    continue
                self._emit("call", node, held, node)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                self._emit("load", node, held, node.id)
        return held

    @staticmethod
    def _is_csr_view_call(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Name):
            return func.id == "csr_view"
        return isinstance(func, ast.Attribute) and func.attr == "csr_view"

    def _handle_targets(
        self,
        targets: Sequence[ast.expr],
        value: ast.expr | None,
        stmt: ast.stmt,
        held: tuple[Held, ...],
    ) -> None:
        for target in targets:
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id in ("self", "cls"):
                    self._emit("attr_write", target, held, target.attr)
            elif isinstance(target, ast.Subscript):
                inner = target.value
                if (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id in ("self", "cls")
                ):
                    self._emit("attr_write", target, held, inner.attr)
            elif isinstance(target, ast.Name):
                if value is not None and (
                    self._is_csr_view_call(value)
                    or isinstance(value, ast.Call)
                ):
                    self._emit(
                        "view_assign", stmt, held, (target.id, value)
                    )
            elif isinstance(target, (ast.Tuple, ast.List)):
                self._handle_targets(target.elts, None, stmt, held)

    # -- statement walk ------------------------------------------------
    def walk(self) -> None:
        body = self.info.node.body
        self._walk_body(body, ())

    def _walk_body(
        self, stmts: Sequence[ast.stmt], held: tuple[Held, ...]
    ) -> tuple[Held, ...]:
        for stmt in stmts:
            held = self._walk_stmt(stmt, held)
        return held

    def _union(
        self, base: tuple[Held, ...], *branches: tuple[Held, ...]
    ) -> tuple[Held, ...]:
        merged = list(base)
        for branch in branches:
            for h in branch:
                if h not in merged:
                    merged.append(h)
        return tuple(merged)

    def _walk_stmt(
        self, stmt: ast.stmt, held: tuple[Held, ...]
    ) -> tuple[Held, ...]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return held  # nested defs run later, under unknown context
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entered: list[Held] = []
            for item in stmt.items:
                lock = self._with_item_lock(item.context_expr)
                if lock is not None:
                    self._emit("acquire", item.context_expr, held, lock)
                    entered.append(lock)
                    held = held + (lock,)
                else:
                    held = self._scan_expr(item.context_expr, held)
            inner = self._walk_body(stmt.body, held)
            # locks from the with-items are released on exit; explicit
            # acquisitions inside the body persist past it
            for lock in entered:
                inner = tuple(h for h in inner if h != lock)
            return inner
        if isinstance(stmt, ast.If):
            held = self._scan_expr(stmt.test, held)
            then = self._walk_body(stmt.body, held)
            other = self._walk_body(stmt.orelse, held)
            return self._union((), then, other)
        if isinstance(stmt, ast.Try):
            after_body = self._walk_body(stmt.body, held)
            results = [after_body]
            for handler in stmt.handlers:
                # a handler may run after any prefix of the body; use
                # the post-body context (the release usually sits in
                # ``finally``, which walks after this and still undoes
                # the acquisition for code following the statement)
                results.append(self._walk_body(handler.body, after_body))
            merged = self._union((), *results)
            merged = self._walk_body(stmt.orelse, merged)
            return self._walk_body(stmt.finalbody, merged)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            held = self._scan_expr(stmt.iter, held)
            once = self._walk_body(stmt.body, held)
            once = self._walk_body(stmt.orelse, once)
            return self._union(held, once)
        if isinstance(stmt, ast.While):
            held = self._scan_expr(stmt.test, held)
            once = self._walk_body(stmt.body, held)
            once = self._walk_body(stmt.orelse, once)
            return self._union(held, once)
        if isinstance(stmt, ast.Assign):
            held = self._scan_expr(stmt.value, held)
            self._handle_targets(stmt.targets, stmt.value, stmt, held)
            return held
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                held = self._scan_expr(stmt.value, held)
                self._handle_targets([stmt.target], stmt.value, stmt, held)
            return held
        if isinstance(stmt, ast.AugAssign):
            held = self._scan_expr(stmt.value, held)
            self._handle_targets([stmt.target], None, stmt, held)
            return held
        if isinstance(stmt, ast.Delete):
            self._handle_targets(stmt.targets, None, stmt, held)
            return held
        if isinstance(stmt, (ast.Expr, ast.Return)):
            value = stmt.value
            if value is not None:
                held = self._scan_expr(value, held)
            if isinstance(stmt, ast.Return) and value is not None:
                self._emit("return", stmt, held, value)
            return held
        if isinstance(stmt, (ast.Assert, ast.Raise)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    held = self._scan_expr(value, held)
            return held
        # remaining compound statements: walk children generically
        for field in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, field, None)
            if inner:
                held = self._walk_body(inner, held)
        return held


# ----------------------------------------------------------------------
# the index
# ----------------------------------------------------------------------
class ProjectIndex:
    """Symbol table + call graph + lock-context dataflow over modules."""

    def __init__(self, modules: Sequence[ProjectModule]) -> None:
        self.modules = list(modules)
        self._by_path = {m.path: m for m in self.modules}
        #: qualname -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: simple name -> [qualnames]
        self._by_simple: dict[str, list[str]] = {}
        #: (module, Class) -> {method name -> qualname}
        self._methods: dict[tuple[str, str], dict[str, str]] = {}
        #: class name -> [(module, Class)] (for self-resolution)
        self._classes: dict[str, list[tuple[str, str]]] = {}
        #: (class name, attr) -> (lock id, mode|None, path, line)
        self.guarded: dict[
            tuple[str, str], tuple[str, str | None, str, int]
        ] = {}
        self._collect()
        self._walk_all()
        self._resolve_calls()
        self._propagate_entry_holds()
        self._summarize()

    # -- construction helpers ------------------------------------------
    @classmethod
    def from_files(
        cls, files: Sequence[str | Path], config: LintConfig | None = None
    ) -> "ProjectIndex":
        config = config or LintConfig()
        modules = []
        for file_path in files:
            path = str(file_path)
            try:
                source = Path(path).read_text(encoding="utf-8")
                lint = LintModule(path, source, config)
            except (OSError, SyntaxError):
                continue  # run_paths already reported it
            modules.append(ProjectModule(lint, module_name_for(path)))
        return cls(modules)

    @classmethod
    def from_sources(
        cls,
        sources: Mapping[str, str],
        config: LintConfig | None = None,
    ) -> "ProjectIndex":
        """Build an index from in-memory ``{path: source}`` (tests)."""
        config = config or LintConfig()
        return cls(
            [
                ProjectModule(
                    LintModule(path, source, config), module_name_for(path)
                )
                for path, source in sources.items()
            ]
        )

    def lint_module(self, path: str) -> LintModule | None:
        module = self._by_path.get(path)
        return module.lint if module is not None else None

    # -- pass 1: symbols ----------------------------------------------
    def _collect(self) -> None:
        for module in self.modules:
            for node in module.lint.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(module, node, None)
                elif isinstance(node, ast.ClassDef):
                    self._classes.setdefault(node.name, []).append(
                        (module.name, node.name)
                    )
                    methods: dict[str, str] = {}
                    for item in node.body:
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            qualname = self._add_function(
                                module, item, node.name
                            )
                            methods[item.name] = qualname
                    self._methods[(module.name, node.name)] = methods
                    self._collect_guards(module, node)

    def _add_function(
        self,
        module: ProjectModule,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> str:
        scope = f"{class_name}." if class_name else ""
        qualname = f"{module.name}.{scope}{node.name}"
        info = FunctionInfo(qualname, node.name, module, node, class_name)
        self.functions[qualname] = info
        self._by_simple.setdefault(node.name, []).append(qualname)
        return qualname

    def _collect_guards(
        self, module: ProjectModule, cls: ast.ClassDef
    ) -> None:
        """``# guarded-by:`` annotations on attribute assignments."""
        annotations = module.lint.guard_annotations
        if not annotations:
            return
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            note = annotations.get(node.lineno)
            if note is None:
                continue
            expr, mode = note
            lock = self._qualify_guard(expr, cls.name, module)
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self.guarded[(cls.name, target.attr)] = (
                        lock,
                        mode,
                        module.path,
                        node.lineno,
                    )

    @staticmethod
    def _qualify_guard(
        expr: str, class_name: str, module: ProjectModule
    ) -> str:
        head, _, rest = expr.partition(".")
        if head == "self" and rest:
            return f"{class_name}.{rest}"
        if head in module.globals:
            return f"{module.name}.{expr}"
        return f"{class_name}.{expr}"

    # -- pass 2: context walk ------------------------------------------
    def _walk_all(self) -> None:
        for info in self.functions.values():
            _ContextWalker(info, self).walk()

    # -- pass 3: call resolution ---------------------------------------
    def resolve_call(
        self, call: ast.Call, info: FunctionInfo
    ) -> str | None:
        """Qualified name of the project function a call targets."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            local = f"{info.module.name}.{name}"
            if local in self.functions:
                return local
            target = info.module.aliases.get(name)
            if target is not None and target in self.functions:
                return target
            return self._unique(name)
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in LOCK_API:
                return None
            receiver = func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and info.class_name is not None
            ):
                methods = self._methods.get(
                    (info.module.name, info.class_name), {}
                )
                if attr in methods:
                    return methods[attr]
            dotted = expr_text(func)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                target = info.module.aliases.get(head)
                if target is not None:
                    resolved = f"{target}.{rest}"
                    if resolved in self.functions:
                        return resolved
            return self._unique(attr)
        return None

    def _unique(self, name: str) -> str | None:
        if name in _NEVER_UNIQUE or name.startswith("__"):
            return None
        candidates = self._by_simple.get(name, ())
        return candidates[0] if len(candidates) == 1 else None

    def _resolve_calls(self) -> None:
        for info in self.functions.values():
            for event in info.iter_events("call"):
                call = event.data
                assert isinstance(call, ast.Call)
                target = self.resolve_call(call, info)
                if target is not None:
                    info.callees.add(target)

    # -- pass 4: entry-context fixpoint --------------------------------
    def _propagate_entry_holds(self) -> None:
        worklist = list(self.functions.values())
        while worklist:
            info = worklist.pop()
            for event in info.iter_events("call"):
                call = event.data
                assert isinstance(call, ast.Call)
                target = self.resolve_call(call, info)
                if target is None:
                    continue
                callee = self.functions[target]
                site_holds = set(event.held) | info.entry_holds
                new = site_holds - callee.entry_holds
                if new:
                    callee.entry_holds |= new
                    worklist.append(callee)

    # -- pass 5: summaries ---------------------------------------------
    def _summarize(self) -> None:
        changed = True
        while changed:
            changed = False
            for info in self.functions.values():
                if not info.mutates_graph and self._mutates_locally(info):
                    info.mutates_graph = True
                    changed = True
                if not info.returns_view and self._returns_view_locally(
                    info
                ):
                    info.returns_view = True
                    changed = True

    def _mutates_locally(self, info: FunctionInfo) -> bool:
        for event in info.iter_events("call"):
            call = event.data
            assert isinstance(call, ast.Call)
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in GRAPH_MUTATORS
            ):
                return True
            target = self.resolve_call(call, info)
            if target is not None and self.functions[target].mutates_graph:
                return True
        return False

    def _returns_view_locally(self, info: FunctionInfo) -> bool:
        view_vars: set[str] = set()
        for event in info.events:
            if event.kind == "view_assign":
                varname, call = event.data  # type: ignore[misc]
                if self.call_yields_view(call, info):
                    view_vars.add(varname)
                else:
                    view_vars.discard(varname)
            elif event.kind == "return":
                value = event.data
                assert isinstance(value, ast.expr)
                if isinstance(value, ast.Call) and self.call_yields_view(
                    value, info
                ):
                    return True
                if (
                    isinstance(value, ast.Name)
                    and value.id in view_vars
                ):
                    return True
        return False

    def call_yields_view(
        self, call: ast.Call, info: FunctionInfo
    ) -> bool:
        """Does this call produce a CSR view (directly or via helper)?"""
        if _ContextWalker._is_csr_view_call(call):
            return True
        target = self.resolve_call(call, info)
        return target is not None and self.functions[target].returns_view

    def call_mutates_graph(
        self, call: ast.Call, info: FunctionInfo
    ) -> tuple[bool, bool, str] | None:
        """(mutates, direct, label) for a call, None when it does not."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in GRAPH_MUTATORS:
            return True, True, func.attr
        target = self.resolve_call(call, info)
        if target is not None and self.functions[target].mutates_graph:
            return True, False, self.functions[target].simple_name
        return None


def run_project_sources(
    sources: Mapping[str, str],
    config: LintConfig | None = None,
    rule_ids: Sequence[str] | None = None,
) -> list[Finding]:
    """Run the project rules over in-memory sources (test entry point).

    Suppression comments in the fixture sources are honored, matching
    :func:`repro.analysis.engine.run_paths` semantics.
    """
    from repro.analysis.engine import selected_project_rules

    config = config or LintConfig(restrict_scopes=False)
    if rule_ids is not None:
        config = dataclasses.replace(config, select=frozenset(rule_ids))
    index = ProjectIndex.from_sources(sources, config)
    findings: list[Finding] = []
    for rule in selected_project_rules(config):
        for finding in rule.check_project(index):
            module = index.lint_module(finding.path)
            if module is None or not module.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
