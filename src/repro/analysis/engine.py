"""reprolint engine: rule registry, suppressions, runner, reporting.

A small AST-based static-analysis framework for this repository's
domain invariants (see :mod:`repro.analysis.rules` for the rule pack).
It exists because the invariants that matter here — seeded randomness,
unit consistency of the cost model, CSR-view lifetimes — are invisible
to general-purpose linters.

Architecture
------------
* :class:`Rule` subclasses declare an id (``R1``..), severity, and a
  ``check(module)`` generator yielding :class:`Finding` objects.
  Registration is by decorator into :data:`RULES`.
* :class:`LintModule` wraps one parsed source file: path, AST, raw
  lines, and the suppression table extracted from
  ``# reprolint: disable=...`` comments.
* :func:`run_paths` walks files/directories, applies every selected
  rule, filters suppressed findings, and returns the survivors sorted
  by location.

Two rule families share the engine: per-file :class:`Rule` subclasses
(registered in :data:`RULES`) see one :class:`LintModule` at a time,
while :class:`ProjectRule` subclasses (registered in
:data:`PROJECT_RULES`) see a whole-project index — module graph, call
graph, and the lock-context dataflow of
:mod:`repro.analysis.project` — and power the interprocedural
concurrency rules R7-R11 in :mod:`repro.analysis.concurrency`.

Suppressions
------------
``# reprolint: disable=R2`` on the flagged line suppresses that rule
there (add a justifying comment — the docs treat a bare suppression as
a review smell).  ``# reprolint: disable-file=R6`` anywhere in the
file suppresses the rule for the whole file.  Several ids may be
given, comma-separated; free text after the ids is ignored so the
justification can share the comment.  A suppression naming an unknown
rule id is reported as a warning (``R0``) instead of silently doing
nothing — a typo'd id must not read as a working allowlist entry.

Baselines
---------
:func:`write_baseline` snapshots the current findings;
:func:`apply_baseline` filters a later run down to *new* findings
only.  Fingerprints deliberately exclude line numbers (they drift on
every unrelated edit): a finding matches the baseline when the same
``(rule, file, message)`` triple was snapshotted, with multiplicity.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from collections import Counter
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

#: finding severities, in increasing order of gravity
SEVERITIES = ("warning", "error")

#: pseudo rule id for suppression-hygiene warnings (unknown ids in a
#: ``# reprolint: disable=...`` comment); not in the registries, but
#: suppressible like any other id
SUPPRESSION_HYGIENE_ID = "R0"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*"
    r"(?P<ids>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: ``# guarded-by: self._lock`` / ``# guarded-by: self._rwlock[write]``
#: — declares the lock context required to *write* the attribute
#: assigned on that line (rule R9; see docs/DEVELOPMENT.md)
_GUARDED_BY_RE = re.compile(
    r"#\s*guarded-by:\s*(?P<expr>[A-Za-z_][\w.]*)"
    r"(?:\[(?P<mode>read|write)\])?"
)


@dataclasses.dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def as_dict(self) -> dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Engine configuration (defaults match ``[tool.reprolint]``).

    ``restrict_scopes`` keeps the scoped rules (R2 on ``ppr``/``core``
    hot paths, R6 on the cost-model/queueing-theory files) limited to
    their configured paths; tests switch it off to lint fixtures
    anywhere.
    """

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    restrict_scopes: bool = True
    #: path parts scoping R2 (float equality) to hot-path packages
    float_compare_parts: tuple[str, ...] = ("ppr", "core")
    #: file names scoping R6 (unit-suffix convention)
    unit_suffix_files: tuple[str, ...] = (
        "cost_models.py",
        "quota.py",
        "theory.py",
    )
    #: path parts scoping R11 (metric mutation in critical sections)
    #: to the serving hot paths (runtime, shard fabric, front door)
    metric_critical_parts: tuple[str, ...] = ("serving", "shard", "api")
    #: override for the metric-name registry (None = parse repro.obs.names)
    metric_counters: frozenset[str] | None = None
    metric_histograms: frozenset[str] | None = None
    metric_gauges: frozenset[str] | None = None


class LintModule:
    """One parsed source file plus its suppression table."""

    def __init__(self, path: str, source: str, config: LintConfig) -> None:
        self.path = path
        self.source = source
        self.config = config
        self.tree = ast.parse(source, filename=path)
        self.line_disables: dict[int, set[str]] = {}
        self.file_disables: set[str] = set()
        #: every id mentioned in a suppression, with the comment's line
        #: (for the unknown-id hygiene warning)
        self.suppression_ids: list[tuple[int, str]] = []
        #: line -> (lock expression, mode or None) from ``# guarded-by:``
        self.guard_annotations: dict[int, tuple[str, str | None]] = {}
        self._scan_suppressions()

    # ------------------------------------------------------------------
    def _scan_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            comments = []
        for line, text in comments:
            guard = _GUARDED_BY_RE.search(text)
            if guard is not None:
                self.guard_annotations[line] = (
                    guard.group("expr"),
                    guard.group("mode"),
                )
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            ids = {part.strip() for part in match.group("ids").split(",")}
            self.suppression_ids.extend((line, rule_id) for rule_id in ids)
            if match.group(1) == "disable-file":
                self.file_disables |= ids
            else:
                self.line_disables.setdefault(line, set()).update(ids)

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule_id in self.file_disables:
            return True
        return finding.rule_id in self.line_disables.get(finding.line, set())

    # ------------------------------------------------------------------
    def path_parts(self) -> tuple[str, ...]:
        return Path(self.path).parts

    def filename(self) -> str:
        return Path(self.path).name


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``rationale`` and ``example`` feed ``--list-rules`` and the
    developer docs, keeping rule documentation next to the code.
    """

    rule_id: str = ""
    name: str = ""
    severity: str = "error"
    rationale: str = ""
    example: str = ""

    def applies_to(self, module: LintModule) -> bool:
        return True

    def check(self, module: LintModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule:
    """Base class for whole-project (multi-file) rules.

    Where :class:`Rule` sees one module, a project rule's
    :meth:`check_project` sees a :class:`repro.analysis.project.
    ProjectIndex` — every parsed module plus the call graph and
    lock-context dataflow — and may yield findings in *any* of them.
    Suppression filtering still happens per finding, against the
    suppression table of the module the finding lands in.
    """

    rule_id: str = ""
    name: str = ""
    severity: str = "error"
    rationale: str = ""
    example: str = ""

    def check_project(self, project: object) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
        )


#: rule-id -> rule class, in registration order
RULES: dict[str, type[Rule]] = {}

#: rule-id -> project-rule class, in registration order
PROJECT_RULES: dict[str, type[ProjectRule]] = {}


def _validate_rule(cls: type, known: Iterable[str]) -> None:
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in known:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"{cls.rule_id}: unknown severity {cls.severity!r}")


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a per-file rule to the registry."""
    _validate_rule(cls, RULES.keys() | PROJECT_RULES.keys())
    RULES[cls.rule_id] = cls
    return cls


def register_project(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a project-wide rule to the registry."""
    _validate_rule(cls, RULES.keys() | PROJECT_RULES.keys())
    PROJECT_RULES[cls.rule_id] = cls
    return cls


def known_rule_ids() -> frozenset[str]:
    """Every registered rule id, both families, plus the hygiene id."""
    return frozenset(RULES) | frozenset(PROJECT_RULES) | {
        SUPPRESSION_HYGIENE_ID
    }


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield every .py file under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if p.is_file()
            )
        elif path.suffix == ".py" and path.is_file():
            yield path


def _enabled(rule_id: str, config: LintConfig) -> bool:
    if config.select is not None and rule_id not in config.select:
        return False
    return rule_id not in config.ignore


def selected_rules(config: LintConfig) -> list[Rule]:
    """Instantiate the per-file rules enabled by ``select``/``ignore``."""
    return [
        cls() for rule_id, cls in RULES.items() if _enabled(rule_id, config)
    ]


def selected_project_rules(config: LintConfig) -> list[ProjectRule]:
    """Instantiate the project rules enabled by ``select``/``ignore``."""
    return [
        cls()
        for rule_id, cls in PROJECT_RULES.items()
        if _enabled(rule_id, config)
    ]


def suppression_hygiene(module: LintModule) -> list[Finding]:
    """Warn on suppressions naming rule ids that do not exist.

    A typo'd id (``disable=R22``) must not silently read as a working
    allowlist entry; the warning keeps exit codes unchanged (0) but
    surfaces the dead suppression.
    """
    known = known_rule_ids()
    findings = []
    for line, rule_id in module.suppression_ids:
        if rule_id in known:
            continue
        findings.append(
            Finding(
                rule_id=SUPPRESSION_HYGIENE_ID,
                severity="warning",
                path=module.path,
                line=line,
                col=0,
                message=(
                    f"suppression names unknown rule id '{rule_id}' "
                    "(it suppresses nothing); known ids: "
                    + ", ".join(sorted(known - {SUPPRESSION_HYGIENE_ID}))
                ),
            )
        )
    return findings


def lint_module(module: LintModule) -> list[Finding]:
    """Per-file rules + suppression hygiene over one parsed module."""
    findings: list[Finding] = []
    for rule in selected_rules(module.config):
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not module.is_suppressed(finding):
                findings.append(finding)
    for finding in suppression_hygiene(module):
        if not module.is_suppressed(finding):
            findings.append(finding)
    return findings


def run_source(
    source: str, path: str, config: LintConfig | None = None
) -> list[Finding]:
    """Lint one in-memory source string (the test entry point).

    Runs the per-file rules only; project rules need a
    :class:`~repro.analysis.project.ProjectIndex` (see
    :func:`run_paths` or ``project.run_project_sources``).
    """
    config = config or LintConfig()
    findings = lint_module(LintModule(path, source, config))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def _lint_file_worker(
    path_str: str, config: LintConfig
) -> tuple[list[Finding], str | None]:
    """Read + lint one file (top-level so ``--jobs`` can pickle it)."""
    # worker processes import this module fresh; make sure the rule
    # pack has populated the registry before linting
    import repro.analysis  # noqa: F401

    try:
        source = Path(path_str).read_text(encoding="utf-8")
    except OSError as exc:
        return [], f"{path_str}: unreadable ({exc})"
    try:
        return run_source(source, path_str, config), None
    except SyntaxError as exc:
        return [], f"{path_str}: syntax error ({exc.msg})"


def run_paths(
    paths: Sequence[str | Path],
    config: LintConfig | None = None,
    jobs: int = 1,
) -> tuple[list[Finding], list[str]]:
    """Lint files/directories.

    Returns ``(findings, errors)`` where ``errors`` are files that
    could not be read or parsed (reported, never silently skipped).
    ``jobs > 1`` parses and lints the per-file rules in that many
    worker processes; the project-wide pass (rules R7-R11) always runs
    in-process afterwards, over every file that parsed.
    """
    config = config or LintConfig()
    files = [str(p) for p in iter_python_files(paths)]
    findings: list[Finding] = []
    errors: list[str] = []
    if jobs > 1 and len(files) > 1:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs
        ) as pool:
            for file_findings, error in pool.map(
                _lint_file_worker, files, [config] * len(files)
            ):
                findings.extend(file_findings)
                if error is not None:
                    errors.append(error)
    else:
        for file_path in files:
            file_findings, error = _lint_file_worker(file_path, config)
            findings.extend(file_findings)
            if error is not None:
                errors.append(error)
    findings.extend(_run_project_rules(files, config))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings, errors


def _run_project_rules(
    files: Sequence[str], config: LintConfig
) -> list[Finding]:
    """Run the registered project rules over the parseable files."""
    rules = selected_project_rules(config)
    if not rules:
        return []
    # imported here to avoid an import cycle (project imports engine)
    from repro.analysis.project import ProjectIndex

    index = ProjectIndex.from_files(files, config)
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check_project(index):
            module = index.lint_module(finding.path)
            if module is None or not module.is_suppressed(finding):
                findings.append(finding)
    return findings


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def _rule_metadata(rule_id: str) -> tuple[str, str]:
    """(short name, rationale) for a rule id, both families."""
    cls: type[Rule] | type[ProjectRule] | None = RULES.get(
        rule_id
    ) or PROJECT_RULES.get(rule_id)
    if cls is None:
        return "suppression-hygiene", "unknown rule id in a suppression"
    return cls.name, cls.rationale


def format_sarif(findings: Iterable[Finding]) -> str:
    """Render findings as a SARIF 2.1.0 log (one run, tool=reprolint).

    The minimal profile GitHub code scanning and most SARIF viewers
    consume: rule metadata on the driver, one result per finding with
    a physical location (1-based line/column).
    """
    items = list(findings)
    rules = []
    for rule_id in sorted({f.rule_id for f in items}):
        name, rationale = _rule_metadata(rule_id)
        rules.append(
            {
                "id": rule_id,
                "name": name,
                "shortDescription": {"text": name},
                "fullDescription": {"text": rationale},
            }
        )
    results = [
        {
            "ruleId": f.rule_id,
            "level": "error" if f.severity == "error" else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(f.path).as_posix(),
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in items
    ]
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "docs/DEVELOPMENT.md#the-rules"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)


def format_findings(
    findings: Iterable[Finding], output_format: str = "text"
) -> str:
    """Render findings as text lines, a JSON array, or a SARIF log."""
    items = list(findings)
    if output_format == "json":
        return json.dumps([f.as_dict() for f in items], indent=2)
    if output_format == "sarif":
        return format_sarif(items)
    return "\n".join(f.format_text() for f in items)


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def finding_fingerprint(finding: Finding) -> tuple[str, str, str]:
    """Stable identity of a finding across unrelated edits.

    Line/column are excluded on purpose: they drift whenever code above
    the finding moves.  Identical triples are matched by multiplicity
    (a file with two baselined copies of the same message tolerates
    two, not unlimited).
    """
    return (finding.rule_id, Path(finding.path).as_posix(), finding.message)


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    """Snapshot ``findings`` so a later run can report only new ones."""
    payload = {
        "version": 1,
        "findings": [
            {
                "rule_id": f.rule_id,
                "path": Path(f.path).as_posix(),
                "message": f.message,
            }
            for f in sorted(findings, key=finding_fingerprint)
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_baseline(path: str | Path) -> Counter[tuple[str, str, str]]:
    """Load fingerprint multiplicities from a baseline file.

    Raises ``ValueError`` on an unreadable or malformed file — a
    broken baseline must fail loudly, not silently un-suppress (or
    worse, suppress) everything.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"baseline {path}: missing 'findings' key")
    counts: Counter[tuple[str, str, str]] = Counter()
    for item in payload["findings"]:
        try:
            counts[(item["rule_id"], item["path"], item["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise ValueError(
                f"baseline {path}: malformed entry {item!r}"
            ) from exc
    return counts


def apply_baseline(
    findings: Sequence[Finding],
    baseline: Counter[tuple[str, str, str]],
) -> tuple[list[Finding], int]:
    """Split findings into (new, suppressed-count) against a baseline."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    suppressed = 0
    for finding in findings:
        key = finding_fingerprint(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            new.append(finding)
    return new, suppressed


def exit_code(findings: Sequence[Finding], errors: Sequence[str]) -> int:
    """0 clean / warnings only; 1 any error-severity finding; 2 broken input."""
    if errors:
        return 2
    if any(f.severity == "error" for f in findings):
        return 1
    return 0
