"""reprolint engine: rule registry, suppressions, runner, reporting.

A small AST-based static-analysis framework for this repository's
domain invariants (see :mod:`repro.analysis.rules` for the rule pack).
It exists because the invariants that matter here — seeded randomness,
unit consistency of the cost model, CSR-view lifetimes — are invisible
to general-purpose linters.

Architecture
------------
* :class:`Rule` subclasses declare an id (``R1``..), severity, and a
  ``check(module)`` generator yielding :class:`Finding` objects.
  Registration is by decorator into :data:`RULES`.
* :class:`LintModule` wraps one parsed source file: path, AST, raw
  lines, and the suppression table extracted from
  ``# reprolint: disable=...`` comments.
* :func:`run_paths` walks files/directories, applies every selected
  rule, filters suppressed findings, and returns the survivors sorted
  by location.

Suppressions
------------
``# reprolint: disable=R2`` on the flagged line suppresses that rule
there (add a justifying comment — the docs treat a bare suppression as
a review smell).  ``# reprolint: disable-file=R6`` anywhere in the
file suppresses the rule for the whole file.  Several ids may be
given, comma-separated; free text after the ids is ignored so the
justification can share the comment.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

#: finding severities, in increasing order of gravity
SEVERITIES = ("warning", "error")

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*"
    r"(?P<ids>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclasses.dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def as_dict(self) -> dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Engine configuration (defaults match ``[tool.reprolint]``).

    ``restrict_scopes`` keeps the scoped rules (R2 on ``ppr``/``core``
    hot paths, R6 on the cost-model/queueing-theory files) limited to
    their configured paths; tests switch it off to lint fixtures
    anywhere.
    """

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    restrict_scopes: bool = True
    #: path parts scoping R2 (float equality) to hot-path packages
    float_compare_parts: tuple[str, ...] = ("ppr", "core")
    #: file names scoping R6 (unit-suffix convention)
    unit_suffix_files: tuple[str, ...] = (
        "cost_models.py",
        "quota.py",
        "theory.py",
    )
    #: override for the metric-name registry (None = parse repro.obs.names)
    metric_counters: frozenset[str] | None = None
    metric_histograms: frozenset[str] | None = None
    metric_gauges: frozenset[str] | None = None


class LintModule:
    """One parsed source file plus its suppression table."""

    def __init__(self, path: str, source: str, config: LintConfig) -> None:
        self.path = path
        self.source = source
        self.config = config
        self.tree = ast.parse(source, filename=path)
        self.line_disables: dict[int, set[str]] = {}
        self.file_disables: set[str] = set()
        self._scan_suppressions()

    # ------------------------------------------------------------------
    def _scan_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            comments = []
        for line, text in comments:
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            ids = {part.strip() for part in match.group("ids").split(",")}
            if match.group(1) == "disable-file":
                self.file_disables |= ids
            else:
                self.line_disables.setdefault(line, set()).update(ids)

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule_id in self.file_disables:
            return True
        return finding.rule_id in self.line_disables.get(finding.line, set())

    # ------------------------------------------------------------------
    def path_parts(self) -> tuple[str, ...]:
        return Path(self.path).parts

    def filename(self) -> str:
        return Path(self.path).name


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``rationale`` and ``example`` feed ``--list-rules`` and the
    developer docs, keeping rule documentation next to the code.
    """

    rule_id: str = ""
    name: str = ""
    severity: str = "error"
    rationale: str = ""
    example: str = ""

    def applies_to(self, module: LintModule) -> bool:
        return True

    def check(self, module: LintModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: rule-id -> rule class, in registration order
RULES: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"{cls.rule_id}: unknown severity {cls.severity!r}")
    RULES[cls.rule_id] = cls
    return cls


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield every .py file under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if p.is_file()
            )
        elif path.suffix == ".py" and path.is_file():
            yield path


def selected_rules(config: LintConfig) -> list[Rule]:
    """Instantiate the rules enabled by ``select``/``ignore``."""
    chosen = []
    for rule_id, cls in RULES.items():
        if config.select is not None and rule_id not in config.select:
            continue
        if rule_id in config.ignore:
            continue
        chosen.append(cls())
    return chosen


def run_source(
    source: str, path: str, config: LintConfig | None = None
) -> list[Finding]:
    """Lint one in-memory source string (the test entry point)."""
    config = config or LintConfig()
    module = LintModule(path, source, config)
    findings: list[Finding] = []
    for rule in selected_rules(config):
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            if not module.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def run_paths(
    paths: Sequence[str | Path], config: LintConfig | None = None
) -> tuple[list[Finding], list[str]]:
    """Lint files/directories.

    Returns ``(findings, errors)`` where ``errors`` are files that
    could not be read or parsed (reported, never silently skipped).
    """
    config = config or LintConfig()
    findings: list[Finding] = []
    errors: list[str] = []
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            errors.append(f"{file_path}: unreadable ({exc})")
            continue
        try:
            findings.extend(run_source(source, str(file_path), config))
        except SyntaxError as exc:
            errors.append(f"{file_path}: syntax error ({exc.msg})")
    return findings, errors


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def format_findings(
    findings: Iterable[Finding], output_format: str = "text"
) -> str:
    """Render findings as line-oriented text or a JSON array."""
    items = list(findings)
    if output_format == "json":
        return json.dumps([f.as_dict() for f in items], indent=2)
    return "\n".join(f.format_text() for f in items)


def exit_code(findings: Sequence[Finding], errors: Sequence[str]) -> int:
    """0 clean / warnings only; 1 any error-severity finding; 2 broken input."""
    if errors:
        return 2
    if any(f.severity == "error" for f in findings):
        return 1
    return 0
