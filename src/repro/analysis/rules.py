"""The reprolint rule pack: this repository's domain invariants.

Each rule encodes an invariant the Python runtime never checks but the
reproduction's correctness depends on (see docs/DEVELOPMENT.md for the
per-rule rationale, examples, and suppression policy):

=====  =================  ====================================================
R1     global-rng         no draws from the global NumPy / stdlib RNG state
R2     float-compare      no ``==``/``!=`` against floats on hot paths
R3     csr-view-lifetime  no CSR view held across a graph mutation
R4     mutable-default    no mutable default arguments / shadowed builtins
R5     metric-name        metric literals must be registered in repro.obs.names
R6     unit-suffix        queueing/cost identifiers carry unit suffixes
=====  =================  ====================================================
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.engine import (
    Finding,
    LintModule,
    Rule,
    register,
)

# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local alias -> imported dotted module name (module imports only)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module is not None:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


# ----------------------------------------------------------------------
# R1: no global RNG
# ----------------------------------------------------------------------
@register
class GlobalRngRule(Rule):
    """Draws must come from an injected ``np.random.Generator``.

    The paper's methodology replays *identical* seeded workloads
    through every compared system; a single draw from global RNG state
    silently couples runs and destroys paired comparisons.
    """

    rule_id = "R1"
    name = "global-rng"
    severity = "error"
    rationale = (
        "Randomized kernels (walks, FORA, workload generators) must be "
        "deterministic under a seeded generator; global RNG state makes "
        "runs order-dependent and benchmark pairs invalid."
    )
    example = "np.random.choice(nodes)  ->  rng.choice(nodes)"

    #: generator/bit-generator constructors and types (not global state)
    NUMPY_ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "RandomState",
            "PCG64",
            "PCG64DXSM",
            "MT19937",
            "Philox",
            "SFC64",
        }
    )
    STDLIB_ALLOWED = frozenset({"Random", "SystemRandom"})

    def check(self, module: LintModule) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or "." not in name:
                continue
            head, rest = name.split(".", 1)
            resolved = f"{aliases.get(head, head)}.{rest}"
            parts = resolved.split(".")
            if (
                len(parts) >= 3
                and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[2] not in self.NUMPY_ALLOWED
            ):
                yield self.finding(
                    module,
                    node,
                    f"call to numpy global RNG '{resolved}'; draw from an "
                    "injected np.random.Generator (seeded) instead",
                )
            elif (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] not in self.STDLIB_ALLOWED
            ):
                yield self.finding(
                    module,
                    node,
                    f"call to stdlib global RNG 'random.{parts[1]}'; use a "
                    "seeded random.Random instance instead",
                )


# ----------------------------------------------------------------------
# R2: no float equality on hot paths
# ----------------------------------------------------------------------
@register
class FloatCompareRule(Rule):
    """``==``/``!=`` against a float literal in ``ppr``/``core``.

    Residues and reserves are accumulated floating-point quantities;
    equality against computed values is order-of-operations dependent.
    Exact-zero *sentinel* tests (a slot never written stays exactly
    0.0) are legitimate — allowlist them with an inline
    ``# reprolint: disable=R2`` plus a justifying comment.
    """

    rule_id = "R2"
    name = "float-compare"
    severity = "error"
    rationale = (
        "Accumulated float quantities on PPR/cost-model hot paths must "
        "not be compared with ==/!=; results depend on summation order."
    )
    example = "if residue[v] == 0.1:  ->  math.isclose(residue[v], 0.1, ...)"

    def applies_to(self, module: LintModule) -> bool:
        if not module.config.restrict_scopes:
            return True
        parts = module.path_parts()
        return any(p in parts for p in module.config.float_compare_parts)

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, float
                    ):
                        symbol = "==" if isinstance(op, ast.Eq) else "!="
                        yield self.finding(
                            module,
                            node,
                            f"float {symbol} comparison against "
                            f"{side.value!r}; use a tolerance "
                            "(math.isclose / np.isclose) or allowlist an "
                            "exact-zero sentinel with "
                            "'# reprolint: disable=R2' and a justification",
                        )
                        break


# ----------------------------------------------------------------------
# R3: CSR-view lifetime across graph mutations
# ----------------------------------------------------------------------
@register
class CsrViewLifetimeRule(Rule):
    """A ``csr_view`` result must not be read after a graph mutation.

    The incremental CSR store patches its arrays in place; adjacency
    reads through a pre-mutation facade are undefined (the stale-view
    bug class PR 1 fixed by hand).
    """

    rule_id = "R3"
    name = "csr-view-lifetime"
    severity = "error"
    rationale = (
        "csr_view() facades share the per-graph store's arrays; any "
        "DynamicGraph mutation invalidates adjacency reads through "
        "views obtained earlier."
    )
    example = (
        "view = csr_view(g); g.add_edge(u, v); view.out_neighbors_of(i)"
        "  ->  re-obtain the view after the mutation"
    )

    MUTATORS = frozenset(
        {
            "add_edge",
            "remove_edge",
            "toggle_edge",
            "add_node",
            "remove_node",
            "restore",
            "apply_update",
            "apply",  # EdgeUpdate.apply(graph) mutates the graph
        }
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node)

    @staticmethod
    def _is_csr_view_call(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Name):
            return func.id == "csr_view"
        return isinstance(func, ast.Attribute) and func.attr == "csr_view"

    def _check_function(
        self, module: LintModule, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        # ordered event stream over the function body: view acquisition,
        # graph mutation, view use.  Linear order by source position is
        # a sound-enough approximation for this codebase's straight-line
        # update paths (loops re-run the same order).
        events: list[tuple[int, int, str, str]] = []
        view_vars: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and self._is_csr_view_call(
                node.value
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        view_vars.add(target.id)
                        events.append(
                            (node.lineno, node.col_offset, "acquire", target.id)
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in self.MUTATORS:
                    events.append(
                        (node.lineno, node.col_offset, "mutate", node.func.attr)
                    )
        if not view_vars:
            return
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in view_vars
            ):
                events.append((node.lineno, node.col_offset, "use", node.id))

        events.sort(key=lambda e: (e[0], e[1]))
        stale: dict[str, str] = {}  # view var -> mutator that staled it
        fresh: set[str] = set()
        for lineno, col, kind, name in events:
            if kind == "acquire":
                fresh.add(name)
                stale.pop(name, None)
            elif kind == "mutate":
                for var in fresh:
                    stale[var] = name
                fresh.clear()
            elif kind == "use" and name in stale:
                marker = ast.Name(id=name)
                marker.lineno = lineno
                marker.col_offset = col
                yield self.finding(
                    module,
                    marker,
                    f"CSR view '{name}' used after graph mutation "
                    f"'{stale[name]}()'; re-obtain the view after mutating "
                    "(stale facades have undefined adjacency)",
                )
                stale.pop(name)  # one report per staling, not per use


# ----------------------------------------------------------------------
# R4: mutable defaults and shadowed builtins
# ----------------------------------------------------------------------
@register
class MutableDefaultRule(Rule):
    """Mutable default arguments and shadowed builtin names."""

    rule_id = "R4"
    name = "mutable-default"
    severity = "error"
    rationale = (
        "A mutable default is shared across calls (state leaks between "
        "requests); shadowing a builtin makes later uses of the builtin "
        "in the same scope silently wrong."
    )
    example = "def f(acc=[]):  ->  def f(acc=None): acc = [] if acc is None ..."

    MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque"})
    #: builtins whose shadowing has actually bitten review in the wild
    SHADOWED = frozenset(
        {
            "list", "dict", "set", "tuple", "str", "int", "float", "bool",
            "bytes", "id", "type", "input", "filter", "map", "sum", "min",
            "max", "len", "next", "iter", "range", "vars", "hash", "object",
            "print", "all", "any", "sorted", "dir", "open", "format",
            "slice", "property", "round", "abs", "pow", "compile", "eval",
            "exec", "bin", "hex", "oct", "repr", "zip",
        }
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(module, node)
                yield from self._check_params(module, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_store(module, target)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_store(module, node.target)

    def _check_defaults(
        self, module: LintModule, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        defaults = list(func.args.defaults) + [
            d for d in func.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self.MUTABLE_CALLS
            )
            if bad:
                yield self.finding(
                    module,
                    default,
                    f"mutable default argument in '{func.name}()'; default "
                    "to None and construct inside the function",
                )

    def _check_params(
        self, module: LintModule, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        args = func.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        ):
            if arg.arg in self.SHADOWED:
                yield self.finding(
                    module,
                    arg,
                    f"parameter '{arg.arg}' of '{func.name}()' shadows a "
                    "builtin; rename it",
                )

    def _check_store(
        self, module: LintModule, target: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Name) and target.id in self.SHADOWED:
            yield self.finding(
                module,
                target,
                f"assignment to '{target.id}' shadows a builtin; rename it",
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_store(module, element)


# ----------------------------------------------------------------------
# R5: metric-name literals must be registered
# ----------------------------------------------------------------------
@register
class MetricNameRule(Rule):
    """Metric-name literals must match :mod:`repro.obs.names`.

    A typo'd counter or a histogram observed under a counter's name
    silently splits a time series; reports then attribute cost to a
    metric nobody charts.
    """

    rule_id = "R5"
    name = "metric-name"
    severity = "error"
    rationale = (
        "Counter/histogram names are the contract between instrumented "
        "code and reports; drift is invisible at runtime."
    )
    example = 'metrics.histogram("service.qurey")  ->  "service.query"'

    METHODS = {
        "counter": "COUNTERS",
        "histogram": "HISTOGRAMS",
        "time": "HISTOGRAMS",
        "gauge": "GAUGES",
    }
    KINDS = ("COUNTERS", "HISTOGRAMS", "GAUGES")

    _registry_cache: dict[str, frozenset[str]] | None = None

    @classmethod
    def load_registry(cls) -> dict[str, frozenset[str]]:
        """Parse repro/obs/names.py statically (no package import)."""
        if cls._registry_cache is not None:
            return cls._registry_cache
        names_path = (
            Path(__file__).resolve().parent.parent / "obs" / "names.py"
        )
        registry: dict[str, frozenset[str]] = {
            kind: frozenset() for kind in cls.KINDS
        }
        try:
            tree = ast.parse(names_path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):  # pragma: no cover - packaging error
            cls._registry_cache = registry
            return registry
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in registry
                ):
                    literals = {
                        n.value
                        for n in ast.walk(node.value)
                        if isinstance(n, ast.Constant)
                        and isinstance(n.value, str)
                    }
                    registry[target.id] = frozenset(literals)
        cls._registry_cache = registry
        return registry

    def _registry_for(
        self, module: LintModule, kind: str
    ) -> frozenset[str]:
        config = module.config
        if kind == "COUNTERS" and config.metric_counters is not None:
            return config.metric_counters
        if kind == "HISTOGRAMS" and config.metric_histograms is not None:
            return config.metric_histograms
        if kind == "GAUGES" and config.metric_gauges is not None:
            return config.metric_gauges
        return self.load_registry()[kind]

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            kind = self.METHODS.get(node.func.attr)
            if kind is None or not node.args:
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                continue
            registered = self._registry_for(module, kind)
            if first.value in registered:
                continue
            hint = "; register it in repro/obs/names.py"
            for other in self.KINDS:
                if other == kind:
                    continue
                if first.value in self._registry_for(module, other):
                    hint = (
                        f" (registered as a {other.lower()[:-1]} — "
                        "wrong metric kind)"
                    )
                    break
            yield self.finding(
                module,
                first,
                f"metric name '{first.value}' passed to "
                f".{node.func.attr}() is not a registered "
                f"{kind.lower()[:-1]} name{hint}",
            )


# ----------------------------------------------------------------------
# R6: unit-suffix convention for queueing/cost-model identifiers
# ----------------------------------------------------------------------
@register
class UnitSuffixRule(Rule):
    """Rate/time identifiers in cost-model code must carry unit suffixes.

    The Table I / Eq. 2 terms mix rates (lambda, per second) and mean
    times (t-tilde, seconds); a unitless name like ``timeout`` or
    ``rate_ms`` is how the two get multiplied in the wrong units.
    Approved suffixes: ``_s`` / ``_seconds`` / ``_time`` (seconds),
    ``_rate`` / ``_per_s`` / ``_hz`` (per second).  The paper's bare
    notation (``lambda_q``, ``t_u``, ``cv_q``, ``rho``) is exempt.
    """

    rule_id = "R6"
    name = "unit-suffix"
    severity = "error"
    rationale = (
        "Cost-model terms must stay in consistent units (rates vs mean "
        "times, Table I / Eq. 2); names carry the units in this codebase."
    )
    example = "wait = ...  # seconds  ->  wait_s = ..."

    STEMS = frozenset(
        {"time", "rate", "delay", "latency", "interval", "period", "timeout"}
    )
    SUFFIXES = ("_s", "_seconds", "_per_s", "_rate", "_time", "_hz")
    #: the paper's notation, used verbatim across Section IV
    NOTATION = frozenset(
        {"lambda_q", "lambda_u", "t_q", "t_u", "rho", "mu", "tau"}
    )

    def applies_to(self, module: LintModule) -> bool:
        if not module.config.restrict_scopes:
            return True
        return module.filename() in module.config.unit_suffix_files

    def _violates(self, name: str) -> bool:
        if name in self.NOTATION or name.startswith("_"):
            return False
        parts = name.lower().split("_")
        if not any(part in self.STEMS for part in parts):
            return False
        lowered = name.lower()
        if lowered in self.STEMS:  # a bare stem is always ambiguous
            return True
        return not any(lowered.endswith(suffix) for suffix in self.SUFFIXES)

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                    if self._violates(arg.arg):
                        yield self.finding(
                            module,
                            arg,
                            self._message(f"parameter '{arg.arg}'"),
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and self._violates(
                        target.id
                    ):
                        yield self.finding(
                            module,
                            target,
                            self._message(f"variable '{target.id}'"),
                        )

    def _message(self, what: str) -> str:
        return (
            f"{what} names a rate/time quantity without a unit suffix; "
            f"use one of {', '.join(self.SUFFIXES)} (or the paper "
            "notation lambda_*/t_*/cv_*)"
        )
