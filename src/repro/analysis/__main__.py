"""Command line for reprolint: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean (or warnings only), 1 error-severity findings,
2 unreadable/unparsable input or usage error.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.engine import (
    RULES,
    LintConfig,
    exit_code,
    format_findings,
    run_paths,
)

# importing the rule pack populates the registry
from repro.analysis import rules as _rules  # noqa: F401


def _parse_ids(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Project-specific AST lint for the Quota/Seed codebase "
            "(rules R1-R6; see docs/DEVELOPMENT.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--no-scope",
        action="store_true",
        help="apply scoped rules (R2, R6) to every linted file",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def list_rules() -> str:
    lines = []
    for rule_id, cls in RULES.items():
        lines.append(f"{rule_id}  {cls.name} [{cls.severity}]")
        lines.append(f"    {cls.rationale}")
        if cls.example:
            lines.append(f"    e.g. {cls.example}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    select = _parse_ids(args.select)
    unknown = (select or frozenset()) - RULES.keys()
    if unknown:
        print(f"unknown rule ids: {sorted(unknown)}", file=sys.stderr)
        return 2
    config = LintConfig(
        select=select,
        ignore=_parse_ids(args.ignore) or frozenset(),
        restrict_scopes=not args.no_scope,
    )
    findings, errors = run_paths(args.paths, config)
    output = format_findings(findings, args.format)
    if output:
        print(output)
    for error in errors:
        print(error, file=sys.stderr)
    status = exit_code(findings, errors)
    if args.format == "text":
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"reprolint: {len(findings)} {noun}"
            + (f", {len(errors)} unparsable file(s)" if errors else ""),
            file=sys.stderr,
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
