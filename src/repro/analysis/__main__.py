"""Command line for reprolint: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean (or warnings only), 1 error-severity findings,
2 unreadable/unparsable input, broken baseline, or usage error.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.engine import (
    PROJECT_RULES,
    RULES,
    LintConfig,
    apply_baseline,
    exit_code,
    format_findings,
    load_baseline,
    run_paths,
    write_baseline,
)

# importing the package populates both rule registries
import repro.analysis as _analysis  # noqa: F401


def _parse_ids(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Project-specific AST lint for the Quota/Seed codebase "
            "(per-file rules R1-R6, project concurrency rules R7-R11; "
            "see docs/DEVELOPMENT.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--no-scope",
        action="store_true",
        help="apply scoped rules (R2, R6, R11) to every linted file",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint per-file rules in N worker processes "
        "(the project-wide pass stays in-process)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="report only findings not present in this baseline snapshot",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="snapshot the current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (both families) and exit",
    )
    return parser


def list_rules() -> str:
    lines = []
    for heading, registry in (
        ("per-file rules", RULES),
        ("project rules", PROJECT_RULES),
    ):
        lines.append(f"# {heading}")
        for rule_id, cls in registry.items():
            lines.append(f"{rule_id}  {cls.name} [{cls.severity}]")
            lines.append(f"    {cls.rationale}")
            if cls.example:
                lines.append(f"    e.g. {cls.example}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    select = _parse_ids(args.select)
    known = RULES.keys() | PROJECT_RULES.keys()
    unknown = (select or frozenset()) - known
    if unknown:
        print(f"unknown rule ids: {sorted(unknown)}", file=sys.stderr)
        return 2
    config = LintConfig(
        select=select,
        ignore=_parse_ids(args.ignore) or frozenset(),
        restrict_scopes=not args.no_scope,
    )
    findings, errors = run_paths(args.paths, config, jobs=args.jobs)
    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            f"reprolint: wrote baseline with {len(findings)} finding(s) "
            f"to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0
    suppressed = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        findings, suppressed = apply_baseline(findings, baseline)
    output = format_findings(findings, args.format)
    if output:
        print(output)
    for error in errors:
        print(error, file=sys.stderr)
    status = exit_code(findings, errors)
    if args.format == "text":
        noun = "finding" if len(findings) == 1 else "findings"
        extras = ""
        if suppressed:
            extras += f", {suppressed} baselined"
        if errors:
            extras += f", {len(errors)} unparsable file(s)"
        print(
            f"reprolint: {len(findings)} {noun}{extras}",
            file=sys.stderr,
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
