"""Concurrency-discipline rules R7-R11 (project-wide, interprocedural).

These rules run over the :class:`~repro.analysis.project.ProjectIndex`
— the call graph plus the lock-context dataflow — and machine-check
the serving runtime's locking discipline that docs/DEVELOPMENT.md so
far only *described*:

=====  ====================  ===============================================
R7     lock-order            self-deadlocks (read→write upgrade, recursive
                             acquisition) and cyclic acquisition order
R8     blocking-under-write  PPR kernels / IO / sleeps inside write
                             critical sections
R9     guarded-by            writes to ``# guarded-by:`` attributes outside
                             the declared lock context
R10    snapshot-escape       interprocedural CSR-view lifetime (extends R3
                             across calls and lock releases)
R11    metric-in-critical    metric-registry access inside serving critical
                             sections
=====  ====================  ===============================================

All five are *may*-analyses over the union of contexts a function can
be entered under; the model's assumptions and limits are documented in
:mod:`repro.analysis.project` and docs/DEVELOPMENT.md.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterator

from repro.analysis.engine import Finding, ProjectRule, register_project
from repro.analysis.project import (
    MUTATING_METHODS,
    MUTEX,
    READ,
    WRITE,
    Event,
    FunctionInfo,
    Held,
    ProjectIndex,
    expr_text,
)


def _ordered_events(info: FunctionInfo) -> list[Event]:
    """Events in source order (walk order is close; sorting pins it)."""
    return sorted(info.events, key=lambda e: (e.line, e.col))


# ----------------------------------------------------------------------
# R7: lock order / self-deadlock
# ----------------------------------------------------------------------
@register_project
class LockOrderRule(ProjectRule):
    """Self-deadlocks and cyclic lock-acquisition order.

    Two failure classes the write-preferring RWLock makes concrete:

    * **Self-deadlock** — re-acquiring a lock this thread may already
      hold.  A read→write *upgrade* waits for all readers to drain,
      including the upgrading thread; a *recursive read* blocks behind
      any waiting writer (write preference stalls new readers); write
      and mutex re-acquisition block on themselves outright.
    * **Order cycle** — thread 1 takes A then B while thread 2 takes B
      then A.  Every acquisition made while another lock is held
      contributes a directed edge; any cycle in that graph is a
      potential deadlock regardless of modes (even read-read, again
      because of write preference).
    """

    rule_id = "R7"
    name = "lock-order"
    severity = "error"
    rationale = (
        "The serving path holds up to three locks (rwlock, seed, "
        "records); a single out-of-order acquisition or read-to-write "
        "upgrade deadlocks the worker pool under write preference."
    )
    example = (
        "with lock.read_locked():\n    with lock.write_locked(): ..."
        "  ->  release the read hold first"
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        #: (from_lock, to_lock) -> first acquisition site
        edges: dict[tuple[str, str], tuple[str, int, int, str]] = {}
        for info in project.functions.values():
            for event in info.iter_events("acquire"):
                acquired = event.data
                assert isinstance(acquired, Held)
                held = info.effective(event)
                yield from self._self_deadlocks(info, event, acquired, held)
                for prior in sorted(held, key=lambda h: h.lock):
                    if prior.lock == acquired.lock:
                        continue
                    edge = (prior.lock, acquired.lock)
                    edges.setdefault(
                        edge,
                        (
                            info.module.path,
                            event.line,
                            event.col,
                            f"{acquired.describe()} while holding "
                            f"{prior.describe()} in {info.qualname}",
                        ),
                    )
        yield from self._order_cycles(edges)

    def _self_deadlocks(
        self,
        info: FunctionInfo,
        event: Event,
        acquired: Held,
        held: frozenset[Held],
    ) -> Iterator[Finding]:
        for prior in sorted(held, key=lambda h: (h.lock, h.mode)):
            if prior.lock != acquired.lock:
                continue
            if prior.mode == READ and acquired.mode == WRITE:
                why = (
                    "read->write upgrade self-deadlocks: the writer "
                    "waits for all readers to drain, including this "
                    "thread's own read hold"
                )
            elif prior.mode == READ and acquired.mode == READ:
                why = (
                    "recursive read acquisition deadlocks behind a "
                    "waiting writer (write preference blocks new readers)"
                )
            else:
                why = (
                    f"re-acquiring non-reentrant {acquired.describe()} "
                    f"while already holding {prior.describe()} blocks "
                    "this thread on itself"
                )
            yield self.finding(
                info.module.path,
                event.line,
                event.col,
                f"acquiring {acquired.describe()} while "
                f"{prior.describe()} may be held in {info.qualname}: "
                f"{why}",
            )

    def _order_cycles(
        self, edges: dict[tuple[str, str], tuple[str, int, int, str]]
    ) -> Iterator[Finding]:
        graph: dict[str, set[str]] = {}
        for src, dst in edges:
            graph.setdefault(src, set()).add(dst)
        for (src, dst), (path, line, col, label) in sorted(edges.items()):
            cycle = self._path(graph, dst, src)
            if cycle is None:
                continue
            chain = " -> ".join([src, *cycle])
            yield self.finding(
                path,
                line,
                col,
                f"lock-order cycle: acquiring {label} conflicts with "
                f"the reverse acquisition order {chain} elsewhere in "
                "the project; pick one global order",
            )

    @staticmethod
    def _path(
        graph: dict[str, set[str]], start: str, goal: str
    ) -> list[str] | None:
        """Shortest edge path start..goal, or None (BFS, deterministic)."""
        queue = deque([[start]])
        seen = {start}
        while queue:
            trail = queue.popleft()
            node = trail[-1]
            if node == goal:
                return trail
            for succ in sorted(graph.get(node, ())):
                if succ not in seen:
                    seen.add(succ)
                    queue.append(trail + [succ])
        return None


# ----------------------------------------------------------------------
# R8: blocking / unbounded compute under a write lock
# ----------------------------------------------------------------------
@register_project
class BlockingUnderWriteRule(ProjectRule):
    """No kernels, IO, or sleeps inside a write critical section.

    Queries run under read holds and scale out; everything under the
    write lock serializes the whole runtime — the paper's QoS target
    (Section V's update/query interleaving) dies the moment a PPR
    kernel or a blocking syscall runs there.  The write section should
    contain the CSR patch and nothing else.
    """

    rule_id = "R8"
    name = "blocking-under-write"
    severity = "error"
    rationale = (
        "A write hold stalls every reader; unbounded compute (PPR "
        "kernels) or blocking IO inside it turns tail latency into "
        "outage."
    )
    example = (
        "with rwlock.write_locked(): algo.query(s)"
        "  ->  compute under a read hold, mutate under the write hold"
    )

    #: dotted stdlib calls that block (module-resolved via import aliases)
    BLOCKING_DOTTED = frozenset({"time.sleep", "os.system"})
    #: any call into these modules blocks or may block on the network
    BLOCKING_MODULES = frozenset(
        {"socket", "subprocess", "requests", "urllib"}
    )
    #: builtins that block on IO
    BLOCKING_NAMES = frozenset({"open", "input"})
    #: PPR kernel entry points (unbounded compute; repro.ppr)
    KERNELS = frozenset(
        {
            "frontier_push",
            "batched_frontier_push",
            "reference_frontier_push",
            "power_phase",
            "forward_push",
            "ppr_exact",
            "power_iteration",
        }
    )
    #: algorithm methods that run a kernel
    KERNEL_METHODS = frozenset({"query", "query_batch"})

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        for info in project.functions.values():
            for event in info.iter_events("call"):
                write_holds = [
                    h
                    for h in info.effective(event)
                    if h.mode == WRITE
                ]
                if not write_holds:
                    continue
                call = event.data
                assert isinstance(call, ast.Call)
                label = self._blocking_label(call, info)
                if label is None:
                    continue
                lock = sorted(write_holds, key=lambda h: h.lock)[0]
                yield self.finding(
                    info.module.path,
                    event.line,
                    event.col,
                    f"{label} inside the {lock.describe()} critical "
                    f"section in {info.qualname}; the write hold "
                    "serializes all readers — move it outside the lock",
                )

    def _blocking_label(
        self, call: ast.Call, info: FunctionInfo
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.BLOCKING_NAMES:
                return f"blocking IO call '{func.id}()'"
            if func.id in self.KERNELS:
                return f"PPR kernel call '{func.id}()' (unbounded compute)"
            return None
        dotted = expr_text(func)
        if dotted is not None and "." in dotted:
            head, rest = dotted.split(".", 1)
            resolved = f"{info.module.aliases.get(head, head)}.{rest}"
            if resolved in self.BLOCKING_DOTTED:
                return f"blocking call '{resolved}()'"
            if resolved.split(".", 1)[0] in self.BLOCKING_MODULES:
                return f"blocking call '{resolved}()'"
        if isinstance(func, ast.Attribute):
            if func.attr in self.KERNELS:
                return (
                    f"PPR kernel call '.{func.attr}()' (unbounded compute)"
                )
            if func.attr in self.KERNEL_METHODS:
                return (
                    f"PPR query call '.{func.attr}()' (unbounded compute)"
                )
        return None


# ----------------------------------------------------------------------
# R9: guarded-by annotations
# ----------------------------------------------------------------------
@register_project
class GuardedByRule(ProjectRule):
    """Writes to ``# guarded-by:`` attributes need the declared lock.

    ``self._degraded = False  # guarded-by: self._rwlock[write]`` on
    the attribute's assignment in ``__init__`` declares the contract;
    every other method that assigns, augments, deletes, subscript-
    stores, or calls a mutating container method on the attribute must
    do so in a context where the declared lock may be held (``[read]``/
    ``[write]`` pin the RWLock mode; bare names accept any mode).
    ``__init__``/``__new__`` are exempt — the object is not shared yet.
    """

    rule_id = "R9"
    name = "guarded-by"
    severity = "error"
    rationale = (
        "Shared mutable runtime state (degradation flag, record lists, "
        "cache maps) is only safe under its declared lock; an unlocked "
        "write is a data race the GIL merely makes rare."
    )
    example = (
        "self.records.append(r)  outside  with self._records_lock:"
        "  ->  take the declared lock first"
    )

    EXEMPT = frozenset({"__init__", "__new__"})

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        if not project.guarded:
            return
        for info in project.functions.values():
            if info.class_name is None or info.simple_name in self.EXEMPT:
                continue
            for event in info.events:
                attr = self._written_attr(event)
                if attr is None:
                    continue
                guard = project.guarded.get((info.class_name, attr))
                if guard is None:
                    continue
                lock, mode, decl_path, decl_line = guard
                if self._satisfied(lock, mode, info.effective(event)):
                    continue
                need = f"{lock}[{mode}]" if mode else lock
                yield self.finding(
                    info.module.path,
                    event.line,
                    event.col,
                    f"write to 'self.{attr}' in {info.qualname} outside "
                    f"its declared lock context {need} (declared at "
                    f"{decl_path}:{decl_line}); acquire the lock or fix "
                    "the annotation",
                )

    @staticmethod
    def _written_attr(event: Event) -> str | None:
        if event.kind == "attr_write":
            attr = event.data
            assert isinstance(attr, str)
            return attr
        if event.kind == "call":
            call = event.data
            assert isinstance(call, ast.Call)
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in ("self", "cls")
            ):
                return func.value.attr
        return None

    @staticmethod
    def _satisfied(
        lock: str, mode: str | None, held: frozenset[Held]
    ) -> bool:
        for h in held:
            if h.lock != lock:
                continue
            if mode is None:
                return True
            if h.mode == mode:
                return True
            # a write hold subsumes a declared read requirement
            if mode == READ and h.mode == WRITE:
                return True
        return False


# ----------------------------------------------------------------------
# R10: interprocedural CSR-snapshot escape
# ----------------------------------------------------------------------
@register_project
class SnapshotEscapeRule(ProjectRule):
    """CSR views must not outlive their snapshot — across calls too.

    The per-function R3 catches ``view = csr_view(g); g.add_edge(...);
    view.use()`` in one body.  This rule extends the same lifetime
    contract through the call graph and the lock model:

    * **hidden mutation** — the staling call is a project function
      that (transitively) mutates the graph;
    * **hidden acquisition** — the view came from a helper that
      (transitively) returns ``csr_view(...)``;
    * **lock escape** — the view was captured under a read/write hold
      and is still used after that hold is released (the writer may
      have refreshed the snapshot the moment the lock dropped).

    Purely local direct cases stay R3's — one finding per defect.
    """

    rule_id = "R10"
    name = "snapshot-escape"
    severity = "error"
    rationale = (
        "Snapshot isolation is the serving correctness contract: a "
        "view that crosses a mutation or its lock release reads "
        "patched arrays (undefined adjacency)."
    )
    example = (
        "view = get_view(g)  # helper returns csr_view\n"
        "flush(g)            # helper mutates\n"
        "view.out_neighbors_of(u)  ->  re-obtain the view"
    )

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        for info in project.functions.values():
            yield from self._check_function(project, info)

    def _check_function(
        self, project: ProjectIndex, info: FunctionInfo
    ) -> Iterator[Finding]:
        #: var -> (acquired-directly, snapshot locks, acquisition line)
        views: dict[str, tuple[bool, frozenset[Held], int]] = {}
        #: var -> (stale label, staled-by-direct-mutator)
        stale: dict[str, tuple[str, bool]] = {}
        escape_reported: set[str] = set()
        for event in _ordered_events(info):
            if event.kind == "view_assign":
                varname, call = event.data  # type: ignore[misc]
                assert isinstance(call, ast.Call)
                if project.call_yields_view(call, info):
                    direct = _is_direct_view_call(call)
                    locks = frozenset(
                        h for h in event.held if h.mode in (READ, WRITE)
                    )
                    views[varname] = (direct, locks, event.line)
                    stale.pop(varname, None)
                    escape_reported.discard(varname)
                else:
                    views.pop(varname, None)
                    stale.pop(varname, None)
            elif event.kind == "call":
                call = event.data
                assert isinstance(call, ast.Call)
                verdict = project.call_mutates_graph(call, info)
                if verdict is None:
                    continue
                _, direct_mut, label = verdict
                for varname in views:
                    if varname not in stale:
                        stale[varname] = (label, direct_mut)
            elif event.kind == "load":
                varname = event.data
                assert isinstance(varname, str)
                if varname not in views:
                    continue
                direct_acq, locks, acq_line = views[varname]
                if varname in stale:
                    label, direct_mut = stale.pop(varname)
                    if not (direct_acq and direct_mut):
                        how = (
                            f"call to '{label}()' which mutates the "
                            "graph"
                            if not direct_mut
                            else f"graph mutation '{label}()'"
                        )
                        via = (
                            ""
                            if direct_acq
                            else " (view obtained via a helper that "
                            "returns csr_view)"
                        )
                        yield self.finding(
                            info.module.path,
                            event.line,
                            event.col,
                            f"CSR view '{varname}' in {info.qualname} "
                            f"used after {how}{via}; re-obtain the view "
                            "after mutating",
                        )
                missing = locks - frozenset(event.held)
                if missing and varname not in escape_reported:
                    escape_reported.add(varname)
                    lost = ", ".join(
                        h.describe()
                        for h in sorted(missing, key=lambda h: h.lock)
                    )
                    yield self.finding(
                        info.module.path,
                        event.line,
                        event.col,
                        f"CSR view '{varname}' in {info.qualname} "
                        f"(captured under {lost} at line {acq_line}) "
                        "used after the lock was released; the writer "
                        "may have refreshed the snapshot — re-obtain "
                        "the view inside the critical section",
                    )


def _is_direct_view_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "csr_view"
    return isinstance(func, ast.Attribute) and func.attr == "csr_view"


# ----------------------------------------------------------------------
# R11: metric-registry access in serving critical sections
# ----------------------------------------------------------------------
@register_project
class MetricInCriticalSectionRule(ProjectRule):
    """No metric-registry calls inside serving critical sections.

    ``MetricsRegistry`` is shared across every worker; ``histogram()``
    / ``counter()`` lookups allocate on first use and contend on the
    registry dict.  Inside a write hold or a mutex on the serving hot
    path that contention extends the critical section for *all*
    readers.  Record the duration first, observe after release.
    """

    rule_id = "R11"
    name = "metric-in-critical"
    severity = "error"
    rationale = (
        "Metric recording is observability, not state transition; "
        "keeping it out of critical sections keeps write holds "
        "minimal, which is the paper's QoS lever."
    )
    example = (
        "with rwlock.write_locked():\n"
        "    ...\n"
        "    metrics.histogram('service.update').observe(dt)\n"
        "  ->  observe after releasing the write lock"
    )

    REGISTRY_METHODS = frozenset({"counter", "histogram", "gauge", "time"})

    def check_project(self, project: ProjectIndex) -> Iterator[Finding]:
        for info in project.functions.values():
            if not self._in_scope(info):
                continue
            for event in info.iter_events("call"):
                critical = [
                    h
                    for h in info.effective(event)
                    if h.mode in (WRITE, MUTEX)
                ]
                if not critical:
                    continue
                call = event.data
                assert isinstance(call, ast.Call)
                method = self._registry_call(call)
                if method is None:
                    continue
                lock = sorted(critical, key=lambda h: h.lock)[0]
                yield self.finding(
                    info.module.path,
                    event.line,
                    event.col,
                    f"metric-registry call '.{method}()' inside the "
                    f"{lock.describe()} critical section in "
                    f"{info.qualname}; record the value and observe "
                    "after releasing the lock",
                )

    @staticmethod
    def _in_scope(info: FunctionInfo) -> bool:
        config = info.module.lint.config
        if not config.restrict_scopes:
            return True
        from pathlib import Path

        parts = Path(info.module.path).parts
        return any(p in parts for p in config.metric_critical_parts)

    def _registry_call(self, call: ast.Call) -> str | None:
        func = call.func
        if (
            not isinstance(func, ast.Attribute)
            or func.attr not in self.REGISTRY_METHODS
        ):
            return None
        receiver = expr_text(func.value)
        if receiver is None:
            return None
        leaf = receiver.rsplit(".", 1)[-1].lower()
        if "metric" in leaf or "registry" in leaf:
            return func.attr
        return None
