"""repro.analysis — project-specific static analysis (``reprolint``).

An AST-based lint engine plus two rule packs encoding this
repository's domain invariants:

* per-file rules — seeded randomness (R1), no float equality on hot
  paths (R2), CSR-view lifetimes (R3), mutable defaults / shadowed
  builtins (R4), registered metric names (R5), and unit-suffixed
  queueing/cost identifiers (R6);
* project-wide concurrency rules over the interprocedural lock-context
  dataflow of :mod:`repro.analysis.project` — lock order /
  self-deadlock (R7), blocking calls under write holds (R8),
  ``# guarded-by:`` attribute contexts (R9), CSR-snapshot escape
  across calls and lock releases (R10), and metric-registry access in
  serving critical sections (R11).

Run it as ``python -m repro.analysis src/`` or via ``tools/reprolint``;
see docs/DEVELOPMENT.md for rule rationale and suppression policy.
"""

from repro.analysis import (  # noqa: F401  (registers both rule packs)
    concurrency as _concurrency,
    rules as _rules,
)
from repro.analysis.engine import (
    PROJECT_RULES,
    RULES,
    Finding,
    LintConfig,
    LintModule,
    ProjectRule,
    Rule,
    apply_baseline,
    exit_code,
    format_findings,
    known_rule_ids,
    load_baseline,
    register,
    register_project,
    run_paths,
    run_source,
    write_baseline,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintModule",
    "PROJECT_RULES",
    "ProjectRule",
    "RULES",
    "Rule",
    "apply_baseline",
    "exit_code",
    "format_findings",
    "known_rule_ids",
    "load_baseline",
    "register",
    "register_project",
    "run_paths",
    "run_source",
    "write_baseline",
]
