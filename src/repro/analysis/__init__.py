"""repro.analysis — project-specific static analysis (``reprolint``).

An AST-based lint engine plus a rule pack encoding this repository's
domain invariants: seeded randomness (R1), no float equality on hot
paths (R2), CSR-view lifetimes (R3), mutable defaults / shadowed
builtins (R4), registered metric names (R5), and unit-suffixed
queueing/cost identifiers (R6).

Run it as ``python -m repro.analysis src/`` or via ``tools/reprolint``;
see docs/DEVELOPMENT.md for rule rationale and suppression policy.
"""

from repro.analysis import rules as _rules  # noqa: F401  (registers the pack)
from repro.analysis.engine import (
    RULES,
    Finding,
    LintConfig,
    LintModule,
    Rule,
    exit_code,
    format_findings,
    register,
    run_paths,
    run_source,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintModule",
    "RULES",
    "Rule",
    "exit_code",
    "format_findings",
    "register",
    "run_paths",
    "run_source",
]
