"""QuotaSystem: the end-to-end serving loop (Algorithm 2 + simulator).

Glues everything together: a base PPR algorithm, the Quota controller
(optional — omit it to replay the algorithm at its default setting, the
paper's baselines), the Seed reordering queue (epsilon_r > 0), online
arrival-rate monitoring with periodic re-optimization, and the
virtual-time FCFS clock.

Timing model (the DESIGN.md substitution): the server's virtual clock
advances by the *measured wall time* of each executed operation —
query, update, deferred-update flush, and (optionally) reconfiguration
work such as index rebuilds triggered by a hyperparameter change.
Response time of a query = (virtual completion) - (virtual arrival),
matching the paper's R_q.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, TypeVar, cast

from repro.cache import (
    VECTOR,
    CacheKey,
    ChargingApplier,
    PPRCache,
    StalenessTracker,
    make_key,
)
from repro.core.quota import QuotaController, QuotaDecision
from repro.core.seed import SeedQueue, UpdateApplier
from repro.obs import MetricsRegistry, get_metrics
from repro.ppr.base import DynamicPPRAlgorithm, PPRVector
from repro.queueing.simulator import CompletedRequest, SimulationResult
from repro.queueing.workload import QUERY, UPDATE, Request, Workload

if TYPE_CHECKING:  # runtime import stays lazy (serving imports core)
    from repro.serving.runtime import ServingRuntime

QueryCallback = Callable[[Request, PPRVector, int], None]

_T = TypeVar("_T")


@dataclass(slots=True)
class RateEstimator:
    """Sliding-window arrival-rate monitor (Section VIII-D: "we
    continuously monitor the rates")."""

    window: float = 10.0
    _queries: deque[float] = field(default_factory=deque)
    _updates: deque[float] = field(default_factory=deque)

    def observe(self, kind: str, arrival: float) -> None:
        store = self._queries if kind == QUERY else self._updates
        store.append(arrival)
        self._evict(arrival)

    def _evict(self, now: float) -> None:
        horizon = now - self.window
        for store in (self._queries, self._updates):
            while store and store[0] < horizon:
                store.popleft()

    def rates(self, now: float) -> tuple[float, float]:
        """Estimated (lambda_q, lambda_u) over the trailing window."""
        self._evict(now)
        span = min(self.window, max(now, 1e-9))
        return len(self._queries) / span, len(self._updates) / span

    @property
    def observed(self) -> int:
        """Events currently inside the trailing window."""
        return len(self._queries) + len(self._updates)


@dataclass(slots=True)
class RateDriftDetector:
    """Flags when the *observed* rates drift from the *configured* pair.

    The online re-optimization loop (ROADMAP "scenario fuzzing at
    production scale"): a serving stack configured for
    ``(lambda_q, lambda_u)`` keeps monitoring the empirical arrival
    rates over a sliding window; once either rate drifts past
    ``threshold`` (relative), :meth:`check` returns the monitored pair
    so the caller can re-run the Quota controller — through
    :meth:`QuotaSystem._maybe_reoptimize` on the virtual clock, or
    :meth:`repro.serving.ServingRuntime.reconfigure` on the measured
    one — and :meth:`rearm` the detector at the new configuration.

    ``min_events`` guards the cold window: a handful of arrivals says
    nothing about the rate, and re-solving on noise would thrash the
    controller (every re-configuration is an index rebuild for the
    index-based algorithms).
    """

    configured_q: float
    configured_u: float
    window: float = 5.0
    threshold: float = 0.5
    min_events: int = 20
    estimator: RateEstimator = field(default_factory=RateEstimator)

    def __post_init__(self) -> None:
        if self.configured_q < 0 or self.configured_u < 0:
            raise ValueError("configured rates must be non-negative")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        self.estimator.window = self.window

    def observe(self, kind: str, arrival: float) -> None:
        self.estimator.observe(kind, arrival)

    def _drifted(self, observed: float, configured: float) -> bool:
        if configured <= 0:
            return observed > 0
        return abs(observed - configured) / configured > self.threshold

    def check(self, now: float) -> tuple[float, float] | None:
        """Monitored (lambda_q, lambda_u) when drifted, else None."""
        if self.estimator.observed < self.min_events:
            return None
        lambda_q, lambda_u = self.estimator.rates(now)
        if self._drifted(lambda_q, self.configured_q) or self._drifted(
            lambda_u, self.configured_u
        ):
            return lambda_q, lambda_u
        return None

    def rearm(self, lambda_q: float, lambda_u: float) -> None:
        """Accept the new configuration as the drift baseline."""
        self.configured_q = lambda_q
        self.configured_u = lambda_u


class QuotaSystem:
    """Serves an interleaved query/update workload on a virtual clock.

    Parameters
    ----------
    algorithm:
        The base PPR algorithm instance (owns the graph).
    controller:
        Quota controller; None replays the algorithm as-is (baseline).
    epsilon_r:
        Seed reorder threshold; 0 keeps strict FCFS (no reordering).
    reoptimize_every:
        Re-run the controller every this many virtual seconds using the
        monitored rates; None configures only when
        :meth:`configure_static` is called.
    rate_window:
        Sliding-window length (virtual seconds) of the rate monitor.
    charge_solve:
        Charge the controller's solve time to the virtual server clock.
        Default False: the search runs out-of-band (a side thread in a
        real deployment; the paper's Table IV reports it separately
        from serving).
    charge_apply:
        Charge the cost of *applying* a new beta — an index rebuild for
        index-based algorithms — to the server clock.  Default True:
        the index is shared state the server must rebuild in-line.
    cache:
        Optional :class:`~repro.cache.PPRCache`.  Queries look up
        before computing (a hit costs only the measured lookup time on
        the virtual clock and skips the Seed flush check — the budget
        ``epsilon_c`` already covers every applied update) and insert
        after computing; every update-application path charges the
        staleness tracker immediately, via a
        :class:`~repro.cache.ChargingApplier` on the flush paths so a
        batch flush charges each update against the degrees it saw.
    metrics:
        Observability registry receiving the per-operation service-time
        histograms (``service.query`` / ``service.update`` /
        ``service.flush`` / ``service.reconfigure``) that let reports
        attribute time to sub-processes as the paper's Table I does.
        Defaults to the process-wide registry from
        :func:`repro.obs.get_metrics`.
    """

    def __init__(
        self,
        algorithm: DynamicPPRAlgorithm,
        controller: QuotaController | None = None,
        epsilon_r: float = 0.0,
        reoptimize_every: float | None = None,
        rate_window: float = 10.0,
        charge_solve: bool = False,
        charge_apply: bool = True,
        rate_change_threshold: float = 0.15,
        beta_change_threshold: float = 0.10,
        cache: PPRCache | None = None,
        metrics: MetricsRegistry | None = None,
        drift_detector: RateDriftDetector | None = None,
    ) -> None:
        if reoptimize_every is not None and reoptimize_every <= 0:
            raise ValueError("reoptimize_every must be positive")
        self.algorithm = algorithm
        self.controller = controller
        self.epsilon_r = epsilon_r
        self.reoptimize_every = reoptimize_every
        self.drift_detector = drift_detector
        self.rate_estimator = RateEstimator(window=rate_window)
        self.charge_solve = charge_solve
        self.charge_apply = charge_apply
        # hysteresis for the online loop: skip re-solving when the
        # monitored rates barely moved, and skip re-applying beta (an
        # index rebuild for index-based algorithms) when the solution
        # barely moved
        self.rate_change_threshold = rate_change_threshold
        self.beta_change_threshold = beta_change_threshold
        self.cache = cache
        self._staleness = (
            StalenessTracker(
                cache, algorithm.graph, algorithm.params.alpha
            )
            if cache is not None
            else None
        )
        self.metrics = metrics if metrics is not None else get_metrics()
        self.decisions: list[QuotaDecision] = []
        self._last_reoptimize = 0.0
        self._configured_rates: tuple[float, float] | None = None

    # ------------------------------------------------------------------
    def configure_static(
        self, lambda_q: float, lambda_u: float
    ) -> QuotaDecision | None:
        """One-shot configuration for known rates (the Figure 3 mode)."""
        if self.controller is None:
            return None
        decision = self.controller.configure(lambda_q, lambda_u)
        self.algorithm.set_hyperparameters(**decision.beta)
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    def make_runtime(
        self,
        workers: int = 2,
        queue_capacity: int = 256,
        deadline_s: float | None = None,
        drain_idle: bool = True,
        max_batch: int = 1,
        batch_window_s: float = 0.0,
    ) -> "ServingRuntime":
        """Build a live :class:`~repro.serving.ServingRuntime` sharing
        this system's algorithm, controller, Seed budget, and metrics.

        ``process`` replays a workload on a virtual clock; the runtime
        returned here executes the same policy — Seed-aware dispatch,
        idle draining, Quota reconfiguration — on real threads, so a
        ``configure_static`` decision made here drives measured
        serving directly.
        """
        from repro.serving.runtime import ServingRuntime

        return ServingRuntime(
            self.algorithm,
            workers=workers,
            epsilon_r=self.epsilon_r,
            queue_capacity=queue_capacity,
            deadline_s=deadline_s,
            controller=self.controller,
            drain_idle=drain_idle,
            max_batch=max_batch,
            batch_window_s=batch_window_s,
            cache=self.cache,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    def process(
        self,
        workload: Workload,
        query_callback: QueryCallback | None = None,
    ) -> SimulationResult:
        """Replay ``workload`` in arrival order; returns timed results.

        ``query_callback(request, estimate, pending_updates)`` fires
        after every query with the PPR estimate and the number of
        not-yet-applied (Seed-deferred) updates — the hook the accuracy
        experiments use.
        """
        seed_queue = SeedQueue(
            self.algorithm.graph, self.algorithm.params.alpha, self.epsilon_r
        )
        # flush paths go through the charging wrapper so each update is
        # charged against the degrees it actually saw (not post-batch)
        applier: UpdateApplier = (
            ChargingApplier(self.algorithm, self._staleness)
            if self._staleness is not None
            else self.algorithm
        )
        cache = self.cache
        completed: list[CompletedRequest] = []
        server_free = 0.0
        self._last_reoptimize = 0.0

        for request in workload:
            self.rate_estimator.observe(request.kind, request.arrival)
            if self.drift_detector is not None:
                self.drift_detector.observe(request.kind, request.arrival)
            server_free = self._maybe_reoptimize(request.arrival, server_free)
            # Opportunistically drain deferred updates while the server
            # idles before this arrival — deferral should steal time
            # from queries only under contention (Lemma 3's regime).
            server_free = self._drain_idle(
                seed_queue, applier, completed, server_free, request.arrival
            )

            if request.kind == UPDATE:
                update = request.update
                assert update is not None  # UPDATE requests carry one
                if self.epsilon_r > 0.0:
                    # Seed: defer; the cost is paid at flush time.
                    seed_queue.add(update, request.arrival)
                    continue
                start = max(request.arrival, server_free)
                elapsed = self._timed(
                    lambda: applier.apply_update(update)
                )[1]
                self.metrics.histogram("service.update").observe(elapsed)
                finish = start + elapsed
                completed.append(
                    CompletedRequest(request, start, finish, elapsed)
                )
                server_free = finish
                continue

            # --- query ---------------------------------------------------
            source = request.source
            assert source is not None  # QUERY requests carry one
            start = max(request.arrival, server_free)
            key: CacheKey | None = None
            if cache is not None:
                key = self._cache_key(source)
                hit_key = key
                entry, lookup_elapsed = self._timed(
                    lambda: cache.lookup(hit_key)
                )
                if entry is not None:
                    # a hit costs only the lookup and skips the Seed
                    # flush check: epsilon_c already covers every
                    # applied update, and the deferred ones are
                    # invisible to a fresh recompute too
                    self.metrics.histogram("service.query_hit").observe(
                        lookup_elapsed
                    )
                    finish = start + lookup_elapsed
                    completed.append(
                        CompletedRequest(
                            request, start, finish, lookup_elapsed
                        )
                    )
                    server_free = finish
                    if query_callback is not None:
                        query_callback(
                            request,
                            cast(PPRVector, entry.value),
                            len(seed_queue),
                        )
                    continue
            if len(seed_queue) and seed_queue.should_flush(source):
                # the query must wait for the forced flush: the deferred
                # updates occupy the server first, then the query runs
                flushed, flush_elapsed = self._timed(
                    lambda: seed_queue.flush(applier)
                )
                self.metrics.histogram("service.flush").observe(flush_elapsed)
                flush_finish = start + flush_elapsed
                share = flush_elapsed / max(len(flushed), 1)
                for item in flushed:
                    completed.append(
                        CompletedRequest(
                            Request(
                                item.arrival, UPDATE, update=item.update
                            ),
                            start,
                            flush_finish,
                            share,
                        )
                    )
                start = flush_finish
            estimate, query_elapsed = self._timed(
                lambda: self.algorithm.query(source)
            )
            self.metrics.histogram("service.query").observe(query_elapsed)
            if cache is not None and key is not None:
                cache.insert(
                    key,
                    estimate,
                    self.algorithm.graph.version,
                    cost_s=query_elapsed,
                    pi_estimate=estimate.get,
                )
            finish = start + query_elapsed
            completed.append(
                CompletedRequest(request, start, finish, query_elapsed)
            )
            server_free = finish
            if query_callback is not None:
                query_callback(request, estimate, len(seed_queue))

        # Drain any still-pending updates after the window closes.
        if len(seed_queue):
            drain_from = max(
                server_free,
                max(item.arrival for item in seed_queue.pending),
            )
            flushed, elapsed = self._timed(
                lambda: seed_queue.flush(applier)
            )
            self.metrics.histogram("service.flush").observe(elapsed)
            finish = drain_from + elapsed
            for item in flushed:
                completed.append(
                    CompletedRequest(
                        Request(item.arrival, UPDATE, update=item.update),
                        drain_from,
                        finish,
                        elapsed / max(len(flushed), 1),
                    )
                )
            server_free = finish

        completed.sort(key=lambda c: (c.start, c.arrival))
        return SimulationResult(completed, workload.t_end)

    # ------------------------------------------------------------------
    def _drain_idle(
        self,
        seed_queue: SeedQueue,
        applier: UpdateApplier,
        completed: list[CompletedRequest],
        server_free: float,
        until: float,
    ) -> float:
        """Apply pending updates one at a time while the server is idle."""
        while len(seed_queue) and server_free < until:
            item, elapsed = self._timed(
                lambda: seed_queue.flush_one(applier)
            )
            assert item is not None  # queue was non-empty
            self.metrics.histogram("service.update").observe(elapsed)
            # an update cannot start before it arrived
            start = max(server_free, item.arrival)
            finish = start + elapsed
            completed.append(
                CompletedRequest(
                    Request(item.arrival, UPDATE, update=item.update),
                    start,
                    finish,
                    elapsed,
                )
            )
            server_free = finish
        return server_free

    def _maybe_reoptimize(self, now: float, server_free: float) -> float:
        """Online reconfiguration from monitored rates.

        Two trigger modes: the paper's fixed-period loop
        (``reoptimize_every``) with rate-change hysteresis, or — when a
        :class:`RateDriftDetector` is attached — event-driven
        re-configuration the moment the monitored rates drift past the
        detector's threshold (the ROADMAP online re-optimization loop).
        """
        if self.controller is None:
            return server_free
        if self.drift_detector is not None:
            drifted = self.drift_detector.check(now)
            if drifted is None:
                return server_free
            lambda_q, lambda_u = drifted
            if lambda_q <= 0:
                return server_free
            self.drift_detector.rearm(lambda_q, lambda_u)
        else:
            if self.reoptimize_every is None:
                return server_free
            if now - self._last_reoptimize < self.reoptimize_every:
                return server_free
            self._last_reoptimize = now
            lambda_q, lambda_u = self.rate_estimator.rates(now)
            if lambda_q <= 0:
                return server_free
            if self._configured_rates is not None and not self._rates_moved(
                lambda_q, lambda_u
            ):
                return server_free

        current = self.algorithm.get_hyperparameters()
        decision = self.controller.configure(
            lambda_q, lambda_u, warm_start=current, quick=True
        )
        self._configured_rates = (lambda_q, lambda_u)
        self.decisions.append(decision)
        apply_elapsed = 0.0
        if self._beta_moved(current, decision.beta):
            _, apply_elapsed = self._timed(
                lambda: self.algorithm.set_hyperparameters(**decision.beta)
            )
            self.metrics.histogram("service.reconfigure").observe(apply_elapsed)
        charged = 0.0
        if self.charge_solve:
            charged += decision.configure_seconds
        if self.charge_apply:
            charged += apply_elapsed
        if charged > 0.0:
            return max(now, server_free) + charged
        return server_free

    def _rates_moved(self, lambda_q: float, lambda_u: float) -> bool:
        """True when either monitored rate drifted past the threshold."""
        assert self._configured_rates is not None  # caller checked
        last_q, last_u = self._configured_rates
        threshold = self.rate_change_threshold

        def moved(new: float, old: float) -> bool:
            if old <= 0:
                return new > 0
            return abs(new - old) / old > threshold

        return moved(lambda_q, last_q) or moved(lambda_u, last_u)

    def _beta_moved(
        self, current: dict[str, float], proposed: dict[str, float]
    ) -> bool:
        """True when any hyperparameter changed enough to be worth the
        re-application cost (index rebuild for index-based methods)."""
        for name, new in proposed.items():
            old = current.get(name, 0.0)
            if old <= 0:
                return True
            if abs(new - old) / old > self.beta_change_threshold:
                return True
        return False

    def _cache_key(self, source: int) -> CacheKey:
        """Cache identity of a query at the current configuration."""
        return make_key(
            source,
            self.algorithm.name,
            self.algorithm.get_hyperparameters(),
            VECTOR,
        )

    @staticmethod
    def _timed(fn: Callable[[], _T]) -> tuple[_T, float]:
        """(result, elapsed_wall_seconds) of ``fn()``."""
        started = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - started
