"""Cost models: the Table I closed forms with explicit hidden constants.

Step 1 of Quota (Section IV): express the mean query time t_q(beta) and
mean update time t_u(beta) of a base algorithm as a weighted sum of
per-sub-process *complexity factors*, with one measured constant tau per
sub-process:

    t(beta) = sum_i  tau_i * factor_i(beta)

The factor functions are the complexity expressions of Table I / Table
VI; the taus are gauged by :mod:`repro.core.calibration` from live
sub-process timings.  Keeping factors and constants separate is what
lets the *Quota-c* ablation (Figure 4) drop the constants (tau_i = 1)
while reusing the same machinery.

Note on TopPPR: Table I writes its walk term as r_max (r^b_max)^2 using
the original paper's rho-parametrization; this repository's TopPPR
implementation budgets walks FORA-style and reverse-pushes a fixed
candidate set, so its factors are 1/r_max, r_max, and 1/r^b_max.  The
calibrated constants absorb the difference; the tunable trade-off
(forward work vs walk work vs backward work) is identical.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping

import numpy as np
from numpy.typing import ArrayLike

from repro.ppr.base import DynamicPPRAlgorithm


class CostModel:
    """Base class: per-sub-process factors weighted by calibrated taus.

    Parameters
    ----------
    n, m:
        Node and edge counts of the target graph (complexity inputs).
    taus:
        Mapping sub-process name -> constant.  Missing names default to
        1.0 (the *Quota-c* / uncalibrated setting).
    """

    #: algorithm this model describes (matches DynamicPPRAlgorithm.name)
    algorithm_name: str = "base"
    #: hyperparameter names, in beta-vector order
    param_names: tuple[str, ...] = ()
    #: sub-processes contributing to the query cost
    query_subprocesses: tuple[str, ...] = ()
    #: sub-processes contributing to the update cost
    update_subprocesses: tuple[str, ...] = ()

    def __init__(
        self, n: int, m: int, taus: Mapping[str, float] | None = None
    ) -> None:
        if n < 1 or m < 0:
            raise ValueError("need n >= 1 and m >= 0")
        self.n = n
        self.m = max(m, 1)
        self.taus = dict(taus or {})

    # -- factors (overridden per algorithm) ------------------------------
    def query_factors(
        self, beta: Mapping[str, float], lambda_q: float, lambda_u: float
    ) -> dict[str, float]:
        """Complexity factor per query sub-process at ``beta``."""
        raise NotImplementedError

    def update_factors(self, beta: Mapping[str, float]) -> dict[str, float]:
        """Complexity factor per update sub-process at ``beta``."""
        raise NotImplementedError

    # -- evaluation -------------------------------------------------------
    def tau(self, name: str) -> float:
        return self.taus.get(name, 1.0)

    def query_time(
        self, beta: Mapping[str, float], lambda_q: float, lambda_u: float
    ) -> float:
        """Mean query time t_q(beta) under the given arrival rates."""
        factors = self.query_factors(beta, lambda_q, lambda_u)
        return sum(self.tau(name) * f for name, f in factors.items())

    def update_time(self, beta: Mapping[str, float]) -> float:
        """Mean update time t_u(beta)."""
        factors = self.update_factors(beta)
        return sum(self.tau(name) * f for name, f in factors.items())

    # -- helpers -----------------------------------------------------------
    def beta_dict(self, values: ArrayLike) -> dict[str, float]:
        """Convert a beta vector (param_names order) to a mapping."""
        vector = np.atleast_1d(np.asarray(values, dtype=np.float64))
        if vector.size != len(self.param_names):
            raise ValueError(
                f"expected {len(self.param_names)} hyperparameters "
                f"{self.param_names}, got {vector.size}"
            )
        return dict(zip(self.param_names, vector.tolist()))

    def without_constants(self) -> "CostModel":
        """The *Quota-c* ablation: same factors, all constants = 1."""
        return type(self)(self.n, self.m, taus=None)

    def with_taus(self, taus: Mapping[str, float]) -> "CostModel":
        """A copy carrying freshly calibrated constants."""
        return type(self)(self.n, self.m, taus=taus)

    def __repr__(self) -> str:
        taus = ", ".join(f"{k}={v:.3g}" for k, v in sorted(self.taus.items()))
        return f"{type(self).__name__}(n={self.n}, m={self.m}, taus=[{taus}])"


class AgendaCostModel(CostModel):
    """Table I, Agenda row (derivation in the paper's appendix B)."""

    algorithm_name = "Agenda"
    param_names = ("r_max", "r_max_b")
    query_subprocesses = ("Forward Push", "Lazy Index Update", "Random Walk")
    update_subprocesses = (
        "Reverse Push",
        "Index Inaccuracy Update",
        "Graph Update",
    )

    def query_factors(
        self, beta: Mapping[str, float], lambda_q: float, lambda_u: float
    ) -> dict[str, float]:
        r = beta["r_max"]
        r_b = beta["r_max_b"]
        ratio = lambda_u / lambda_q if lambda_q > 0 else 0.0
        return {
            "Forward Push": 1.0 / r,
            "Lazy Index Update": ratio * r * (self.n * r_b + 1.0),
            "Random Walk": r,
        }

    def update_factors(self, beta: Mapping[str, float]) -> dict[str, float]:
        # Graph Update is the constant adjacency/snapshot maintenance
        # (folded into tau_5 in the paper; kept separate here because
        # this implementation times it separately).
        return {
            "Reverse Push": 1.0 / beta["r_max_b"],
            "Index Inaccuracy Update": 1.0,
            "Graph Update": 1.0,
        }


class ForaCostModel(CostModel):
    """Table I, FORA row: index-free, O(1) updates."""

    algorithm_name = "FORA"
    param_names = ("r_max",)
    query_subprocesses = ("Forward Push", "Random Walk")
    update_subprocesses = ("Graph Update",)

    def query_factors(
        self, beta: Mapping[str, float], lambda_q: float, lambda_u: float
    ) -> dict[str, float]:
        r = beta["r_max"]
        return {"Forward Push": 1.0 / r, "Random Walk": r}

    def update_factors(self, beta: Mapping[str, float]) -> dict[str, float]:
        return {"Graph Update": 1.0}


class ForaPlusCostModel(ForaCostModel):
    """Table I, FORA+ row: update regenerates the O(m r_max K) index."""

    algorithm_name = "FORA+"
    update_subprocesses = ("Index Build",)

    def update_factors(self, beta: Mapping[str, float]) -> dict[str, float]:
        return {"Index Build": beta["r_max"]}


class ForaPlusIncrementalCostModel(ForaPlusCostModel):
    """FORA+ with incremental index maintenance (Table I, new row).

    The update still scales with the per-node walk budget (r_max K
    walks hang off each endpoint of the mutated edge, and the affected
    set grows with it), so the factor keeps the ``r_max`` shape of the
    rebuild row — but the calibrated tau absorbs the O(affected / m)
    advantage of resampling only the walks the edge actually carries,
    which is what lets the Quota optimizer pick this method under
    update-heavy traffic.
    """

    algorithm_name = "FORA+inc"
    update_subprocesses = ("Graph Update", "Index Update")

    def update_factors(self, beta: Mapping[str, float]) -> dict[str, float]:
        return {"Graph Update": 1.0, "Index Update": beta["r_max"]}


class ForaTopKCostModel(ForaCostModel):
    """Table I, FORA-TopK row: FORA-shaped costs, index-free updates."""

    algorithm_name = "FORA-TopK"


class SpeedPPRCostModel(CostModel):
    """Table I, SpeedPPR row.

    The paper's log(1/(r_max m)) sweep count is negative once
    r_max m > 1; we use the smooth surrogate log(1 + 1/(r_max m)),
    which matches it asymptotically for small r_max and decays to zero
    (no sweeps needed) instead of going negative.
    """

    algorithm_name = "SpeedPPR"
    param_names = ("r_max",)
    query_subprocesses = ("Power Iteration", "Random Walk")
    update_subprocesses = ("Graph Update",)

    def query_factors(
        self, beta: Mapping[str, float], lambda_q: float, lambda_u: float
    ) -> dict[str, float]:
        r = beta["r_max"]
        return {
            "Power Iteration": math.log(1.0 + 1.0 / (r * self.m)),
            "Random Walk": r,
        }

    def update_factors(self, beta: Mapping[str, float]) -> dict[str, float]:
        return {"Graph Update": 1.0}


class SpeedPPRPlusCostModel(SpeedPPRCostModel):
    """Table I, SpeedPPR+ row: index rebuild per update."""

    algorithm_name = "SpeedPPR+"
    update_subprocesses = ("Index Build",)

    def update_factors(self, beta: Mapping[str, float]) -> dict[str, float]:
        return {"Index Build": beta["r_max"]}


class SpeedPPRPlusIncrementalCostModel(SpeedPPRPlusCostModel):
    """SpeedPPR+ with incremental index maintenance — see
    :class:`ForaPlusIncrementalCostModel` for the factor rationale."""

    algorithm_name = "SpeedPPR+inc"
    update_subprocesses = ("Graph Update", "Index Update")

    def update_factors(self, beta: Mapping[str, float]) -> dict[str, float]:
        return {"Graph Update": 1.0, "Index Update": beta["r_max"]}


class TopPPRCostModel(CostModel):
    """Table I, TopPPR row (factors per this repo's implementation —
    see module docstring)."""

    algorithm_name = "TopPPR"
    param_names = ("r_max", "r_max_b")
    query_subprocesses = ("Forward Push", "Random Walk", "Reverse Push")
    update_subprocesses = ("Graph Update",)

    def query_factors(
        self, beta: Mapping[str, float], lambda_q: float, lambda_u: float
    ) -> dict[str, float]:
        return {
            "Forward Push": 1.0 / beta["r_max"],
            "Random Walk": beta["r_max"],
            "Reverse Push": 1.0 / beta["r_max_b"],
        }

    def update_factors(self, beta: Mapping[str, float]) -> dict[str, float]:
        return {"Graph Update": 1.0}


class CacheAwareCostModel(CostModel):
    """Effective-service-time wrapper over a base cost model.

    With a result cache in front of the algorithm, the mean query
    service time the queue actually experiences is the hit/miss
    mixture

        t_q_eff(beta) = h * t_hit + (1 - h) * t_q(beta)

    where ``h`` is the cache hit fraction and ``t_hit`` the (near
    constant) lookup cost.  Wrapping the base model with this class
    makes both the M/G/1 response model (Eq. 2) and the optimizer see
    the cache: utilization and queueing delay shrink with ``h``, so
    Quota can afford a *more* accurate beta at the same response-time
    target.

    ``h`` is supplied either as a static ``hit_fraction`` (for
    what-if analysis) or live via ``hit_fraction_fn`` — typically
    ``PPRCache.hit_rate``, the same quantity the ``cache.hit_rate``
    gauge tracks online.  The fraction is re-read on every evaluation,
    so periodic re-optimization naturally tracks cache warm-up.

    Everything else — parameter names, factors, calibration plumbing —
    delegates to the wrapped model, so the wrapper drops into
    :class:`~repro.core.quota.QuotaController` unchanged.
    """

    def __init__(
        self,
        inner: CostModel,
        hit_time_s: float = 0.0,
        hit_fraction_fn: Callable[[], float] | None = None,
        hit_fraction: float = 0.0,
    ) -> None:
        if hit_time_s < 0.0:
            raise ValueError(f"hit_time_s must be >= 0, got {hit_time_s}")
        if not 0.0 <= hit_fraction <= 1.0:
            raise ValueError(
                f"hit_fraction must be in [0, 1], got {hit_fraction}"
            )
        super().__init__(inner.n, inner.m, taus=inner.taus)
        self.inner = inner
        self.hit_time_s = hit_time_s
        self._hit_fraction_fn = hit_fraction_fn
        self._static_hit_fraction = hit_fraction
        # mirror the wrapped model's interface surface
        self.algorithm_name = inner.algorithm_name
        self.param_names = inner.param_names
        self.query_subprocesses = inner.query_subprocesses
        self.update_subprocesses = inner.update_subprocesses

    def hit_fraction(self) -> float:
        """Current hit fraction h, clamped into [0, 1]."""
        if self._hit_fraction_fn is not None:
            h = float(self._hit_fraction_fn())
        else:
            h = self._static_hit_fraction
        if not 0.0 <= h:  # guards NaN as well as negatives
            return 0.0
        return min(h, 1.0)

    # -- delegation -------------------------------------------------------
    def query_factors(
        self, beta: Mapping[str, float], lambda_q: float, lambda_u: float
    ) -> dict[str, float]:
        return self.inner.query_factors(beta, lambda_q, lambda_u)

    def update_factors(self, beta: Mapping[str, float]) -> dict[str, float]:
        return self.inner.update_factors(beta)

    def query_time(
        self, beta: Mapping[str, float], lambda_q: float, lambda_u: float
    ) -> float:
        h = self.hit_fraction()
        miss_time_s = self.inner.query_time(beta, lambda_q, lambda_u)
        return h * self.hit_time_s + (1.0 - h) * miss_time_s

    def update_time(self, beta: Mapping[str, float]) -> float:
        return self.inner.update_time(beta)

    def without_constants(self) -> "CacheAwareCostModel":
        return CacheAwareCostModel(
            self.inner.without_constants(),
            hit_time_s=self.hit_time_s,
            hit_fraction_fn=self._hit_fraction_fn,
            hit_fraction=self._static_hit_fraction,
        )

    def with_taus(self, taus: Mapping[str, float]) -> "CacheAwareCostModel":
        return CacheAwareCostModel(
            self.inner.with_taus(taus),
            hit_time_s=self.hit_time_s,
            hit_fraction_fn=self._hit_fraction_fn,
            hit_fraction=self._static_hit_fraction,
        )

    def __repr__(self) -> str:
        return (
            f"CacheAwareCostModel({self.inner!r}, "
            f"hit_time_s={self.hit_time_s:.3g}, "
            f"h={self.hit_fraction():.3f})"
        )


class BatchAwareCostModel(CostModel):
    """Effective-service-time wrapper for batched query dispatch.

    When the serving runtime coalesces B same-snapshot queries into one
    ``query_batch`` call, part of each query's work is *shared* across
    the batch (graph scans, frontier bookkeeping, lock traffic) and the
    rest stays per-query (the source-specific push/walk mass).  With
    ``sigma`` the shared fraction, the mean per-query service time the
    queue experiences becomes

        t_q_eff(beta) = t_q(beta) * ((1 - sigma) + sigma / B)

    which recovers t_q at B = 1 and approaches (1 - sigma) * t_q as
    batches grow — batching amortizes only the shared part, never the
    per-query part.  Feeding this to the M/G/1 response model lets the
    optimizer account for the dispatch window: utilization drops with
    B, so Quota can spend the head-room on a more accurate beta.

    ``B`` is supplied either as a static ``batch_size`` (what-if
    analysis) or live via ``batch_size_fn`` — typically the mean of
    the ``serving.batch_size`` histogram.  It is re-read per
    evaluation and clamped to >= 1, so an idle runtime (empty batches,
    NaN means) degrades to the unbatched model rather than a division
    blow-up.

    Update costs are untouched: updates flush between batches, one at
    a time, exactly as without batching.
    """

    def __init__(
        self,
        inner: CostModel,
        shared_fraction: float = 0.5,
        batch_size_fn: Callable[[], float] | None = None,
        batch_size: float = 1.0,
    ) -> None:
        if not 0.0 <= shared_fraction <= 1.0:
            raise ValueError(
                f"shared_fraction must be in [0, 1], got {shared_fraction}"
            )
        if batch_size < 1.0:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        super().__init__(inner.n, inner.m, taus=inner.taus)
        self.inner = inner
        self.shared_fraction = shared_fraction
        self._batch_size_fn = batch_size_fn
        self._static_batch_size = batch_size
        # mirror the wrapped model's interface surface
        self.algorithm_name = inner.algorithm_name
        self.param_names = inner.param_names
        self.query_subprocesses = inner.query_subprocesses
        self.update_subprocesses = inner.update_subprocesses

    def batch_size(self) -> float:
        """Current mean batch size B, clamped to >= 1."""
        if self._batch_size_fn is not None:
            b = float(self._batch_size_fn())
        else:
            b = self._static_batch_size
        if not b >= 1.0:  # guards NaN as well as sub-1 values
            return 1.0
        return b

    # -- delegation -------------------------------------------------------
    def query_factors(
        self, beta: Mapping[str, float], lambda_q: float, lambda_u: float
    ) -> dict[str, float]:
        return self.inner.query_factors(beta, lambda_q, lambda_u)

    def update_factors(self, beta: Mapping[str, float]) -> dict[str, float]:
        return self.inner.update_factors(beta)

    def query_time(
        self, beta: Mapping[str, float], lambda_q: float, lambda_u: float
    ) -> float:
        sigma = self.shared_fraction
        scale = (1.0 - sigma) + sigma / self.batch_size()
        return scale * self.inner.query_time(beta, lambda_q, lambda_u)

    def update_time(self, beta: Mapping[str, float]) -> float:
        return self.inner.update_time(beta)

    def without_constants(self) -> "BatchAwareCostModel":
        return BatchAwareCostModel(
            self.inner.without_constants(),
            shared_fraction=self.shared_fraction,
            batch_size_fn=self._batch_size_fn,
            batch_size=self._static_batch_size,
        )

    def with_taus(self, taus: Mapping[str, float]) -> "BatchAwareCostModel":
        return BatchAwareCostModel(
            self.inner.with_taus(taus),
            shared_fraction=self.shared_fraction,
            batch_size_fn=self._batch_size_fn,
            batch_size=self._static_batch_size,
        )

    def __repr__(self) -> str:
        return (
            f"BatchAwareCostModel({self.inner!r}, "
            f"shared_fraction={self.shared_fraction:.3g}, "
            f"B={self.batch_size():.2f})"
        )


COST_MODELS: dict[str, type[CostModel]] = {
    "Agenda": AgendaCostModel,
    "FORA": ForaCostModel,
    "FORA+": ForaPlusCostModel,
    "FORA+inc": ForaPlusIncrementalCostModel,
    "FORA-TopK": ForaTopKCostModel,
    "SpeedPPR": SpeedPPRCostModel,
    "SpeedPPR+": SpeedPPRPlusCostModel,
    "SpeedPPR+inc": SpeedPPRPlusIncrementalCostModel,
    "TopPPR": TopPPRCostModel,
}


def cost_model_for(
    algorithm: DynamicPPRAlgorithm, taus: Mapping[str, float] | None = None
) -> CostModel:
    """Instantiate the matching cost model for a live algorithm."""
    try:
        model_cls = COST_MODELS[algorithm.name]
    except KeyError:
        raise ValueError(
            f"no cost model registered for algorithm {algorithm.name!r}"
        ) from None
    view = algorithm.view
    return model_cls(view.n, view.m, taus=taus)
