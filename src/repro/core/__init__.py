"""Quota core: cost models, calibration, optimization, Seed, system.

The paper's primary contribution.  Typical wiring:

    from repro.core import QuotaController, QuotaSystem, calibrated_cost_model
    from repro.ppr import Agenda

    alg = Agenda(graph)
    model = calibrated_cost_model(alg)             # Step 1 (taus)
    controller = QuotaController(model)            # Steps 2-3
    system = QuotaSystem(alg, controller, epsilon_r=0.5)
    system.configure_static(lambda_q=10, lambda_u=20)
    result = system.process(workload)
    print(result.mean_query_response_time())
"""

from repro.core.calibration import calibrate_taus, calibrated_cost_model
from repro.core.cost_models import (
    COST_MODELS,
    AgendaCostModel,
    BatchAwareCostModel,
    CacheAwareCostModel,
    CostModel,
    ForaCostModel,
    ForaPlusCostModel,
    ForaPlusIncrementalCostModel,
    ForaTopKCostModel,
    SpeedPPRCostModel,
    SpeedPPRPlusCostModel,
    SpeedPPRPlusIncrementalCostModel,
    TopPPRCostModel,
    cost_model_for,
)
from repro.core.optimizer import (
    AugmentedLagrangianOptimizer,
    ConstrainedProblem,
    OptimizationResult,
)
from repro.core.quota import STABLE, UNSTABLE, QuotaController, QuotaDecision
from repro.core.seed import (
    PendingUpdate,
    SeedQueue,
    degree_adjustment_factor,
    source_excess,
)
from repro.core.system import QuotaSystem, RateEstimator

__all__ = [
    "COST_MODELS",
    "STABLE",
    "UNSTABLE",
    "AgendaCostModel",
    "AugmentedLagrangianOptimizer",
    "BatchAwareCostModel",
    "CacheAwareCostModel",
    "ConstrainedProblem",
    "CostModel",
    "ForaCostModel",
    "ForaPlusCostModel",
    "ForaPlusIncrementalCostModel",
    "ForaTopKCostModel",
    "OptimizationResult",
    "PendingUpdate",
    "QuotaController",
    "QuotaDecision",
    "QuotaSystem",
    "RateEstimator",
    "SeedQueue",
    "SpeedPPRCostModel",
    "SpeedPPRPlusCostModel",
    "SpeedPPRPlusIncrementalCostModel",
    "TopPPRCostModel",
    "calibrate_taus",
    "calibrated_cost_model",
    "cost_model_for",
    "degree_adjustment_factor",
    "source_excess",
]
