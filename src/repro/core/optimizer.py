"""Augmented Lagrangian constrained optimization (Algorithm 1).

Minimizes an objective S(beta) subject to inequality constraints
C_i(beta) <= 0 and box bounds, by solving a sequence of unconstrained
problems

    Phi^k(beta) = S(beta) + mu^k/2 sum_i max(0, C_i)^2
                          + sum_i v_i^k max(0, C_i)

with L-BFGS-B as the inner solver (the paper's choice [36]), growing the
penalty factor mu and updating the multipliers
v_i <- max(0, v_i + mu C_i(beta-hat)) between iterations.  Under the
conditions of Theorem 1 the iterates converge to a constrained global
minimum; Theorem 2 bounds the iteration count by O(1/sqrt(eps)).

The caller can supply multiple starting points; each runs the full
outer loop and the best feasible solution wins — cheap insurance
against local minima, since each evaluation is a closed-form cost
model, not a PPR run (the whole point of Table IV).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np
from numpy.typing import NDArray
from scipy import optimize

FloatArray = NDArray[np.float64]
Objective = Callable[[FloatArray], float]
Constraint = Callable[[FloatArray], float]


@dataclass(frozen=True, slots=True)
class ConstrainedProblem:
    """min f(x)  s.t.  C_i(x) <= 0,  lo_j <= x_j <= hi_j."""

    objective: Objective
    constraints: tuple[Constraint, ...]
    bounds: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        for lo, hi in self.bounds:
            if lo > hi:
                raise ValueError(f"empty bound interval ({lo}, {hi})")

    @property
    def dim(self) -> int:
        return len(self.bounds)

    def violation(self, x: FloatArray) -> float:
        """Largest constraint violation (0 when feasible)."""
        if not self.constraints:
            return 0.0
        return max(max(0.0, c(x)) for c in self.constraints)


@dataclass(slots=True)
class OptimizationResult:
    """Outcome of one Augmented Lagrangian run."""

    x: FloatArray
    value: float
    outer_iterations: int
    converged: bool
    constraint_violation: float
    history: list[float] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.constraint_violation <= 1e-6


class AugmentedLagrangianOptimizer:
    """Penalty/multiplier loop around scipy L-BFGS-B.

    Parameters
    ----------
    max_outer:
        Cap on outer (multiplier-update) iterations.
    mu0, mu_growth:
        Initial penalty factor and its growth per outer iteration
        (the ensmallen-style schedule [34]).
    tol:
        Outer-loop convergence: stop when both the solution movement
        and the constraint violation fall below ``tol``.
    inner_options:
        Extra options forwarded to L-BFGS-B.
    """

    def __init__(
        self,
        max_outer: int = 25,
        mu0: float = 10.0,
        mu_growth: float = 5.0,
        tol: float = 1e-9,
        inner_options: dict[str, Any] | None = None,
    ) -> None:
        if max_outer < 1:
            raise ValueError("max_outer must be >= 1")
        if mu0 <= 0 or mu_growth <= 1:
            raise ValueError("need mu0 > 0 and mu_growth > 1")
        self.max_outer = max_outer
        self.mu0 = mu0
        self.mu_growth = mu_growth
        self.tol = tol
        self.inner_options: dict[str, Any] = {
            "maxiter": 200,
            **(inner_options or {}),
        }

    # ------------------------------------------------------------------
    def minimize(
        self, problem: ConstrainedProblem, x0: FloatArray
    ) -> OptimizationResult:
        """Run the Augmented Lagrangian loop from one starting point."""
        x: FloatArray = np.clip(
            np.asarray(x0, dtype=np.float64),
            [lo for lo, _ in problem.bounds],
            [hi for _, hi in problem.bounds],
        )
        mu = self.mu0
        multipliers = np.zeros(len(problem.constraints))
        history: list[float] = []
        converged = False

        for outer in range(1, self.max_outer + 1):
            phi = self._penalized(problem, mu, multipliers)
            inner = optimize.minimize(
                phi,
                x,
                method="L-BFGS-B",
                bounds=problem.bounds,
                options=self.inner_options,
            )
            x_new: FloatArray = np.asarray(inner.x, dtype=np.float64)
            history.append(float(problem.objective(x_new)))
            violation = problem.violation(x_new)
            moved = float(np.linalg.norm(x_new - x))
            # multiplier update: v <- max(0, v + mu * C(x-hat))
            for i, constraint in enumerate(problem.constraints):
                multipliers[i] = max(
                    0.0, multipliers[i] + mu * constraint(x_new)
                )
            x = x_new
            if violation <= self.tol and moved <= self.tol and outer > 1:
                converged = True
                break
            mu *= self.mu_growth

        return OptimizationResult(
            x=x,
            value=float(problem.objective(x)),
            outer_iterations=outer,
            converged=converged,
            constraint_violation=problem.violation(x),
            history=history,
        )

    def minimize_multistart(
        self,
        problem: ConstrainedProblem,
        starts: Sequence[FloatArray],
    ) -> OptimizationResult:
        """Run from every start; return the best feasible result.

        Falls back to the least-infeasible result if no start reaches
        feasibility (e.g. the stability constraint cannot be met — the
        unstable regime, which the caller handles separately).
        """
        if not starts:
            raise ValueError("need at least one starting point")
        results = [self.minimize(problem, x0) for x0 in starts]
        feasible = [r for r in results if r.feasible]
        if feasible:
            return min(feasible, key=lambda r: r.value)
        return min(results, key=lambda r: r.constraint_violation)

    # ------------------------------------------------------------------
    def _penalized(
        self,
        problem: ConstrainedProblem,
        mu: float,
        multipliers: FloatArray,
    ) -> Objective:
        def phi(x: FloatArray) -> float:
            value = problem.objective(x)
            for i, constraint in enumerate(problem.constraints):
                excess = max(0.0, constraint(x))
                value += 0.5 * mu * excess * excess
                value += multipliers[i] * excess
            return value

        return phi
