"""Seed: FCFS-relaxing queue reordering with a bounded error budget.

Section VI: a query may overtake earlier-arrived, still-pending updates
as long as the *ordering inaccuracy* this introduces stays below the
threshold epsilon_r.  The per-update inaccuracy increment (Lemma 2) is

    (e(G, s) - alpha) (1 - alpha (1 - alpha))
    -----------------------------------------
            alpha^2  d_out(G', u)

with  e(G, s) = (d - alpha (1 - alpha) (d - 1)) / d,  d = d_out(G, s),
where s is the query source, u the tail of the pending edge update, and
G' the graph *after* that update.  Summing the increments over the
pending queue bounds |pi(G_{i+k}, s, t) - pi(G_i, s, t)| for every t.

:class:`SeedQueue` tracks the pending updates together with each one's
degree-dependent factor (using a pending-degree overlay so d_out(G', u)
is the post-update degree even though the graph has not been mutated
yet), evaluates the Lemma 2 bound per query source, and flushes when
the budget is exceeded — Algorithm 2's inner loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Protocol

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate


class UpdateApplier(Protocol):
    """Anything that can execute one edge arrival.

    Structurally satisfied by every
    :class:`~repro.ppr.base.DynamicPPRAlgorithm` (graph + index
    maintenance) and by the lightweight graph-only adapters the
    queueing simulators use for modeled replays.
    """

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate: ...


def degree_adjustment_factor(alpha: float, d_out_after: int) -> float:
    """The source-independent part of the Lemma 2 increment:
    (1 - alpha(1 - alpha)) / (alpha^2 * d_out(G', u))."""
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    d = max(d_out_after, 1)
    return (1.0 - alpha * (1.0 - alpha)) / (alpha * alpha * d)


def source_excess(alpha: float, d_out_source: int) -> float:
    """e(G, s) - alpha of Lemma 2 (in [0, 1 - alpha])."""
    d = max(d_out_source, 1)
    e = (d - alpha * (1.0 - alpha) * (d - 1)) / d
    return max(e - alpha, 0.0)


@dataclass(frozen=True, slots=True)
class PendingUpdate:
    """A deferred update plus its precomputed Lemma 2 factor and arrival.

    ``delta`` records the out-degree change (+1 insert / -1 delete) the
    update will cause at its tail node — needed to unwind the pending
    degree overlay when updates are flushed one at a time.
    """

    update: EdgeUpdate
    arrival: float
    factor: float
    delta: int = 0


class SeedQueue:
    """The pending-update queue U^p of Algorithm 2.

    Parameters
    ----------
    graph:
        The live graph (read-only here; mutations happen on flush via
        the owning algorithm).
    alpha:
        Teleport probability (enters the Lemma 2 bound).
    epsilon_r:
        Reorder error threshold.  0 disables reordering entirely:
        :meth:`should_flush` is then always True, restoring exact FCFS.
    """

    def __init__(
        self, graph: DynamicGraph, alpha: float, epsilon_r: float
    ) -> None:
        if epsilon_r < 0:
            raise ValueError("epsilon_r must be non-negative")
        self.graph = graph
        self.alpha = alpha
        self.epsilon_r = epsilon_r
        self._pending: deque[PendingUpdate] = deque()
        # net out-degree delta per node from pending (unapplied) updates
        self._degree_delta: dict[int, int] = {}
        # (u, v) pairs toggled an *odd* number of times by the pending
        # queue — O(1) pending-existence lookups regardless of depth
        self._parity: set[tuple[int, int]] = set()
        # running sum of the per-item Lemma 2 factors (reset to an exact
        # 0.0 whenever the queue empties, so float drift cannot build up
        # across flush cycles)
        self._factor_sum = 0.0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> list[PendingUpdate]:
        return list(self._pending)

    def peek(self) -> PendingUpdate | None:
        """The oldest pending update, or None — O(1), no copy."""
        return self._pending[0] if self._pending else None

    def _pending_out_degree(self, node: int) -> int:
        base = self.graph.out_degree(node) if self.graph.has_node(node) else 0
        return base + self._degree_delta.get(node, 0)

    def _edge_exists_pending(self, u: int, v: int) -> bool:
        """Edge existence after the pending queue would be applied.

        The parity set makes this O(1); the seed implementation scanned
        the whole pending list on every :meth:`add`, turning sustained
        overload — exactly the regime Seed targets — into O(n^2) queue
        growth.
        """
        return self.graph.has_edge(u, v) ^ ((u, v) in self._parity)

    def _toggle_parity(self, u: int, v: int) -> None:
        key = (u, v)
        if key in self._parity:
            self._parity.remove(key)
        else:
            self._parity.add(key)

    def _pop_head(self) -> PendingUpdate:
        """Remove the head item, unwinding overlay/parity bookkeeping.

        Only called after the head's update has been applied (or is
        being deliberately discarded): popping keeps every derived
        structure consistent with the *remaining* pending suffix.
        """
        item = self._pending.popleft()
        node = item.update.u
        remaining = self._degree_delta.get(node, 0) - item.delta
        if remaining:
            self._degree_delta[node] = remaining
        else:
            self._degree_delta.pop(node, None)
        self._toggle_parity(item.update.u, item.update.v)
        self._factor_sum -= item.factor
        if not self._pending:
            self._factor_sum = 0.0
        return item

    def add(self, update: EdgeUpdate, arrival: float = 0.0) -> PendingUpdate:
        """Defer an update; precompute its Lemma 2 factor.

        The factor uses d_out(G', u) where G' is the graph state after
        the pending prefix plus this update — tracked with the degree
        overlay, never by mutating the live graph.  Amortized O(1) in
        the pending-queue length.
        """
        u, v = update.u, update.v
        inserting = not self._edge_exists_pending(u, v)
        delta = 1 if inserting else -1
        d_after = max(self._pending_out_degree(u) + delta, 0)
        self._degree_delta[u] = self._degree_delta.get(u, 0) + delta
        self._toggle_parity(u, v)
        item = PendingUpdate(
            update,
            arrival,
            degree_adjustment_factor(self.alpha, d_after),
            delta,
        )
        self._pending.append(item)
        self._factor_sum += item.factor
        return item

    def error_bound(self, source: int) -> float:
        """e_sum(s): the accumulated ordering-inaccuracy bound (Alg. 2
        line 10) for a query from ``source`` over the stale graph."""
        if not self._pending:
            return 0.0
        excess = source_excess(self.alpha, self._pending_out_degree(source))
        return excess * self._factor_sum

    def should_flush(self, source: int) -> bool:
        """True when the query must wait for the pending updates."""
        # exact-zero sentinel: epsilon_r = 0 is the documented "disable
        # reordering" switch, set verbatim by callers — never computed.
        if self.epsilon_r == 0.0:  # reprolint: disable=R2
            return len(self._pending) > 0
        return self.error_bound(source) > self.epsilon_r

    def flush(
        self, algorithm: UpdateApplier
    ) -> list[PendingUpdate]:
        """Execute every pending update through ``algorithm`` (line 12).

        Exception-safe: each update is applied *before* it is popped,
        so a failure mid-loop surfaces (propagates) with the applied
        prefix removed, the failing update still at the head, and the
        degree overlay/parity set consistent with the remaining suffix.
        The seed implementation cleared the queue first; an exception
        then silently dropped every remaining update and desynced the
        overlay from the graph.
        """
        flushed: list[PendingUpdate] = []
        while self._pending:
            item = self._pending[0]
            algorithm.apply_update(item.update)  # may raise; see above
            self._pop_head()
            flushed.append(item)
        return flushed

    def flush_one(
        self, algorithm: UpdateApplier
    ) -> PendingUpdate | None:
        """Execute only the oldest pending update (idle-time draining).

        Deferral exists to let queries overtake updates when the server
        is contended; while the server idles, applying pending updates
        costs queries nothing and keeps the graph fresh.  Apply-then-pop
        like :meth:`flush`: a failed update stays queued.
        """
        if not self._pending:
            return None
        item = self._pending[0]
        algorithm.apply_update(item.update)  # may raise; item stays queued
        self._pop_head()
        return item

    def discard_one(self) -> PendingUpdate | None:
        """Drop the head update *without* applying it.

        Fault-recovery hook for the serving runtime: after
        :meth:`flush` / :meth:`flush_one` surfaces a failing update, the
        caller can discard it (keeping overlay/parity consistent with
        the remaining suffix) and continue serving in degraded mode.
        """
        if not self._pending:
            return None
        return self._pop_head()
