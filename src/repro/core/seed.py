"""Seed: FCFS-relaxing queue reordering with a bounded error budget.

Section VI: a query may overtake earlier-arrived, still-pending updates
as long as the *ordering inaccuracy* this introduces stays below the
threshold epsilon_r.  The per-update inaccuracy increment (Lemma 2) is

    (e(G, s) - alpha) (1 - alpha (1 - alpha))
    -----------------------------------------
            alpha^2  d_out(G', u)

with  e(G, s) = (d - alpha (1 - alpha) (d - 1)) / d,  d = d_out(G, s),
where s is the query source, u the tail of the pending edge update, and
G' the graph *after* that update.  Summing the increments over the
pending queue bounds |pi(G_{i+k}, s, t) - pi(G_i, s, t)| for every t.

:class:`SeedQueue` tracks the pending updates together with each one's
degree-dependent factor (using a pending-degree overlay so d_out(G', u)
is the post-update degree even though the graph has not been mutated
yet), evaluates the Lemma 2 bound per query source, and flushes when
the budget is exceeded — Algorithm 2's inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.ppr.base import DynamicPPRAlgorithm


def degree_adjustment_factor(alpha: float, d_out_after: int) -> float:
    """The source-independent part of the Lemma 2 increment:
    (1 - alpha(1 - alpha)) / (alpha^2 * d_out(G', u))."""
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    d = max(d_out_after, 1)
    return (1.0 - alpha * (1.0 - alpha)) / (alpha * alpha * d)


def source_excess(alpha: float, d_out_source: int) -> float:
    """e(G, s) - alpha of Lemma 2 (in [0, 1 - alpha])."""
    d = max(d_out_source, 1)
    e = (d - alpha * (1.0 - alpha) * (d - 1)) / d
    return max(e - alpha, 0.0)


@dataclass(frozen=True, slots=True)
class PendingUpdate:
    """A deferred update plus its precomputed Lemma 2 factor and arrival.

    ``delta`` records the out-degree change (+1 insert / -1 delete) the
    update will cause at its tail node — needed to unwind the pending
    degree overlay when updates are flushed one at a time.
    """

    update: EdgeUpdate
    arrival: float
    factor: float
    delta: int = 0


class SeedQueue:
    """The pending-update queue U^p of Algorithm 2.

    Parameters
    ----------
    graph:
        The live graph (read-only here; mutations happen on flush via
        the owning algorithm).
    alpha:
        Teleport probability (enters the Lemma 2 bound).
    epsilon_r:
        Reorder error threshold.  0 disables reordering entirely:
        :meth:`should_flush` is then always True, restoring exact FCFS.
    """

    def __init__(
        self, graph: DynamicGraph, alpha: float, epsilon_r: float
    ) -> None:
        if epsilon_r < 0:
            raise ValueError("epsilon_r must be non-negative")
        self.graph = graph
        self.alpha = alpha
        self.epsilon_r = epsilon_r
        self._pending: list[PendingUpdate] = []
        # net out-degree delta per node from pending (unapplied) updates
        self._degree_delta: dict[int, int] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> list[PendingUpdate]:
        return list(self._pending)

    def _pending_out_degree(self, node: int) -> int:
        base = self.graph.out_degree(node) if self.graph.has_node(node) else 0
        return base + self._degree_delta.get(node, 0)

    def _edge_exists_pending(self, u: int, v: int) -> bool:
        """Edge existence after the pending queue would be applied."""
        exists = self.graph.has_edge(u, v)
        for item in self._pending:
            if (item.update.u, item.update.v) == (u, v):
                exists = not exists
        return exists

    def add(self, update: EdgeUpdate, arrival: float = 0.0) -> PendingUpdate:
        """Defer an update; precompute its Lemma 2 factor.

        The factor uses d_out(G', u) where G' is the graph state after
        the pending prefix plus this update — tracked with the degree
        overlay, never by mutating the live graph.
        """
        u, v = update.u, update.v
        inserting = not self._edge_exists_pending(u, v)
        delta = 1 if inserting else -1
        d_after = max(self._pending_out_degree(u) + delta, 0)
        self._degree_delta[u] = self._degree_delta.get(u, 0) + delta
        item = PendingUpdate(
            update,
            arrival,
            degree_adjustment_factor(self.alpha, d_after),
            delta,
        )
        self._pending.append(item)
        return item

    def error_bound(self, source: int) -> float:
        """e_sum(s): the accumulated ordering-inaccuracy bound (Alg. 2
        line 10) for a query from ``source`` over the stale graph."""
        if not self._pending:
            return 0.0
        excess = source_excess(self.alpha, self._pending_out_degree(source))
        return excess * sum(item.factor for item in self._pending)

    def should_flush(self, source: int) -> bool:
        """True when the query must wait for the pending updates."""
        # exact-zero sentinel: epsilon_r = 0 is the documented "disable
        # reordering" switch, set verbatim by callers — never computed.
        if self.epsilon_r == 0.0:  # reprolint: disable=R2
            return len(self._pending) > 0
        return self.error_bound(source) > self.epsilon_r

    def flush(
        self, algorithm: DynamicPPRAlgorithm
    ) -> list[PendingUpdate]:
        """Execute every pending update through ``algorithm`` (line 12)."""
        flushed = self._pending
        self._pending = []
        self._degree_delta = {}
        for item in flushed:
            algorithm.apply_update(item.update)
        return flushed

    def flush_one(
        self, algorithm: DynamicPPRAlgorithm
    ) -> PendingUpdate | None:
        """Execute only the oldest pending update (idle-time draining).

        Deferral exists to let queries overtake updates when the server
        is contended; while the server idles, applying pending updates
        costs queries nothing and keeps the graph fresh.
        """
        if not self._pending:
            return None
        item = self._pending.pop(0)
        node = item.update.u
        remaining = self._degree_delta.get(node, 0) - item.delta
        if remaining:
            self._degree_delta[node] = remaining
        else:
            self._degree_delta.pop(node, None)
        algorithm.apply_update(item.update)
        return item
