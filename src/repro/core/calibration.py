"""Tau calibration: gauging the hidden constants from live timings.

Section VIII-C: "the values of tau are easy to be gauged as we can
independently time the actual sub-process costs and infer the constants
fairly precisely."

The procedure probes the live algorithm at a handful of hyperparameter
settings spread around the current one, running a short workload (a few
queries, each preceded by a configurable number of updates) at each and
reading the per-sub-process mean wall times from the algorithm's
timers.  Because the cost model is linear in its per-sub-process
factors,

    measured_i(beta) ~= tau_i * factor_i(beta),

each tau is recovered by a one-parameter least-squares fit through the
origin over the probe points:

    tau_i = sum_p factor_i(beta_p) * measured_i(beta_p)
            / sum_p factor_i(beta_p)^2.

Multi-point probing matters in this pure-Python reproduction: the
capped walk count K makes some sub-process costs deviate from their
asymptotic factors far from the default setting, and fitting across a
spread of betas keeps the model honest over the whole search region.
This anchors the model to the actual machine, graph, and implementation
— the information the theoretical complexity expressions hide, and
exactly what the *Quota-c* ablation throws away.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_models import CostModel, cost_model_for
from repro.graph.updates import EdgeUpdate
from repro.obs import get_metrics
from repro.ppr.base import DynamicPPRAlgorithm, clip_unit

#: default multiplicative spread of probe points around the current beta
DEFAULT_PROBE_SCALES = (1.0, 0.2, 5.0)


def calibrate_taus(
    algorithm: DynamicPPRAlgorithm,
    model: CostModel | None = None,
    num_queries: int = 5,
    updates_per_query: int = 1,
    probe_scales: tuple[float, ...] = DEFAULT_PROBE_SCALES,
    rng: np.random.Generator | int | None = None,
) -> dict[str, float]:
    """Measure the tau constants of ``algorithm`` on its current graph.

    Parameters
    ----------
    algorithm:
        The live algorithm instance.  Probing runs on a scratch copy,
        so the production graph, index, and hyperparameters are
        untouched.
    model:
        Cost model supplying the factor expressions; defaults to the
        registered model for the algorithm.
    num_queries, updates_per_query:
        Probe workload size per probe point.  The update:query ratio
        matters only for Agenda's amortized Lazy Index Update factor,
        which is normalized by the same ratio below.
    probe_scales:
        Each scale multiplies every hyperparameter of the current
        setting (clipped into (0, 1)) to form one probe point.
    rng:
        Randomness for probe sources/endpoints.

    Returns
    -------
    dict
        Sub-process name -> tau (seconds per unit factor).
    """
    if num_queries < 1 or updates_per_query < 0:
        raise ValueError("need num_queries >= 1 and updates_per_query >= 0")
    if not probe_scales:
        raise ValueError("need at least one probe scale")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    model = model or cost_model_for(algorithm)

    base_beta = algorithm.get_hyperparameters()
    # Agenda's lazy factor is per-query and scales with lambda_u/lambda_q;
    # every probe realizes exactly updates_per_query updates per query.
    lambda_q, lambda_u = 1.0, float(updates_per_query)

    # accumulate least-squares terms per sub-process
    num_fm: dict[str, float] = {}
    den_ff: dict[str, float] = {}

    metrics = get_metrics()
    for scale in probe_scales:
        probe = _scratch_copy(algorithm)
        beta = {
            name: clip_unit(value * scale) for name, value in base_beta.items()
        }
        probe.set_hyperparameters(**beta)
        probe.timers.reset()
        nodes = probe.view.nodes
        num_updates = 0
        # timed per probe point so reports can attribute calibration
        # overhead separately from serving (the paper's Table IV split)
        with metrics.time("calibration.probe"):
            for _ in range(num_queries):
                for _ in range(updates_per_query):
                    u, v = rng.choice(nodes, size=2, replace=False)
                    probe.apply_update(EdgeUpdate(int(u), int(v)))
                    num_updates += 1
                probe.query(int(rng.choice(nodes)))

        samples: list[tuple[str, float, float]] = []
        for name, factor in model.query_factors(
            beta, lambda_q, lambda_u
        ).items():
            samples.append((name, factor, probe.timers.total(name) / num_queries))
        if num_updates:
            for name, factor in model.update_factors(beta).items():
                samples.append(
                    (name, factor, probe.timers.total(name) / num_updates)
                )
        for name, factor, measured in samples:
            if factor <= 0:
                continue
            num_fm[name] = num_fm.get(name, 0.0) + factor * measured
            den_ff[name] = den_ff.get(name, 0.0) + factor * factor

    metrics.counter("calibration.runs").inc()
    return {
        name: (num_fm[name] / den_ff[name] if den_ff[name] > 0 else 0.0)
        for name in num_fm
    }


def calibrated_cost_model(
    algorithm: DynamicPPRAlgorithm,
    num_queries: int = 5,
    updates_per_query: int = 1,
    probe_scales: tuple[float, ...] = DEFAULT_PROBE_SCALES,
    rng: np.random.Generator | int | None = None,
) -> CostModel:
    """Convenience: build the registered model and calibrate it."""
    model = cost_model_for(algorithm)
    taus = calibrate_taus(
        algorithm,
        model,
        num_queries=num_queries,
        updates_per_query=updates_per_query,
        probe_scales=probe_scales,
        rng=rng,
    )
    return model.with_taus(taus)


def _scratch_copy(algorithm: DynamicPPRAlgorithm) -> DynamicPPRAlgorithm:
    """A same-configuration instance on a copy of the graph."""
    clone = type(algorithm)(algorithm.graph.copy(), algorithm.params)
    # carry over the cost-relevant tuning knobs that are not part of the
    # beta vector (top-k size, accumulation rounds, laziness threshold)
    for attr in ("k", "rounds", "theta", "candidate_factor", "max_rounds"):
        if hasattr(algorithm, attr):
            setattr(clone, attr, getattr(algorithm, attr))
    clone.set_hyperparameters(**algorithm.get_hyperparameters())
    return clone
