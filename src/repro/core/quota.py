"""The Quota controller: workload-aware hyperparameter configuration.

Given a calibrated cost model and the current arrival rates, the
controller materializes the two-regime objective of Section IV-A —

* **stable** (some beta satisfies rho(beta) < 1): minimize the Eq. 2
  response-time estimate R_q(beta) subject to the stability constraint,
* **unstable** (no beta can stabilize the queue): minimize the traffic
  intensity rho(beta) itself (Lemma 1),

— and solves it with the Augmented Lagrangian optimizer.  The search
runs in log10(beta) space (the thresholds span many decades) from a
small lattice of starting points; every evaluation is a closed-form
model call, which is why configuration costs milliseconds while Grid /
Random / Bayesian search cost full PPR runs (Table IV).
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.core.cost_models import CostModel
from repro.core.optimizer import (
    AugmentedLagrangianOptimizer,
    ConstrainedProblem,
    OptimizationResult,
)

FloatArray = NDArray[np.float64]

#: log10 search box for every threshold hyperparameter in (0, 1)
LOG_LO = -8.0
LOG_HI = -1e-6

STABLE = "stable"
UNSTABLE = "unstable"


@dataclass(slots=True)
class QuotaDecision:
    """Outcome of one configuration pass."""

    beta: dict[str, float]
    regime: str
    predicted_response_time: float
    traffic_intensity: float
    configure_seconds: float
    optimizer_result: OptimizationResult

    @property
    def is_stable(self) -> bool:
        return self.regime == STABLE


class QuotaController:
    """Maps (lambda_q, lambda_u) to the response-time-optimal beta.

    Parameters
    ----------
    cost_model:
        Calibrated (or deliberately uncalibrated, for the Quota-c
        ablation) cost model of the deployed base algorithm.
    cv_q, cv_u:
        Service-time coefficients of variation plugged into Eq. 2.
        The paper fixes these rather than tuning them.
    optimizer:
        Augmented Lagrangian instance; a default is built if omitted.
    extra_starts:
        Additional beta dictionaries to seed the multi-start search
        (e.g. the algorithm's paper-default setting).
    response_model:
        Which stable-regime response-time estimate to optimize — the
        paper notes other queueing estimates "are also applicable":
        ``"pk"`` (Eq. 2, Pollaczek–Khinchine style; default),
        ``"mm1"`` (the plain M/M/1 form), or
        ``"heavy-traffic"`` (the Kingman G/G/1 diffusion form).
    """

    RESPONSE_MODELS = ("pk", "mm1", "heavy-traffic")

    def __init__(
        self,
        cost_model: CostModel,
        cv_q: float = 1.0,
        cv_u: float = 1.0,
        optimizer: AugmentedLagrangianOptimizer | None = None,
        extra_starts: list[dict[str, float]] | None = None,
        stability_margin: float = 1e-6,
        response_model: str = "pk",
    ) -> None:
        if response_model not in self.RESPONSE_MODELS:
            raise ValueError(
                f"response_model must be one of {self.RESPONSE_MODELS}, "
                f"got {response_model!r}"
            )
        self.cost_model = cost_model
        self.cv_q = cv_q
        self.cv_u = cv_u
        self.optimizer = optimizer or AugmentedLagrangianOptimizer()
        self.extra_starts = list(extra_starts or [])
        self.stability_margin = stability_margin
        self.response_model = response_model

    # ------------------------------------------------------------------
    # Model plumbing (log-space)
    # ------------------------------------------------------------------
    @property
    def param_names(self) -> tuple[str, ...]:
        return self.cost_model.param_names

    def _beta_of(self, x: FloatArray) -> dict[str, float]:
        return self.cost_model.beta_dict(np.power(10.0, x))

    def _rho(self, x: FloatArray, lambda_q: float, lambda_u: float) -> float:
        beta = self._beta_of(x)
        t_q = self.cost_model.query_time(beta, lambda_q, lambda_u)
        t_u = self.cost_model.update_time(beta)
        return lambda_q * t_q + lambda_u * t_u

    def _response_time(
        self, x: FloatArray, lambda_q: float, lambda_u: float
    ) -> float:
        """Stable-regime response estimate with a finite continuation.

        L-BFGS-B cannot digest inf, so for rho >= 1 the denominator is
        floored; the stability constraint (not this continuation) is
        what steers the search back into the feasible region.
        """
        beta = self._beta_of(x)
        t_q = self.cost_model.query_time(beta, lambda_q, lambda_u)
        t_u = self.cost_model.update_time(beta)
        rho = lambda_q * t_q + lambda_u * t_u
        slack = max(1.0 - rho, 1e-12)
        if self.response_model == "pk":
            numerator = lambda_u * t_u**2 * (1.0 + self.cv_u**2) + (
                lambda_q * t_q**2 * (1.0 + self.cv_q**2)
            )
            return numerator / (2.0 * slack) + t_q
        total_rate = lambda_q + lambda_u
        if total_rate <= 0:
            return t_q
        mean_service = rho / total_rate
        if self.response_model == "mm1":
            return rho * mean_service / slack + t_q
        # heavy-traffic (Kingman G/G/1); Poisson arrivals -> C_a^2 = 1
        if mean_service <= 0:
            return t_q
        second = (
            lambda_q * t_q**2 * (1.0 + self.cv_q**2)
            + lambda_u * t_u**2 * (1.0 + self.cv_u**2)
        ) / total_rate
        cv_service_sq = max(second / mean_service**2 - 1.0, 0.0)
        return (
            rho / slack * (1.0 + cv_service_sq) / 2.0 * mean_service + t_q
        )

    def predicted_times(
        self, beta: dict[str, float], lambda_q: float, lambda_u: float
    ) -> tuple[float, float]:
        """(t_q, t_u) the model predicts at ``beta``."""
        return (
            self.cost_model.query_time(beta, lambda_q, lambda_u),
            self.cost_model.update_time(beta),
        )

    # ------------------------------------------------------------------
    def _to_log(self, beta: dict[str, float]) -> FloatArray:
        values = [beta[name] for name in self.param_names]
        clipped = np.clip(
            np.asarray(values, dtype=np.float64), 1e-12, 1.0 - 1e-12
        )
        return np.asarray(np.log10(clipped), dtype=np.float64)

    def _starting_points(
        self, warm_start: dict[str, float] | None, quick: bool
    ) -> list[FloatArray]:
        """Log-space lattice plus warm/caller-supplied starts.

        ``quick`` shrinks the lattice for the online re-optimization
        loop, where a warm start from the previous decision makes the
        full multistart sweep unnecessary (and its cost — charged to
        the virtual server clock — unwelcome).
        """
        lattice_axis = (-5.0, -1.5) if quick else (-6.0, -4.0, -2.0, -0.7)
        dim = len(self.param_names)
        starts: list[FloatArray] = [
            np.array(point, dtype=np.float64)
            for point in itertools.product(lattice_axis, repeat=dim)
        ]
        for beta in self.extra_starts:
            starts.append(self._to_log(beta))
        if warm_start is not None:
            starts.append(self._to_log(warm_start))
        return starts

    def configure(
        self,
        lambda_q: float,
        lambda_u: float,
        warm_start: dict[str, float] | None = None,
        quick: bool = False,
    ) -> QuotaDecision:
        """Algorithm 1: pick the regime, optimize, return beta*."""
        if lambda_q <= 0:
            raise ValueError("lambda_q must be positive")
        if lambda_u < 0:
            raise ValueError("lambda_u must be non-negative")
        started = time.perf_counter()
        bounds = tuple((LOG_LO, LOG_HI) for _ in self.param_names)
        starts = self._starting_points(warm_start, quick)

        # Step A: can any beta stabilize the queue?  (line 5 of Alg. 1)
        rho_problem = ConstrainedProblem(
            objective=lambda x: self._rho(x, lambda_q, lambda_u),
            constraints=(),
            bounds=bounds,
        )
        rho_result = self.optimizer.minimize_multistart(rho_problem, starts)

        if rho_result.value >= 1.0:
            # Unstable regime: minimizing rho is the Lemma 1 objective.
            decision_x = rho_result.x
            regime = UNSTABLE
            final = rho_result
        else:
            # Stable regime: Eq. 3 with the stability constraint.
            problem = ConstrainedProblem(
                objective=lambda x: self._response_time(
                    x, lambda_q, lambda_u
                ),
                constraints=(
                    lambda x: self._rho(x, lambda_q, lambda_u)
                    - 1.0
                    + self.stability_margin,
                ),
                bounds=bounds,
            )
            # warm-start from the rho minimizer too: always feasible
            final = self.optimizer.minimize_multistart(
                problem, starts + [rho_result.x]
            )
            decision_x = final.x
            regime = STABLE

        beta = self._beta_of(decision_x)
        rho = self._rho(decision_x, lambda_q, lambda_u)
        predicted = (
            self._response_time(decision_x, lambda_q, lambda_u)
            if regime == STABLE
            else math.inf
        )
        return QuotaDecision(
            beta=beta,
            regime=regime,
            predicted_response_time=predicted,
            traffic_intensity=rho,
            configure_seconds=time.perf_counter() - started,
            optimizer_result=final,
        )
