"""Staleness-bounded PPR result cache with update-driven invalidation.

Repeated hot sources dominate real PPR traffic (power-law query
popularity); this package makes them cost ~0 while keeping every
served answer within a provable distance of a fresh recompute:

* :mod:`~repro.cache.store` — the size-bounded LRU/LFU-hybrid
  :class:`PPRCache`, keyed by (source, algorithm, beta-signature,
  result kind), carrying per-entry graph version and accumulated
  staleness.
* :mod:`~repro.cache.staleness` — :class:`StalenessTracker`, charging
  each live entry a safety-scaled Lemma-2 increment per applied edge
  update and evicting past the ``epsilon_c`` budget;
  :class:`ChargingApplier` for the Seed flush paths;
  :class:`ReplayCache` for the virtual-time simulators.
* :mod:`~repro.cache.policy` — admission/expiry policies
  (:class:`AlwaysAdmit`, :class:`AdmitOnSecondHit`, :class:`TTLPolicy`)
  behind the :class:`CachePolicy` protocol.

Layering: this package sits beside :mod:`repro.ppr` (it imports only
``repro.graph`` and ``repro.obs``), so :mod:`repro.core`,
:mod:`repro.queueing` and :mod:`repro.serving` may all depend on it.
See docs/DEVELOPMENT.md ("The result cache") for the key/staleness/
invalidation contract and the ``epsilon_c`` vs ``epsilon_r``
distinction.
"""

from repro.cache.policy import (
    AdmitOnSecondHit,
    AlwaysAdmit,
    CachePolicy,
    TTLPolicy,
)
from repro.cache.staleness import (
    ChargingApplier,
    ReplayCache,
    StalenessTracker,
    lemma2_increment,
)
from repro.cache.store import (
    TOPK,
    VECTOR,
    CacheEntry,
    CacheKey,
    PPRCache,
    beta_signature,
    make_key,
    pi_from_topk,
)

__all__ = [
    "AdmitOnSecondHit",
    "AlwaysAdmit",
    "CachePolicy",
    "CacheEntry",
    "CacheKey",
    "ChargingApplier",
    "PPRCache",
    "ReplayCache",
    "StalenessTracker",
    "TOPK",
    "TTLPolicy",
    "VECTOR",
    "beta_signature",
    "lemma2_increment",
    "make_key",
    "pi_from_topk",
]
