"""Admission / expiry policies for :class:`~repro.cache.store.PPRCache`.

The store owns the *correctness* rules (capacity bound, staleness
budget); a policy owns the *economic* rules — which results are worth
the slot, and whether age alone should retire an entry.  Keeping the
two behind one small protocol lets benchmarks ablate policies without
touching the store (``bench_cache_effectiveness.py`` does exactly
that).

All three shipped policies are deterministic: admission depends only on
the key's own observation history and the measured compute cost, expiry
only on the cache's applied-update counter — never on wall time — so
modeled (virtual-clock) and measured runs agree.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # runtime-free: store imports this module
    from repro.cache.store import CacheEntry, CacheKey


class CachePolicy(Protocol):
    """Admission / expiry decisions, consulted by the store under its lock.

    ``should_admit`` runs on every insert attempt (``cost_s`` is the
    measured or modeled compute cost of the candidate result);
    ``should_expire`` runs on every lookup hit, with the cache's
    applied-update counter as the age clock.
    """

    def should_admit(self, key: "CacheKey", cost_s: float) -> bool:
        """True to accept the candidate entry."""
        ...

    def should_expire(self, entry: "CacheEntry", updates_seen: int) -> bool:
        """True to retire ``entry`` before serving it."""
        ...


class AlwaysAdmit:
    """Admit everything, never expire by age (the default)."""

    def should_admit(self, key: "CacheKey", cost_s: float) -> bool:
        return True

    def should_expire(self, entry: "CacheEntry", updates_seen: int) -> bool:
        return False


class AdmitOnSecondHit:
    """Cost-aware admission filter against one-off sources.

    A result is admitted immediately when it was expensive enough to
    compute (``cost_threshold_s``); otherwise the key must have been
    *seen* (attempted) before — the classic "admit on second touch"
    filter that keeps a Zipf tail of never-repeated sources from
    flushing the hot set.  The seen-set is bounded LRU so memory stays
    O(``seen_capacity``) over arbitrarily long replays.
    """

    def __init__(
        self, cost_threshold_s: float = float("inf"), seen_capacity: int = 4096
    ) -> None:
        if seen_capacity < 1:
            raise ValueError("seen_capacity must be >= 1")
        self.cost_threshold_s = cost_threshold_s
        self._seen: OrderedDict["CacheKey", None] = OrderedDict()
        self._seen_capacity = seen_capacity

    def should_admit(self, key: "CacheKey", cost_s: float) -> bool:
        if cost_s >= self.cost_threshold_s:
            return True
        if key in self._seen:
            self._seen.move_to_end(key)
            return True
        self._seen[key] = None
        if len(self._seen) > self._seen_capacity:
            self._seen.popitem(last=False)
        return False

    def should_expire(self, entry: "CacheEntry", updates_seen: int) -> bool:
        return False


class TTLPolicy:
    """Expire entries older than ``ttl_updates`` applied updates.

    Age is measured on the cache's applied-update counter, not wall
    time, so a modeled replay and a measured run of the same workload
    expire identically.  A TTL complements (never replaces) the
    staleness budget: it bounds how long an entry for a *quiet* region
    of the graph — one the update stream barely charges — may serve.
    """

    def __init__(self, ttl_updates: int) -> None:
        if ttl_updates < 1:
            raise ValueError("ttl_updates must be >= 1")
        self.ttl_updates = ttl_updates

    def should_admit(self, key: "CacheKey", cost_s: float) -> bool:
        return True

    def should_expire(self, entry: "CacheEntry", updates_seen: int) -> bool:
        return updates_seen - entry.born_update > self.ttl_updates
