"""Update-driven staleness accounting for cached PPR results.

The invalidation contract
-------------------------
Seed's Lemma 2 bounds how much one *pending* edge update at node ``u``
can perturb a PPR vector for source ``s``; the same quantity prices an
*applied* update against every cached answer computed before it.  The
per-update increment the issue (and Seed) uses is

    inc(s, u) = (1 - alpha) * pi_hat(s, u) / max(d_out(u), 1)

(:func:`lemma2_increment`) — the probability mass the walk routes
through ``u``'s changed out-row.  Converting perturbed *mass at u* into
a bound on the *L1 drift of the whole vector* costs a coupling factor:
once a walk takes a different edge at ``u``, its remaining
(1 - alpha)-discounted future — up to ``2 * (1 - alpha) / alpha`` of
expected mass per unit of rerouted probability — may land elsewhere.
:class:`StalenessTracker` therefore charges
``safety * inc(s, u)`` with ``safety = 2 / alpha`` by default, which
makes the accumulated budget an empirically validated upper bound on
the normalized L1 distance between the cached vector and a fresh
recompute (the exactness oracle in ``benchmarks/
bench_cache_effectiveness.py`` and ``tests/cache/test_oracle.py``
verifies zero violations; measured worst-case drift/charge ratios sit
near half the coupling factor).

``pi_hat(s, u)`` is the *cached* estimate — the value computed when the
entry was admitted.  Entries whose result cannot be indexed by node
(opaque ``query_fn`` results, modeled entries in the simulators) carry
no ``pi_estimate`` and fall back to the conservative degree-only bound
``pi_hat = 1``, which over-charges and never under-protects.

Call :meth:`StalenessTracker.observe` *after* the update is applied —
the charge reads the post-update out-degree — and from within the same
critical section that mutated the graph, so no query can observe a
mutated graph before the cache was charged for it.
:class:`ChargingApplier` packages that ordering for the Seed flush
paths (it satisfies the structural ``UpdateApplier`` protocol of
:mod:`repro.core.seed` without importing it — this package stays below
``repro.core`` in the layering).
"""

from __future__ import annotations

from typing import Protocol

from repro.cache.store import (
    VECTOR,
    CacheEntry,
    CacheKey,
    PiEstimate,
    PPRCache,
    make_key,
)
from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate


class SupportsApplyUpdate(Protocol):
    """Structural twin of :class:`repro.core.seed.UpdateApplier`."""

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        """Apply one edge arrival; returns the resolved update."""
        ...


def lemma2_increment(alpha: float, pi_su: float, d_out: int) -> float:
    """The paper-shaped per-update staleness increment (unscaled)."""
    return (1.0 - alpha) * pi_su / max(d_out, 1)


class StalenessTracker:
    """Charges live cache entries for each applied edge update.

    Parameters
    ----------
    cache:
        The store whose entries are charged (and evicted past
        ``cache.epsilon_c``).
    graph:
        The graph the updates mutate; degrees are read from it
        post-application.
    alpha:
        Teleport probability of the cached queries.
    safety:
        Multiplier converting the Lemma-2 mass increment into an L1
        drift bound (module docstring).  Default ``2 / alpha``.
    """

    def __init__(
        self,
        cache: PPRCache,
        graph: DynamicGraph,
        alpha: float,
        safety: float | None = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if safety is not None and safety <= 0.0:
            raise ValueError(f"safety must be positive, got {safety}")
        self.cache = cache
        self.graph = graph
        self.alpha = alpha
        self.safety = safety if safety is not None else 2.0 / alpha

    def observe(self, update: EdgeUpdate) -> list[CacheKey]:
        """Charge one *applied* update; returns staleness-evicted keys."""
        u = update.u
        d_out = self.graph.out_degree(u) if self.graph.has_node(u) else 0
        base = self.safety * lemma2_increment(self.alpha, 1.0, d_out)

        def increment(entry: CacheEntry) -> float:
            if entry.pi_estimate is None:
                return base  # degree-only bound: pi_hat(s, u) <= 1
            pi_su = entry.pi_estimate(u)
            if not pi_su >= 0.0:  # guards NaN as well as negatives
                return base
            return base * min(pi_su, 1.0)

        return self.cache.charge_staleness(increment)


class ChargingApplier:
    """An ``UpdateApplier`` that charges staleness after each apply.

    Wraps the real applier (an algorithm, or a bare graph-toggling
    shim) so batch flushes — ``SeedQueue.flush`` / ``flush_one`` —
    charge each update against the degrees it actually saw, instead of
    charging the whole batch against post-batch degrees.
    """

    __slots__ = ("_inner", "_tracker")

    def __init__(
        self, inner: SupportsApplyUpdate, tracker: StalenessTracker
    ) -> None:
        self._inner = inner
        self._tracker = tracker

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        resolved = self._inner.apply_update(update)
        self._tracker.observe(resolved)
        return resolved


class ReplayCache:
    """Cache adapter for the virtual-time queue simulators.

    Bundles a :class:`~repro.cache.store.PPRCache` with a
    :class:`StalenessTracker` over the graph a simulated replay
    mutates, exposing exactly what the simulators need: a hit test, an
    admission hook, an update hook, and the modeled hit service time.
    Simulated entries store no vector (``value=None``) by default, so
    charging uses the conservative degree-only bound ``pi_hat = 1`` —
    orders of magnitude above typical true values, so modeled replays
    over-evict (and under-report hit rates) relative to measured runs,
    never the reverse.  Callers that do hold a vector can pass a
    ``pi_estimate`` accessor to :meth:`admit` to recover value-aware
    charging.

    Parameters
    ----------
    cache:
        The underlying store (its ``epsilon_c``/policy/metrics apply).
    graph:
        The graph the simulator mutates (`on_update` reads degrees
        from it, post-application).
    alpha:
        Teleport probability (for the staleness increment).
    algo:
        Key namespace; keep distinct per simulated configuration when
        one store is shared.
    hit_service_s:
        Modeled service duration of a cache hit, in virtual seconds
        (default 0.0 — a hit is free on the virtual clock).
    safety:
        Forwarded to :class:`StalenessTracker`.
    """

    def __init__(
        self,
        cache: PPRCache,
        graph: DynamicGraph,
        alpha: float = 0.2,
        algo: str = "modeled",
        hit_service_s: float = 0.0,
        safety: float | None = None,
    ) -> None:
        if hit_service_s < 0.0:
            raise ValueError(
                f"hit_service_s must be >= 0, got {hit_service_s}"
            )
        self.cache = cache
        self.hit_service_s = hit_service_s
        self._graph = graph
        self._algo = algo
        self._tracker = StalenessTracker(cache, graph, alpha, safety=safety)

    def _key(self, source: int) -> CacheKey:
        return make_key(source, self._algo, {}, VECTOR)

    def hit(self, source: int) -> bool:
        """True when ``source`` is served from cache (bumps metrics)."""
        return self.cache.lookup(self._key(source)) is not None

    def admit(
        self,
        source: int,
        cost_s: float = 0.0,
        pi_estimate: PiEstimate | None = None,
    ) -> bool:
        """Record a computed (modeled) result for ``source``."""
        return self.cache.insert(
            self._key(source),
            None,
            self._graph.version,
            cost_s=cost_s,
            pi_estimate=pi_estimate,
        )

    def on_update(self, update: EdgeUpdate) -> list[CacheKey]:
        """Charge one applied update (call after the graph mutated)."""
        return self._tracker.observe(update)

    def hit_rate(self) -> float:
        return self.cache.hit_rate()
