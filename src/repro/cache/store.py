"""Size-bounded PPR result cache with staleness metadata.

:class:`PPRCache` maps ``(source, algorithm, beta-signature,
result-kind)`` keys to computed PPR results (full vectors or top-k
lists) plus the metadata the invalidation machinery needs: the graph
version the result was computed at and the staleness budget it has
accumulated since (charged by
:class:`~repro.cache.staleness.StalenessTracker`, one increment per
applied edge update).

The beta signature is part of the key on purpose: Quota reconfigures
hyperparameters live, and a result computed under the old beta answers
a *different* accuracy/cost trade-off — after a reconfiguration, old
entries simply stop matching and age out instead of serving silently
mislabeled answers.

Capacity eviction is an LRU/LFU hybrid: the victim is the
least-frequently-hit entry among the :data:`EVICTION_SAMPLE`
least-recently-used ones (ties break toward least recent).  Pure LRU
lets a burst of cold sources flush the hot set; pure LFU never forgets
yesterday's hot source.  Scanning a small LRU-front window gets most of
both and stays deterministic — no randomized sampling, so replays are
reproducible.

Thread safety: every public method takes the internal lock, so the
store can sit under :class:`~repro.serving.runtime.ServingRuntime`
where readers insert concurrently with the writer charging staleness.
Lock ordering note: the cache lock is a leaf — no callback invoked
under it (policy hooks, ``pi_estimate`` closures) may call back into
the cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.cache.policy import AlwaysAdmit, CachePolicy
from repro.obs import MetricsRegistry, get_metrics

#: result kind: a full PPR vector (``PPRVector`` or any opaque result)
VECTOR = "vector"
#: result kind: a top-k list of (node, score) pairs
TOPK = "topk"

#: LRU-front window scanned for the least-frequently-hit victim
EVICTION_SAMPLE = 8

#: canonical, hashable form of a hyperparameter setting
BetaSignature = tuple[tuple[str, float], ...]

#: entry-supplied estimate of pi(s, u) for staleness charging
PiEstimate = Callable[[int], float]


def beta_signature(beta: Mapping[str, float]) -> BetaSignature:
    """Order-independent hashable signature of a hyperparameter dict."""
    return tuple(sorted((name, float(value)) for name, value in beta.items()))


def pi_from_topk(pairs: list[tuple[int, float]]) -> PiEstimate:
    """A ``pi_estimate`` accessor over a top-k result.

    Nodes outside the stored top-k report the smallest stored score —
    an upper bound on their true estimate (the list is sorted
    descending), which keeps the staleness charge conservative.
    """
    scores = {node: score for node, score in pairs}
    floor = min(scores.values()) if scores else 1.0

    def estimate(node: int) -> float:
        return scores.get(node, floor)

    return estimate


@dataclass(frozen=True, slots=True)
class CacheKey:
    """Identity of one cached result."""

    source: int
    algo: str
    beta_sig: BetaSignature
    kind: str = VECTOR


def make_key(
    source: int,
    algo: str,
    beta: Mapping[str, float],
    kind: str = VECTOR,
) -> CacheKey:
    """Build a :class:`CacheKey` from a live hyperparameter mapping."""
    return CacheKey(source, algo, beta_signature(beta), kind)


@dataclass(slots=True)
class CacheEntry:
    """A cached result plus the metadata invalidation runs on.

    ``version`` is the graph version the result was computed at;
    ``staleness`` the accumulated (safety-scaled) Lemma-2 budget since;
    ``born_update`` the cache's applied-update counter at insert time
    (the TTL clock); ``pi_estimate`` an optional ``node -> pi(s, node)``
    accessor the staleness tracker uses for value-aware charging
    (``None`` falls back to the conservative degree-only bound).
    """

    key: CacheKey
    value: object
    version: int
    cost_s: float = 0.0
    staleness: float = 0.0
    hits: int = 0
    born_update: int = 0
    pi_estimate: PiEstimate | None = None


class PPRCache:
    """Thread-safe LRU/LFU-hybrid store of PPR results.

    Parameters
    ----------
    capacity:
        Maximum live entries; inserting past it evicts the hybrid
        victim (see module docstring).
    epsilon_c:
        Staleness budget per entry.  An entry whose accumulated charge
        exceeds ``epsilon_c`` is evicted by
        :meth:`charge_staleness` — the cache-side analogue of Seed's
        ``epsilon_r``, but over *applied* updates rather than pending
        ones (docs/DEVELOPMENT.md, "The result cache").
    policy:
        Admission/expiry policy (default :class:`AlwaysAdmit`).
    metrics:
        Observability registry for the ``cache.*`` counters/gauges.
    """

    def __init__(
        self,
        capacity: int = 512,
        epsilon_c: float = 0.1,
        policy: CachePolicy | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not epsilon_c > 0.0:
            raise ValueError(f"epsilon_c must be positive, got {epsilon_c}")
        self.capacity = capacity
        self.epsilon_c = epsilon_c
        self.policy: CachePolicy = policy if policy is not None else AlwaysAdmit()
        self.metrics = metrics if metrics is not None else get_metrics()
        # imported lazily: repro.serving imports repro.cache at module
        # load, so a top-level import here would be circular
        from repro.serving.rwlock import wrap_mutex

        self._entries: OrderedDict[CacheKey, CacheEntry] = OrderedDict()  # guarded-by: self._lock
        self._lock = wrap_mutex(threading.Lock(), "cache.store")
        self._updates_seen = 0  # guarded-by: self._lock
        self._hits = 0  # guarded-by: self._lock
        self._lookups = 0  # guarded-by: self._lock

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def updates_seen(self) -> int:
        """Applied updates charged so far (the TTL clock)."""
        with self._lock:
            return self._updates_seen

    def hit_rate(self) -> float:
        """Lifetime hit fraction h in [0, 1] (0 before any lookup)."""
        with self._lock:
            return self._hit_rate_locked()

    def _hit_rate_locked(self) -> float:
        return self._hits / self._lookups if self._lookups else 0.0

    # ------------------------------------------------------------------
    def lookup(self, key: CacheKey) -> CacheEntry | None:
        """Return the live entry for ``key`` (None on miss).

        A hit bumps the entry's recency and frequency; a policy-expired
        entry is retired here (lazily — expiry has no background
        thread) and reported as a miss.
        """
        with self._lock:
            self._lookups += 1
            entry = self._entries.get(key)
            if entry is not None and self.policy.should_expire(
                entry, self._updates_seen
            ):
                del self._entries[key]
                self.metrics.counter("cache.evictions_ttl").inc()
                entry = None
            if entry is None:
                self.metrics.counter("cache.misses").inc()
            else:
                entry.hits += 1
                self._hits += 1
                self._entries.move_to_end(key)
                self.metrics.counter("cache.hits").inc()
            self.metrics.gauge("cache.hit_rate").set(self._hit_rate_locked())
            self.metrics.gauge("cache.size").set(float(len(self._entries)))
            return entry

    def insert(
        self,
        key: CacheKey,
        value: object,
        version: int,
        cost_s: float = 0.0,
        pi_estimate: PiEstimate | None = None,
    ) -> bool:
        """Admit a freshly computed result; False when the policy declines.

        Re-inserting an existing key replaces the entry (fresh version,
        zero staleness) while keeping its hit count — a recompute after
        a staleness eviction should not demote the source to cold.
        """
        with self._lock:
            if not self.policy.should_admit(key, cost_s):
                self.metrics.counter("cache.rejections").inc()
                return False
            previous = self._entries.pop(key, None)
            while len(self._entries) >= self.capacity:
                self._evict_one_locked()
            entry = CacheEntry(
                key,
                value,
                version,
                cost_s=cost_s,
                hits=previous.hits if previous is not None else 0,
                born_update=self._updates_seen,
                pi_estimate=pi_estimate,
            )
            self._entries[key] = entry
            self.metrics.counter("cache.insertions").inc()
            self.metrics.gauge("cache.size").set(float(len(self._entries)))
            return True

    def _evict_one_locked(self) -> None:
        """Evict the hybrid victim (least hits within the LRU front)."""
        victim: CacheKey | None = None
        victim_hits = -1
        for position, key in enumerate(self._entries):
            if position >= EVICTION_SAMPLE:
                break
            hits = self._entries[key].hits
            if victim is None or hits < victim_hits:
                victim = key
                victim_hits = hits
        assert victim is not None  # caller checked non-empty
        del self._entries[victim]
        self.metrics.counter("cache.evictions_capacity").inc()

    # ------------------------------------------------------------------
    def charge_staleness(
        self, increment: Callable[[CacheEntry], float]
    ) -> list[CacheKey]:
        """Charge every live entry for one applied update.

        ``increment(entry)`` returns the staleness charge for that
        entry (the tracker closes over the updated node and its
        post-update degree).  Entries whose accumulated budget exceeds
        ``epsilon_c`` are evicted; their keys are returned.  Also
        advances the applied-update counter that TTL policies read.
        """
        with self._lock:
            self._updates_seen += 1
            evicted: list[CacheKey] = []
            for key in list(self._entries):
                entry = self._entries[key]
                entry.staleness += increment(entry)
                if entry.staleness > self.epsilon_c:
                    del self._entries[key]
                    evicted.append(key)
            if evicted:
                self.metrics.counter("cache.evictions_staleness").inc(
                    len(evicted)
                )
                self.metrics.gauge("cache.size").set(
                    float(len(self._entries))
                )
            return evicted

    def worst_staleness(self) -> float:
        """Largest accumulated staleness among the *live* entries.

        The invariant the scenario-fuzz oracle asserts: charging evicts
        past ``epsilon_c``, so no live entry may ever report a budget
        above it.  Returns 0.0 for an empty cache.
        """
        with self._lock:
            return max(
                (entry.staleness for entry in self._entries.values()),
                default=0.0,
            )

    def invalidate_all(self) -> int:
        """Drop every entry (e.g. after an out-of-band graph rebuild)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self.metrics.counter("cache.invalidations").inc(dropped)
            self.metrics.gauge("cache.size").set(0.0)
            return dropped

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Point-in-time summary (size, lookups, hits, hit rate)."""
        with self._lock:
            return {
                "size": float(len(self._entries)),
                "lookups": float(self._lookups),
                "hits": float(self._hits),
                "hit_rate": self._hit_rate_locked(),
                "updates_seen": float(self._updates_seen),
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"PPRCache(size={stats['size']:.0f}/{self.capacity}, "
            f"epsilon_c={self.epsilon_c}, "
            f"hit_rate={stats['hit_rate']:.3f})"
        )
