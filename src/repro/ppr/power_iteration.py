"""Exact PPR via power iteration — the ground truth oracle.

pi_s = alpha * sum_k (1 - alpha)^k (P^T)^k e_s, where P is the random
walk transition matrix with the repository-wide dangling convention
(out-degree-zero rows act as self loops).

Used for:

* accuracy validation of every approximate algorithm (tests),
* the "true PPR error" series of Figures 4, 8 and 10,
* the TopPPR/FORA-TopK exactness checks on small graphs.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.graph.digraph import DynamicGraph
from repro.ppr.base import PPRVector
from repro.ppr.csr import CSRView, csr_view


def transition_matrix(view: CSRView) -> sparse.csr_matrix:
    """Row-stochastic random-walk matrix P of a graph snapshot.

    Row u holds 1/d_out(u) on each out-neighbor; dangling rows hold a
    single 1 on the diagonal (implicit self loop).
    """
    n = view.n
    rows = np.repeat(np.arange(n, dtype=np.int64), view.out_deg)
    # delta-patched views carry slack slots; gather the packed columns
    _, cols = view.packed_out()
    degs = np.maximum(view.out_deg, 1)
    data = 1.0 / degs[rows]
    matrix = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
    dangling = np.flatnonzero(view.out_deg == 0)
    if dangling.size:
        loop = sparse.csr_matrix(
            (np.ones(dangling.size), (dangling, dangling)), shape=(n, n)
        )
        matrix = matrix + loop
    return matrix


def ppr_exact(
    graph: DynamicGraph,
    source: int,
    alpha: float = 0.2,
    tol: float = 1e-12,
    max_iter: int = 1_000,
) -> PPRVector:
    """Exact single-source PPR by geometric-series power iteration.

    Iterates p_{k+1} = (1 - alpha) P^T p_k, accumulating
    pi += alpha * p_k, until the residual mass ||p_k||_1 < tol.  The
    residual shrinks by (1 - alpha) per step, so convergence takes
    log(1/tol) / log(1/(1-alpha)) iterations regardless of the graph.
    """
    view = csr_view(graph)
    s = view.to_index(source)
    matrix_t = transition_matrix(view).T.tocsr()
    p = np.zeros(view.n, dtype=np.float64)
    p[s] = 1.0
    pi = np.zeros(view.n, dtype=np.float64)
    for _ in range(max_iter):
        pi += alpha * p
        p = (1.0 - alpha) * (matrix_t @ p)
        if p.sum() < tol:
            break
    pi += p  # hand the (tiny) leftover mass to its current holders
    return PPRVector(pi, view, source)


def ppr_exact_all_pairs(
    graph: DynamicGraph, alpha: float = 0.2, tol: float = 1e-12
) -> np.ndarray:
    """Dense all-pairs PPR matrix (row s = pi_s).  Small graphs only.

    Solves (I - (1 - alpha) P) X^T = alpha I column-block-wise via the
    same geometric series, vectorized over all sources at once.
    """
    view = csr_view(graph)
    n = view.n
    if n == 0:
        return np.zeros((0, 0))
    matrix_t = transition_matrix(view).T.tocsr()
    p = np.eye(n, dtype=np.float64)
    pi = np.zeros((n, n), dtype=np.float64)
    while p.sum() >= tol:
        pi += alpha * p
        p = (1.0 - alpha) * (matrix_t @ p)
    return pi.T + p.T  # row s = pi_s
