"""PPR algorithms: push primitives, ground truth, and the base methods.

The base algorithms Quota configures (Section V / Table I):

=============  =================  ======================================
Algorithm      Index              Tunable hyperparameters
=============  =================  ======================================
FORA           no                 r_max
FORA+          yes                r_max
FORA+inc       yes (incremental)  r_max
SpeedPPR       no                 r_max
SpeedPPR+      yes                r_max
SpeedPPR+inc   yes (incremental)  r_max
Agenda         yes (lazy)         r_max, r_max_b
ResAcc         no                 r_max           (baseline only)
FORA-TopK      no                 r_max
TopPPR         no                 r_max, r_max_b
=============  =================  ======================================

The "+inc" variants keep the walk index patched via FIRM-style
affected-walk resampling (:mod:`repro.ppr.incremental`) instead of a
full per-update rebuild.
"""

from repro.ppr.agenda import Agenda
from repro.ppr.bippr import PairEstimate, ppr_single_pair
from repro.ppr.tracking import TrackedPPR, signed_forward_push
from repro.ppr.base import (
    DynamicPPRAlgorithm,
    PPRParams,
    PPRVector,
    QueryStats,
    SubProcessTimers,
)
from repro.ppr.csr import CSRView, csr_view
from repro.ppr.dispatch import (
    ENGINE_CHOICES,
    BackendSpec,
    DispatchCostModel,
    KernelDispatcher,
    RoutingDecision,
    get_dispatcher,
    register_backend,
    set_dispatcher,
)
from repro.ppr.fora import Fora, ForaPlus, ForaPlusIncremental
from repro.ppr.forward_push import PushResult, forward_push
from repro.ppr.kernels import (
    ENGINES,
    BatchPushResult,
    batched_frontier_push,
    frontier_push,
    reference_frontier_push,
    resolve_engine,
)
from repro.ppr.power_iteration import ppr_exact, ppr_exact_all_pairs
from repro.ppr.random_walk import WalkIndex, sample_walk_terminals
from repro.ppr.resacc import ResAcc
from repro.ppr.reverse_push import ReversePushResult, reverse_push
from repro.ppr.speedppr import SpeedPPR, SpeedPPRPlus, SpeedPPRPlusIncremental
from repro.ppr.topk import ForaTopK, TopPPR

ALGORITHMS = {
    "FORA": Fora,
    "FORA+": ForaPlus,
    "FORA+inc": ForaPlusIncremental,
    "SpeedPPR": SpeedPPR,
    "SpeedPPR+": SpeedPPRPlus,
    "SpeedPPR+inc": SpeedPPRPlusIncremental,
    "Agenda": Agenda,
    "ResAcc": ResAcc,
    "FORA-TopK": ForaTopK,
    "TopPPR": TopPPR,
}

__all__ = [
    "ALGORITHMS",
    "ENGINES",
    "ENGINE_CHOICES",
    "Agenda",
    "BackendSpec",
    "BatchPushResult",
    "CSRView",
    "DispatchCostModel",
    "KernelDispatcher",
    "RoutingDecision",
    "get_dispatcher",
    "register_backend",
    "set_dispatcher",
    "batched_frontier_push",
    "frontier_push",
    "reference_frontier_push",
    "resolve_engine",
    "DynamicPPRAlgorithm",
    "Fora",
    "ForaPlus",
    "ForaPlusIncremental",
    "ForaTopK",
    "PairEstimate",
    "PPRParams",
    "PPRVector",
    "PushResult",
    "TrackedPPR",
    "ppr_single_pair",
    "signed_forward_push",
    "QueryStats",
    "ResAcc",
    "ReversePushResult",
    "SpeedPPR",
    "SpeedPPRPlus",
    "SpeedPPRPlusIncremental",
    "SubProcessTimers",
    "TopPPR",
    "WalkIndex",
    "csr_view",
    "forward_push",
    "ppr_exact",
    "ppr_exact_all_pairs",
    "reverse_push",
    "sample_walk_terminals",
]
