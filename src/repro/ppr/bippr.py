"""Single-pair bidirectional PPR estimation (BiPPR / FAST-PPR style).

Estimates one value pi(s, t) by combining a *reverse push* from the
target with *forward random walks* from the source (Lofgren et al.
[57], [61] — the lineage the paper's Reverse Push machinery comes
from).  The backward invariant

    pi(s, t) = reserve_b(s) + sum_v pi(s, v) * residue_b(v)

lets the walks estimate only the residue part: each walk samples v from
pi(s, .), so averaging residue_b(v) over walk terminals is an unbiased
estimator of the sum.

Cost: O(d_bar / (alpha r_max_b)) for the push + O(walks / alpha) steps,
versus O(n)-ish for a full single-source query — the point of
bidirectional estimation when only one pair is needed (e.g. "how close
is player u to player v").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DynamicGraph
from repro.ppr.base import PPRParams
from repro.ppr.csr import csr_view
from repro.ppr.random_walk import sample_walk_terminals
from repro.ppr.reverse_push import reverse_push


@dataclass(frozen=True, slots=True)
class PairEstimate:
    """Outcome of one single-pair estimation."""

    value: float
    backward_reserve: float
    walk_contribution: float
    num_walks: int
    reverse_pushes: int


def ppr_single_pair(
    graph: DynamicGraph,
    source: int,
    target: int,
    params: PPRParams | None = None,
    r_max_b: float | None = None,
    num_walks: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> PairEstimate:
    """Estimate pi(source, target) bidirectionally.

    Parameters
    ----------
    graph:
        The graph to query.
    source, target:
        The node pair.
    params:
        Accuracy configuration; defaults to the paper's standard
        setting.
    r_max_b:
        Reverse-push threshold.  Default sqrt(alpha * d_bar / n) — the
        FAST-PPR balance point between push work and walk count.
    num_walks:
        Forward walks; default r_max_b * K (so that walk noise matches
        the residue magnitude), at least 100.
    rng:
        Numpy generator or seed.

    Returns
    -------
    PairEstimate
        ``value`` combines the backward reserve at the source with the
        Monte-Carlo estimate of the residue sum.
    """
    params = params or PPRParams()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    view = csr_view(graph)
    s = view.to_index(source)
    t = view.to_index(target)

    if r_max_b is None:
        d_bar = max(view.m / max(view.n, 1), 1.0)
        r_max_b = min(max((params.alpha * d_bar / max(view.n, 2)) ** 0.5,
                          1e-6), 0.5)
    back = reverse_push(view, t, params.alpha, r_max_b)

    if num_walks is None:
        k = params.num_walks(view.n)
        num_walks = max(int(r_max_b * k), 100)

    residue = back.residue
    walk_part = 0.0
    if residue.any():
        starts = np.full(num_walks, s, dtype=np.int64)
        terminals = sample_walk_terminals(view, starts, params.alpha, rng)
        walk_part = float(residue[terminals].mean())

    reserve_part = float(back.reserve[s])
    return PairEstimate(
        value=reserve_part + walk_part,
        backward_reserve=reserve_part,
        walk_contribution=walk_part,
        num_walks=num_walks if residue.any() else 0,
        reverse_pushes=back.pushes,
    )
