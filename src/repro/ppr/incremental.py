"""Incremental walk-index maintenance (FIRM-style suffix resampling).

The index-based methods (FORA+, SpeedPPR+) precompute
ceil(r_max * K * d_out(v)) alpha-decay walks per node.  The seed
implementation regenerates the *whole* index after every edge update —
the O(m * r_max * K) t_u of Table I that makes index-based methods lose
to index-free ones under churn.  This module implements the
incremental index-update scheme of "PPR on Evolving Graphs with an
Incremental Index-Update Scheme" (arXiv 2212.10288): resample only the
walks an edge mutation actually affects.

Affected sets (exactness argument)
----------------------------------
Write d for node u's *old* out-degree.

* ``delete (u, v)`` — affected = walks that traversed the edge (u, v).
  A walk that survived a coin at u but stepped to w != v drew uniform
  over d conditioned on "not v", which *is* uniform over the d-1
  surviving neighbors: already new-graph distributed, left alone.
* ``insert (u, v)`` — affected = walks that survived >= 1 termination
  coin at u.  That includes walks that *held* at a then-dangling u
  (survived the coin with nowhere to go and retired in place); the
  sampler records those holds as pseudo-edges ``(u, u)`` so the map can
  find them.  Walks whose coin failed at u terminate there under either
  graph and are untouched.

An affected walk is repaired by *suffix resampling* from its first
affected step: the termination coin there already survived (the prefix
conditions on it), so the new suffix is a forced uniform move over u's
*new* out-neighbors followed by a standard alpha-decay walk from the
hop — exactly the new-graph conditional law given the retained prefix.
If u is now dangling the walk retires at u (pseudo-edge re-recorded).
Resampling the *whole* walk instead would be biased: the affected set
is trajectory-selected, and replacing member walks with unconditional
fresh walks gives the resampled mass the unconditional law where the
mixture needs the conditional one.  (Whole-*row* refresh — Agenda's
``refresh_nodes`` — is unbiased precisely because row selection does
not condition on trajectories.)

Degree-driven budget changes ride along: deletes that shrink
ceil(r_max * K * d_out(u)) drop tail slots *before* the affected set is
computed (dropped walks need no repair), and inserts that grow it
append fresh full walks *after* repair (fresh walks are new-graph iid
and must not be re-resampled).

The edge→walk map
-----------------
``EdgeWalkMap`` stores, per stored walk, the *ordered* list of edges it
traversed (pseudo-edges included), plus an inverted src→dst→walk-id
bucket index for O(affected) lookup.  Ordered paths are load-bearing:
a suffix resample keeps the prefix's traversals registered, so a later
update touching a prefix edge still finds the walk.  Walk ids are
``(node << SLOT_BITS) | slot`` — stable under slack-row relocation, so
the map never needs remapping when the terminals array is repacked.

Everything here mutates only the owning :class:`~repro.ppr.random_walk.
WalkIndex` and is called from algorithm ``apply_update`` paths, which
the serving runtime already runs under the write lock — the repair is
inside the writer critical section by construction (rules R7-R11).
"""

from __future__ import annotations

import numpy as np

from repro.obs import get_metrics
from repro.ppr.csr import CSRView
from repro.ppr.random_walk import WalkIndex, sample_walk_terminals

#: chronological step record emitted by ``sample_walk_terminals``:
#: per iteration ``(walk_positions, src_nodes, dst_nodes)`` (a hold at
#: a dangling node is recorded as src == dst).
WalkTrace = list[tuple[np.ndarray, np.ndarray, np.ndarray]]

#: walk id layout: ``wid = (node << SLOT_BITS) | slot``.  32 slot bits
#: comfortably exceed any per-node walk budget while keeping ids in
#: int64 range for graphs up to 2^31 nodes.
SLOT_BITS = 32
_SLOT_MASK = (1 << SLOT_BITS) - 1

# module-level pre-resolved counters: looking metrics up per update
# would be a registry access inside the writer critical section (R11).
_incremental_updates = get_metrics().counter("index.incremental_updates")
_walks_resampled = get_metrics().counter("index.walks_resampled")
_map_builds = get_metrics().counter("index.map_builds")


def walk_id(node: int, slot: int) -> int:
    return (node << SLOT_BITS) | slot


class EdgeWalkMap:
    """Inverted edge→walk index over the stored walks.

    ``_by_src[u][v]`` is the set of walk ids whose trajectory traversed
    (u, v) at least once; ``_paths[wid]`` is that walk's ordered edge
    sequence (the repair needs the *first* affected position, and the
    prefix must stay registered after a suffix resample).  A walk whose
    very first coin terminated it has no entries at all.
    """

    __slots__ = ("_by_src", "_paths")

    def __init__(self) -> None:
        self._by_src: dict[int, dict[int, set[int]]] = {}
        self._paths: dict[int, list[tuple[int, int]]] = {}

    def __len__(self) -> int:
        return len(self._paths)

    def register(self, wid: int, path: list[tuple[int, int]]) -> None:
        if not path:
            return
        self._paths[wid] = path
        for u, v in set(path):
            self._by_src.setdefault(u, {}).setdefault(v, set()).add(wid)

    def unregister(self, wid: int) -> None:
        path = self._paths.pop(wid, None)
        if path is None:
            return
        for u, v in set(path):
            dsts = self._by_src.get(u)
            if dsts is None:
                continue
            bucket = dsts.get(v)
            if bucket is None:
                continue
            bucket.discard(wid)
            if not bucket:
                del dsts[v]
                if not dsts:
                    del self._by_src[u]

    def path(self, wid: int) -> list[tuple[int, int]]:
        return self._paths.get(wid, [])

    def walks_through(self, u: int, v: int) -> set[int]:
        """Walk ids that traversed edge (u, v)."""
        return set(self._by_src.get(u, {}).get(v, ()))

    def walks_from(self, u: int) -> set[int]:
        """Walk ids that survived a coin at u (stepped out or held)."""
        out: set[int] = set()
        for bucket in self._by_src.get(u, {}).values():
            out |= bucket
        return out


def make_edge_map() -> EdgeWalkMap:
    """Factory used by :class:`WalkIndex` (keeps its import lazy)."""
    return EdgeWalkMap()


def _paths_from_trace(
    trace: WalkTrace, num_walks: int
) -> list[list[tuple[int, int]]]:
    """Per-batch-position ordered edge lists from a chronological trace."""
    paths: list[list[tuple[int, int]]] = [[] for _ in range(num_walks)]
    for positions, srcs, dsts in trace:
        pos_l = positions.tolist()
        src_l = srcs.tolist()
        dst_l = dsts.tolist()
        for k in range(len(pos_l)):
            paths[pos_l[k]].append((src_l[k], dst_l[k]))
    return paths


def register_trace(
    emap: EdgeWalkMap,
    starts: np.ndarray,
    slots: np.ndarray,
    trace: WalkTrace,
) -> None:
    """Register a freshly sampled batch's traversals.

    ``starts``/``slots`` identify each batch position's walk id;
    ``trace`` is the recorder filled by ``sample_walk_terminals``.
    """
    paths = _paths_from_trace(trace, int(starts.size))
    wids = (starts.astype(np.int64) << SLOT_BITS) | slots.astype(np.int64)
    wid_l = wids.tolist()
    for pos, path in enumerate(paths):
        if path:
            emap.register(wid_l[pos], path)


def unregister_rows(
    emap: EdgeWalkMap, node_indices: np.ndarray, counts: np.ndarray
) -> None:
    """Drop every registered walk of the given (whole) rows."""
    for i in node_indices.tolist():
        base = int(i) << SLOT_BITS
        for slot in range(int(counts[i])):
            emap.unregister(base | slot)


def apply_edge_update(
    index: WalkIndex, view: CSRView, u: int, v: int, kind: str
) -> int:
    """Patch ``index`` in place for one applied edge update.

    ``view`` must be the post-update snapshot and ``kind`` the resolved
    operation (``"insert"`` or ``"delete"`` — toggles are resolved by
    ``EdgeUpdate.apply`` before the index ever sees them).  Returns the
    number of walks (re)sampled, the incremental analogue of the full
    rebuild's ``total_walks`` cost.

    The first call on an index built without ``track_edges`` pays one
    traced full rebuild to materialize the edge→walk map (lazy per the
    module contract); every subsequent call is O(affected).
    """
    if kind not in ("insert", "delete"):
        raise ValueError(f"unknown edge-update kind: {kind!r}")
    _incremental_updates.inc()
    if index.edge_map is None:
        # lazy map build: the snapshot already reflects the update, so
        # a plain traced rebuild on it is both the repair and the map.
        index.track_edges = True
        sampled = index.rebuild(view)
        _map_builds.inc()
        _walks_resampled.inc(sampled)
        return sampled

    index.view = view
    emap = index.edge_map
    resampled = index._ensure_node_rows(view)
    deg = int(view.out_deg[u])
    current = int(index.counts[u])
    target = max(
        int(np.ceil(index.walks_per_unit * max(deg, 1))), 1
    )

    # shrink first: dropped tail walks need no repair and must not
    # appear in the affected set.
    if target < current:
        base = u << SLOT_BITS
        for slot in range(target, current):
            emap.unregister(base | slot)
        index.counts[u] = target

    if kind == "delete":
        affected = emap.walks_through(u, v)
    else:
        affected = emap.walks_from(u)
    wids = sorted(affected)

    if wids:
        if kind == "delete":
            split_of = lambda path: path.index((u, v))  # noqa: E731
        else:
            def split_of(path: list[tuple[int, int]]) -> int:
                for i, edge in enumerate(path):
                    if edge[0] == u:
                        return i
                raise ValueError(
                    f"affected walk has no step at node {u}"
                )
        if deg == 0:
            # u lost its last out-edge: every affected walk now holds
            # at u (coin survived, nowhere to go).
            for wid in wids:
                prefix = emap.path(wid)[: split_of(emap.path(wid))]
                emap.unregister(wid)
                emap.register(wid, prefix + [(u, u)])
                node, slot = wid >> SLOT_BITS, wid & _SLOT_MASK
                index.terminals[int(index.offsets[node]) + slot] = u
        else:
            # forced uniform move over u's new out-neighbors, then a
            # standard walk from the hop (traced, so the new suffixes
            # are registered).
            neighbors = view.out_neighbors_of(u)
            hops = neighbors[
                (index._rng.random(len(wids)) * deg).astype(np.int64)
            ]
            trace: WalkTrace = []
            terms = sample_walk_terminals(
                view, hops, index.alpha, index._rng, trace=trace
            )
            suffixes = _paths_from_trace(trace, len(wids))
            hop_l = hops.tolist()
            term_l = terms.tolist()
            for pos, wid in enumerate(wids):
                old = emap.path(wid)
                prefix = old[: split_of(old)]
                emap.unregister(wid)
                emap.register(
                    wid, prefix + [(u, hop_l[pos])] + suffixes[pos]
                )
                node, slot = wid >> SLOT_BITS, wid & _SLOT_MASK
                index.terminals[int(index.offsets[node]) + slot] = (
                    term_l[pos]
                )
        resampled += len(wids)

    # grow last: fresh walks are already new-graph iid.
    if target > current:
        if target > int(index.caps[u]):
            index._relocate_row(u, target)
        extra = target - current
        starts = np.full(extra, u, dtype=np.int64)
        slots = np.arange(current, target, dtype=np.int64)
        grow_trace: WalkTrace = []
        fresh = sample_walk_terminals(
            view, starts, index.alpha, index._rng, trace=grow_trace
        )
        register_trace(emap, starts, slots, grow_trace)
        lo = int(index.offsets[u])
        index.terminals[lo + current:lo + target] = fresh
        index.counts[u] = target
        resampled += extra

    _walks_resampled.inc(resampled)
    return resampled


def validate_edge_map(index: WalkIndex, view: CSRView) -> list[str]:
    """Audit the edge→walk map against the index and a snapshot.

    Returns a list of human-readable violations (empty = consistent).
    Used as the oracle by the property tests and the benchmark; not a
    hot path.
    """
    violations: list[str] = []
    emap = index.edge_map
    if emap is None:
        return ["edge map not built (track_edges off and never updated)"]
    neighbor_sets: dict[int, set[int]] = {}

    def neighbors_of(node: int) -> set[int]:
        cached = neighbor_sets.get(node)
        if cached is None:
            cached = set(view.out_neighbors_of(node).tolist())
            neighbor_sets[node] = cached
        return cached

    for wid, path in emap._paths.items():
        node, slot = wid >> SLOT_BITS, wid & _SLOT_MASK
        if node >= index.counts.size or slot >= int(index.counts[node]):
            violations.append(
                f"walk id {wid} (node {node}, slot {slot}) outside the "
                f"stored rows"
            )
            continue
        if not path:
            violations.append(f"walk {wid} registered with empty path")
        for u, v in path:
            if u == v and int(view.out_deg[u]) == 0:
                continue  # dangling-hold pseudo-edge
            if v not in neighbors_of(u):
                violations.append(
                    f"walk {wid} traverses ({u}, {v}) absent from the "
                    f"snapshot"
                )
        for u, v in set(path):
            if wid not in emap._by_src.get(u, {}).get(v, set()):
                violations.append(
                    f"walk {wid} path edge ({u}, {v}) missing from "
                    f"bucket index"
                )
    for u, dsts in emap._by_src.items():
        for v, bucket in dsts.items():
            if not bucket:
                violations.append(f"empty bucket left at ({u}, {v})")
            for wid in bucket:
                if (u, v) not in emap._paths.get(wid, []):
                    violations.append(
                        f"bucket ({u}, {v}) lists walk {wid} whose "
                        f"path lacks it"
                    )
    return violations
