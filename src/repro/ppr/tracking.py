"""Fixed-source PPR tracking over edge updates (ApPPR lineage [11]).

Maintains a single source's PPR estimate *incrementally* as the graph
evolves, instead of recomputing per query — the "query-tracking in
dynamic graphs" setting of the paper's related work ([11], [19], [20]).

The tracker stores a reserve/residue pair (p, r) satisfying the exact
invariant  pi_s = p + sum_w r(w) * pi_w  on the *current* graph.  When
an edge update changes node u's out-distribution from P(u,:) to
P'(u,:), the invariant is restored by the exact, local correction

    r += (1 - alpha)/alpha * p(u) * (P'(u,:) - P(u,:)).

Corrections can drive residues negative, so the tracker's push and
Monte-Carlo machinery is *signed*.

Derivation: with M_G = alpha (I - (1-alpha) P_G)^(-1) (whose w-th row
is pi_w), validity of (p, r) on G means p + r M_G = e_s M_G, which
pins r uniquely: r = e_s - p/alpha + (1-alpha)/alpha * p P_G.  Holding
p fixed and differencing the expressions for G and G' leaves only the
changed row u of P — the single local term above.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.ppr.base import PPRParams, PPRVector
from repro.ppr.csr import CSRView, csr_view
from repro.ppr.random_walk import sample_walk_terminals


def signed_forward_push(
    view: CSRView,
    residue: np.ndarray,
    reserve: np.ndarray,
    alpha: float,
    r_max: float,
) -> int:
    """Forward push generalized to signed residues (in place).

    A node is active while |residue| / max(out_degree, 1) > r_max; each
    push moves alpha * residue into the reserve and spreads the rest,
    identically to Algorithm 3 but without a sign assumption (the push
    operator is linear, so it is valid for any real residue vector).
    Returns the number of pushes.
    """
    n = view.n
    if n == 0:
        return 0
    indptr = view.indptr
    indices = view.indices
    out_deg = view.out_deg
    one_minus_alpha = 1.0 - alpha
    eff_deg = np.maximum(out_deg, 1)

    queue: deque[int] = deque(
        int(i) for i in np.flatnonzero(np.abs(residue) > r_max * eff_deg)
    )
    in_queue = np.zeros(n, dtype=bool)
    in_queue[list(queue)] = True

    pushes = 0
    while queue:
        t = queue.popleft()
        in_queue[t] = False
        r_t = residue[t]
        deg = out_deg[t]
        if abs(r_t) <= r_max * (deg if deg > 0 else 1):
            continue
        pushes += 1
        reserve[t] += alpha * r_t
        residue[t] = 0.0
        if deg == 0:
            residue[t] = one_minus_alpha * r_t
            if abs(residue[t]) > r_max and not in_queue[t]:
                queue.append(t)
                in_queue[t] = True
            continue
        share = one_minus_alpha * r_t / deg
        # row extent is indptr[t] : indptr[t] + deg (patched views may
        # carry slack past the row end)
        start = indptr[t]
        neighbors = indices[start:start + deg]
        np.add.at(residue, neighbors, share)
        for v in neighbors:
            if not in_queue[v] and abs(residue[v]) > r_max * max(
                out_deg[v], 1
            ):
                queue.append(int(v))
                in_queue[v] = True
    return pushes


class TrackedPPR:
    """Incrementally maintained single-source PPR.

    Parameters
    ----------
    graph:
        The dynamic graph (the tracker applies updates to it).
    source:
        The fixed source node.
    params:
        Accuracy configuration (alpha, walk budget).
    r_max:
        Push threshold for both the initial push and the post-update
        re-push.  Smaller keeps residues (and the signed-walk noise)
        small at higher maintenance cost.

    Limitations
    -----------
    * The node set must stay fixed (updates may only toggle edges among
      existing nodes); growing the graph requires :meth:`refresh`.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        source: int,
        params: PPRParams | None = None,
        r_max: float = 1e-4,
        seed: int | None = None,
    ) -> None:
        if not 0.0 < r_max < 1.0:
            raise ValueError(f"r_max must be in (0, 1), got {r_max}")
        self.graph = graph
        self.source = source
        self.params = params or PPRParams()
        self.r_max = r_max
        self._rng = np.random.default_rng(seed)
        self.updates_applied = 0
        self.refresh()

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Rebuild the (p, r) pair from scratch on the current graph."""
        self._view = csr_view(self.graph)
        self._source_index = self._view.to_index(self.source)
        self.reserve = np.zeros(self._view.n, dtype=np.float64)
        self.residue = np.zeros(self._view.n, dtype=np.float64)
        self.residue[self._source_index] = 1.0
        signed_forward_push(
            self._view, self.residue, self.reserve, self.params.alpha,
            self.r_max,
        )

    # ------------------------------------------------------------------
    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        """Apply one edge update and restore the invariant exactly."""
        u = update.u
        if not self.graph.has_node(u) or not self.graph.has_node(update.v):
            raise ValueError(
                "TrackedPPR requires a fixed node set; call refresh() "
                "after adding nodes"
            )
        alpha = self.params.alpha
        old_view = self._view
        u_index = old_view.to_index(u)
        old_neighbors = old_view.out_neighbors_of(u_index).copy()
        old_deg = int(old_neighbors.size)

        resolved = update.apply(self.graph)
        self._view = csr_view(self.graph)
        if self._view.n != old_view.n:
            raise ValueError(
                "node set changed during update; call refresh()"
            )
        new_neighbors = self._view.out_neighbors_of(u_index)
        new_deg = int(new_neighbors.size)

        # delta = P'(u,:) - P(u,:) as a sparse accumulation; implicit
        # self loop stands in for a dangling node's row.
        delta: dict[int, float] = {}
        if old_deg == 0:
            delta[u_index] = delta.get(u_index, 0.0) - 1.0
        else:
            for w in old_neighbors:
                delta[int(w)] = delta.get(int(w), 0.0) - 1.0 / old_deg
        if new_deg == 0:
            delta[u_index] = delta.get(u_index, 0.0) + 1.0
        else:
            for w in new_neighbors:
                delta[int(w)] = delta.get(int(w), 0.0) + 1.0 / new_deg

        # The invariant pins r uniquely: r = e_s - p/alpha
        # + (1-alpha)/alpha * p P, so differencing the two graphs
        # leaves exactly this one term (no source special case).
        coefficient = (1.0 - alpha) / alpha * self.reserve[u_index]
        # exact-zero sentinel: reserve[u] stays exactly 0.0 until a push
        # writes it, so this only skips provably-no-op corrections; a
        # tolerance would wrongly drop small but real corrections.
        if coefficient != 0.0:  # reprolint: disable=R2
            for w, d in delta.items():
                self.residue[w] += coefficient * d

        signed_forward_push(
            self._view, self.residue, self.reserve, alpha, self.r_max
        )
        self.updates_applied += 1
        return resolved

    # ------------------------------------------------------------------
    def residual_mass(self) -> float:
        """L1 norm of the signed residue (tracking noise indicator)."""
        return float(np.abs(self.residue).sum())

    def estimate(self, num_walks_k: int | None = None) -> PPRVector:
        """Current PPR estimate: reserve + signed-walk residue folding."""
        values = self.reserve.copy()
        k = num_walks_k if num_walks_k is not None else self.params.num_walks(
            self._view.n
        )
        # exact-zero sparsity mask: push writes exactly 0.0 into settled
        # slots, so != 0.0 selects precisely the walk-needing residues.
        holders = np.flatnonzero(self.residue != 0.0)  # reprolint: disable=R2
        if holders.size:
            res = self.residue[holders]
            counts = np.maximum(
                np.ceil(np.abs(res) * k).astype(np.int64), 1
            )
            weights = res / counts
            starts = np.repeat(holders, counts)
            per_walk = np.repeat(weights, counts)
            terminals = sample_walk_terminals(
                self._view, starts, self.params.alpha, self._rng
            )
            np.add.at(values, terminals, per_walk)
        return PPRVector(values, self._view, self.source)

    def __repr__(self) -> str:
        return (
            f"TrackedPPR(source={self.source}, updates="
            f"{self.updates_applied}, |r|={self.residual_mass():.3g})"
        )
