"""Alpha-decay random walks and the precomputed walk index.

The Monte-Carlo half of the Push+Walk framework: a walk starts at a
node, terminates with probability alpha at each step, and otherwise
moves to a uniform out-neighbor; its terminal node is a sample from the
PPR distribution of its start node.

Two facilities live here:

* :func:`sample_walk_terminals` — vectorized batch simulation over the
  CSR arrays (the performance-critical primitive of the repository).
* :class:`WalkIndex` — the per-node precomputed walk store used by the
  index-based algorithms (FORA+, SpeedPPR+, Agenda).  The index stores
  ceil(r_max * K * d_out(v)) terminals per node — exactly the budget a
  forward push with threshold r_max can consume, which is why the
  index (re)build cost is O(m * r_max * K), the update cost in Table I.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ppr.csr import CSRView


def sample_walk_terminals(
    view: CSRView,
    starts: np.ndarray,
    alpha: float,
    rng: np.random.Generator,
    max_steps: int = 10_000,
) -> np.ndarray:
    """Simulate one alpha-decay walk per entry of ``starts``.

    Parameters
    ----------
    view:
        CSR snapshot of the graph.
    starts:
        Array of dense start indices (one walk each).
    alpha:
        Termination probability per step.
    rng:
        Numpy random generator.
    max_steps:
        Safety bound; walks still alive after this many steps are
        terminated in place (probability (1-alpha)^max_steps, i.e.
        never in practice).

    Returns
    -------
    numpy.ndarray
        Terminal node index per walk, same shape as ``starts``.

    Notes
    -----
    All walks advance in lock-step: per iteration we draw termination
    coins for the still-active walks, retire dangling-node walks (the
    implicit-self-loop convention makes them terminate where they are),
    and move the rest to a uniformly chosen out-neighbor via pure array
    indexing.  Expected iterations = 1/alpha, so the cost is
    O(len(starts) / alpha) numpy-vectorized steps.
    """
    terminals = np.asarray(starts, dtype=np.int64).copy()
    if terminals.size == 0:
        return terminals
    indptr = view.indptr
    indices = view.indices
    out_deg = view.out_deg

    active = np.arange(terminals.size)
    for _ in range(max_steps):
        if active.size == 0:
            break
        current = terminals[active]
        survive = rng.random(active.size) >= alpha
        degs = out_deg[current]
        moving = survive & (degs > 0)
        if not moving.any():
            active = active[np.zeros(active.size, dtype=bool)]
            break
        movers = active[moving]
        cur = current[moving]
        offsets = (rng.random(movers.size) * out_deg[cur]).astype(np.int64)
        terminals[movers] = indices[indptr[cur] + offsets]
        active = movers
    return terminals


def walk_steps_estimate(num_walks: int, alpha: float) -> float:
    """Expected total walk steps for ``num_walks`` alpha-decay walks."""
    return num_walks * (1.0 - alpha) / alpha


class WalkIndex:
    """Per-node store of precomputed walk terminals.

    Parameters
    ----------
    view:
        CSR snapshot the walks are sampled on.
    alpha:
        Walk termination probability.
    walks_per_unit:
        The product r_max * K: node v stores
        ceil(walks_per_unit * max(d_out(v), 1)) terminals.
    rng:
        Numpy generator used for sampling.

    The index is valid only for the graph version it was built on;
    owners (FORA+/Agenda) are responsible for rebuilding or refreshing
    after updates — that is precisely the update cost Quota models.
    """

    def __init__(
        self,
        view: CSRView,
        alpha: float,
        walks_per_unit: float,
        rng: np.random.Generator,
    ) -> None:
        self.alpha = alpha
        self.walks_per_unit = walks_per_unit
        self._rng = rng
        self.view = view
        self.counts = np.maximum(
            np.ceil(walks_per_unit * np.maximum(view.out_deg, 1)).astype(np.int64),
            1,
        )
        self.offsets = np.zeros(view.n + 1, dtype=np.int64)
        np.cumsum(self.counts, out=self.offsets[1:])
        self.terminals = np.empty(int(self.offsets[-1]), dtype=np.int64)
        self._build_all()

    # ------------------------------------------------------------------
    @property
    def total_walks(self) -> int:
        """Total stored walks — the O(m r_max K) quantity of Table I."""
        return int(self.terminals.size)

    def _build_all(self) -> None:
        starts = np.repeat(np.arange(self.view.n, dtype=np.int64), self.counts)
        self.terminals = sample_walk_terminals(
            self.view, starts, self.alpha, self._rng
        )

    def rebuild(self, view: CSRView) -> int:
        """Re-sample every stored walk on a fresh snapshot.

        Returns the number of walks sampled (the update cost driver for
        FORA+/SpeedPPR+, which regenerate the whole index per update).
        """
        self.view = view
        self.counts = np.maximum(
            np.ceil(
                self.walks_per_unit * np.maximum(view.out_deg, 1)
            ).astype(np.int64),
            1,
        )
        self.offsets = np.zeros(view.n + 1, dtype=np.int64)
        np.cumsum(self.counts, out=self.offsets[1:])
        self._build_all()
        return self.total_walks

    def refresh_nodes(self, view: CSRView, node_indices: np.ndarray) -> int:
        """Re-sample only the walks of ``node_indices`` (Agenda's lazy fix).

        The stored walk *counts* are kept; only terminals are refreshed
        on the new snapshot.  Returns the number of walks re-sampled.
        """
        self.view = view
        node_indices = np.asarray(node_indices, dtype=np.int64)
        if node_indices.size == 0:
            return 0
        counts = (
            self.offsets[node_indices + 1] - self.offsets[node_indices]
        )
        total = int(counts.sum())
        if total == 0:
            return 0
        # one batched simulation for every walk of every selected node
        starts = np.repeat(node_indices, counts)
        sampled = sample_walk_terminals(view, starts, self.alpha, self._rng)
        # flat destination slots: for each node the range offsets[i]:offsets[i+1]
        exclusive = np.concatenate(([0], np.cumsum(counts)[:-1]))
        dest = (
            np.repeat(self.offsets[node_indices] - exclusive, counts)
            + np.arange(total)
        )
        self.terminals[dest] = sampled
        return total

    def terminals_for(self, node_index: int, count: int) -> np.ndarray:
        """Up to ``count`` stored terminals for walks starting at a node.

        If the caller needs more walks than stored (possible when the
        push left more residue than the index budget anticipated), the
        stored sample is recycled round-robin — a standard index-based
        implementation trick that keeps the estimator unbiased
        conditioned on the stored sample.
        """
        lo, hi = int(self.offsets[node_index]), int(self.offsets[node_index + 1])
        stored = self.terminals[lo:hi]
        if count <= stored.size:
            return stored[:count]
        reps = int(math.ceil(count / stored.size))
        return np.tile(stored, reps)[:count]
