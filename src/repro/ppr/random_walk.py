"""Alpha-decay random walks and the precomputed walk index.

The Monte-Carlo half of the Push+Walk framework: a walk starts at a
node, terminates with probability alpha at each step, and otherwise
moves to a uniform out-neighbor; its terminal node is a sample from the
PPR distribution of its start node.

Two facilities live here:

* :func:`sample_walk_terminals` — vectorized batch simulation over the
  CSR arrays (the performance-critical primitive of the repository).
* :class:`WalkIndex` — the per-node precomputed walk store used by the
  index-based algorithms (FORA+, SpeedPPR+, Agenda).  The index stores
  ceil(r_max * K * d_out(v)) terminals per node — exactly the budget a
  forward push with threshold r_max can consume, which is why the
  index (re)build cost is O(m * r_max * K), the update cost in Table I.

Storage layout: node ``i``'s walk terminals occupy
``terminals[offsets[i] : offsets[i] + counts[i]]`` inside a row with
capacity ``caps[i]`` — the same slack-slot scheme the CSR store uses
for adjacency rows.  Fresh builds are packed (cap == count,
``offsets[i + 1]`` coincides with the next row); incremental
maintenance (:mod:`repro.ppr.incremental`) grows/shrinks rows in place
and relocates a row to the array tail when it outgrows its capacity.
A stored walk is addressed by the stable id ``(node << 32) | slot``,
so relocation never invalidates the edge→walk map.

When ``track_edges`` is set, every sampling pass also records which
edges each stored walk traversed (:class:`~repro.ppr.incremental.
EdgeWalkMap`), enabling :meth:`WalkIndex.apply_edge_update` to resample
only the walks a single edge mutation actually affects.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.ppr.csr import CSRView

if TYPE_CHECKING:
    from repro.ppr.incremental import EdgeWalkMap, WalkTrace


def sample_walk_terminals(
    view: CSRView,
    starts: np.ndarray,
    alpha: float,
    rng: np.random.Generator,
    max_steps: int = 10_000,
    trace: "WalkTrace | None" = None,
) -> np.ndarray:
    """Simulate one alpha-decay walk per entry of ``starts``.

    Parameters
    ----------
    view:
        CSR snapshot of the graph.
    starts:
        Array of dense start indices (one walk each).
    alpha:
        Termination probability per step.
    rng:
        Numpy random generator.
    max_steps:
        Safety bound; walks still alive after this many steps are
        terminated in place (probability (1-alpha)^max_steps, i.e.
        never in practice).
    trace:
        Optional step recorder (a plain list).  When given, every
        iteration appends ``(walk_positions, src, dst)`` arrays for the
        walks that moved, plus a ``(positions, node, node)`` pseudo-step
        for walks retired *in place at a dangling node* (survived the
        coin, nowhere to go) — the event an edge insert at that node
        would have changed.  Tracing consumes the generator identically
        to the untraced path, so seeded runs are bit-for-bit equal
        either way.

    Returns
    -------
    numpy.ndarray
        Terminal node index per walk, same shape as ``starts``.

    Notes
    -----
    All walks advance in lock-step: per iteration we draw termination
    coins for the still-active walks, retire dangling-node walks (the
    implicit-self-loop convention makes them terminate where they are),
    and move the rest to a uniformly chosen out-neighbor via pure array
    indexing.  Expected iterations = 1/alpha, so the cost is
    O(len(starts) / alpha) numpy-vectorized steps.
    """
    terminals = np.asarray(starts, dtype=np.int64).copy()
    if terminals.size == 0:
        return terminals
    indptr = view.indptr
    indices = view.indices
    out_deg = view.out_deg

    active = np.arange(terminals.size)
    for _ in range(max_steps):
        if active.size == 0:
            break
        current = terminals[active]
        survive = rng.random(active.size) >= alpha
        degs = out_deg[current]
        moving = survive & (degs > 0)
        if trace is not None:
            held = survive & (degs == 0)
            if held.any():
                spots = current[held]
                trace.append((active[held], spots, spots))
        if not moving.any():
            active = active[np.zeros(active.size, dtype=bool)]
            break
        movers = active[moving]
        cur = current[moving]
        offsets = (rng.random(movers.size) * out_deg[cur]).astype(np.int64)
        dest = indices[indptr[cur] + offsets]
        terminals[movers] = dest
        if trace is not None:
            trace.append((movers, cur, dest))
        active = movers
    return terminals


def walk_steps_estimate(num_walks: int, alpha: float) -> float:
    """Expected total walk steps for ``num_walks`` alpha-decay walks."""
    return num_walks * (1.0 - alpha) / alpha


class WalkIndex:
    """Per-node store of precomputed walk terminals.

    Parameters
    ----------
    view:
        CSR snapshot the walks are sampled on.
    alpha:
        Walk termination probability.
    walks_per_unit:
        The product r_max * K: node v stores
        ceil(walks_per_unit * max(d_out(v), 1)) terminals.
    rng:
        Numpy generator used for sampling.
    track_edges:
        Record edge traversals during sampling so the index supports
        :meth:`apply_edge_update` without paying a lazy traced rebuild
        on the first incremental update.

    The index is valid only for the graph version it was built on;
    owners (FORA+/Agenda) are responsible for rebuilding, refreshing,
    or incrementally patching it after updates — that is precisely the
    update cost Quota models.
    """

    def __init__(
        self,
        view: CSRView,
        alpha: float,
        walks_per_unit: float,
        rng: np.random.Generator,
        track_edges: bool = False,
    ) -> None:
        self.alpha = alpha
        self.walks_per_unit = walks_per_unit
        self._rng = rng
        self.track_edges = track_edges
        self.edge_map: "EdgeWalkMap | None" = None
        self.view = view
        self._reset_layout(view)
        self._build_all()

    # ------------------------------------------------------------------
    @property
    def total_walks(self) -> int:
        """Total stored walks — the O(m r_max K) quantity of Table I."""
        return int(self.counts.sum())

    def _target_counts(self, out_deg: np.ndarray) -> np.ndarray:
        """The per-node walk budget ceil(wpu * max(d_out, 1)), min 1."""
        return np.maximum(
            np.ceil(
                self.walks_per_unit * np.maximum(out_deg, 1)
            ).astype(np.int64),
            1,
        )

    def _reset_layout(self, view: CSRView) -> None:
        """Packed rows sized to the snapshot's degrees (cap == count)."""
        self.counts = self._target_counts(view.out_deg)
        self.offsets = np.zeros(view.n + 1, dtype=np.int64)
        np.cumsum(self.counts, out=self.offsets[1:])
        self.caps = self.counts.copy()
        self._tail = int(self.offsets[-1])
        self.terminals = np.empty(self._tail, dtype=np.int64)

    def _build_all(self) -> None:
        if self.track_edges:
            from repro.ppr.incremental import make_edge_map

            self.edge_map = make_edge_map()
        else:
            self.edge_map = None
        self._resample_full_rows(
            self.view, np.arange(self.view.n, dtype=np.int64)
        )

    def _resample_full_rows(
        self, view: CSRView, node_indices: np.ndarray
    ) -> int:
        """Freshly sample every stored walk of the given rows in place.

        Rows must already be sized (``counts``/``caps``/``offsets``
        current).  Registers traversals in the edge map when tracking.
        Returns the number of walks sampled.
        """
        counts = self.counts[node_indices]
        total = int(counts.sum())
        if total == 0:
            return 0
        starts = np.repeat(node_indices, counts)
        exclusive = np.concatenate(([0], np.cumsum(counts)[:-1]))
        slots = np.arange(total, dtype=np.int64) - np.repeat(
            exclusive, counts
        )
        if self.edge_map is None:
            sampled = sample_walk_terminals(
                view, starts, self.alpha, self._rng
            )
        else:
            from repro.ppr.incremental import register_trace

            trace: "WalkTrace" = []
            sampled = sample_walk_terminals(
                view, starts, self.alpha, self._rng, trace=trace
            )
            register_trace(self.edge_map, starts, slots, trace)
        dest = np.repeat(self.offsets[node_indices], counts) + slots
        self.terminals[dest] = sampled
        return total

    def rebuild(self, view: CSRView) -> int:
        """Re-sample every stored walk on a fresh snapshot.

        Returns the number of walks sampled (the update cost driver for
        FORA+/SpeedPPR+ in ``rebuild`` maintenance mode, which
        regenerate the whole index per update).
        """
        self.view = view
        self._reset_layout(view)
        self._build_all()
        return self.total_walks

    # ------------------------------------------------------------------
    # slack-row plumbing (shared by refresh_nodes and the incremental
    # maintenance in repro.ppr.incremental)
    # ------------------------------------------------------------------
    def _relocate_row(self, i: int, need: int) -> None:
        """Move row ``i`` to the tail with capacity >= ``need``."""
        new_cap = max(4, 2 * need, 2 * int(self.caps[i]))
        if self._tail + new_cap > self.terminals.size:
            grow = max(self.terminals.size, new_cap, 64)
            self.terminals = np.concatenate(
                [self.terminals, np.empty(grow, dtype=np.int64)]
            )
        lo, length = int(self.offsets[i]), int(self.counts[i])
        self.terminals[self._tail:self._tail + length] = self.terminals[
            lo:lo + length
        ]
        self.offsets[i] = self._tail
        self.caps[i] = new_cap
        self._tail += new_cap

    def _ensure_node_rows(self, view: CSRView) -> int:
        """Append (and sample) rows for nodes the snapshot gained.

        Returns the number of walks sampled for the fresh rows.
        """
        n_old = int(self.counts.size)
        if view.n <= n_old:
            return 0
        fresh = np.arange(n_old, view.n, dtype=np.int64)
        new_counts = self._target_counts(view.out_deg[fresh])
        row_starts = self._tail + np.concatenate(
            ([0], np.cumsum(new_counts)[:-1])
        )
        offsets = np.empty(view.n + 1, dtype=np.int64)
        offsets[:n_old] = self.offsets[:n_old]
        offsets[n_old:view.n] = row_starts
        offsets[view.n] = self._tail + int(new_counts.sum())
        self.offsets = offsets
        self.counts = np.concatenate([self.counts, new_counts])
        self.caps = np.concatenate([self.caps, new_counts])
        need = self._tail + int(new_counts.sum())
        if need > self.terminals.size:
            grow = max(self.terminals.size, need - self.terminals.size, 64)
            self.terminals = np.concatenate(
                [self.terminals, np.empty(grow, dtype=np.int64)]
            )
        self._tail = need
        return self._resample_full_rows(view, fresh)

    # ------------------------------------------------------------------
    def refresh_nodes(self, view: CSRView, node_indices: np.ndarray) -> int:
        """Re-sample only the walks of ``node_indices`` (Agenda's lazy fix).

        The stored walk counts are re-derived from the snapshot's
        out-degrees — ``ceil(walks_per_unit * max(d_out, 1))`` — so the
        per-node budget tracks degree churn instead of drifting at its
        build-time value; rows whose budget grew past their capacity
        are relocated to the terminals-array tail (slack-slot layout).
        When the counts are unchanged the refresh is a pure in-place
        overwrite.  Returns the number of walks re-sampled.
        """
        self.view = view
        self._ensure_node_rows(view)
        node_indices = np.asarray(node_indices, dtype=np.int64)
        if node_indices.size == 0:
            return 0
        new_counts = self._target_counts(view.out_deg[node_indices])
        if self.edge_map is not None:
            from repro.ppr.incremental import unregister_rows

            unregister_rows(self.edge_map, node_indices, self.counts)
        for pos in range(int(node_indices.size)):
            i = int(node_indices[pos])
            need = int(new_counts[pos])
            if need > int(self.caps[i]):
                self._relocate_row(i, need)
            self.counts[i] = need
        return self._resample_full_rows(view, node_indices)

    def apply_edge_update(
        self, view: CSRView, u: int, v: int, kind: str
    ) -> int:
        """Incrementally patch the index for one applied edge update.

        ``view`` is the post-update snapshot, ``u``/``v`` dense indices
        and ``kind`` the resolved operation ("insert"/"delete").  Only
        the walks whose trajectory the mutation actually affects are
        resampled (suffix resampling from ``u``), and node ``u``'s walk
        budget grows/shrinks with its new out-degree.  See
        :mod:`repro.ppr.incremental` for the scheme and its exactness
        argument.  Returns the number of walks (re)sampled.
        """
        from repro.ppr.incremental import apply_edge_update

        return apply_edge_update(self, view, u, v, kind)

    def validate_edge_map(self, view: CSRView) -> list[str]:
        """Consistency audit of the edge→walk map (tests/bench oracle)."""
        from repro.ppr.incremental import validate_edge_map

        return validate_edge_map(self, view)

    # ------------------------------------------------------------------
    def terminals_for(self, node_index: int, count: int) -> np.ndarray:
        """Up to ``count`` stored terminals for walks starting at a node.

        If the caller needs more walks than stored (possible when the
        push left more residue than the index budget anticipated), the
        stored sample is recycled round-robin — a standard index-based
        implementation trick that keeps the estimator unbiased
        conditioned on the stored sample.
        """
        lo = int(self.offsets[node_index])
        stored = self.terminals[lo:lo + int(self.counts[node_index])]
        if count <= stored.size:
            return stored[:count]
        reps = int(math.ceil(count / stored.size))
        return np.tile(stored, reps)[:count]
