"""Top-k PPR algorithms: FORA-TopK and TopPPR.

Top-k SSPPR returns the k nodes with the highest PPR w.r.t. the source
(Section VIII-G).  Both methods reuse the Push+Walk machinery:

* :class:`ForaTopK` — FORA's iterative-refinement scheme: run the
  Push+Walk estimator with a coarse r_max and keep halving it until the
  top-k *set* stabilizes between consecutive rounds (the practical
  variant of FORA's confidence-bound termination) or the refinement
  floor is reached.
* :class:`TopPPR` — the three-phase scheme of Wei et al.: forward push,
  random walks, then *reverse pushes from the top candidates* to refine
  the scores that decide the final ranking (its distinguishing
  ``1/r_max_b`` query-cost term in Table I).

Both are index-free in this reproduction (as benchmarked in the paper):
updates only touch the graph, so ``t_u`` is a constant.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.ppr.base import (
    DynamicPPRAlgorithm,
    PPRParams,
    PPRVector,
    QueryStats,
    clip_unit,
)
from repro.ppr.forward_push import forward_push
from repro.ppr.pushwalk import add_walk_estimates
from repro.ppr.reverse_push import reverse_push


class ForaTopK(DynamicPPRAlgorithm):
    """FORA-TopK: Push+Walk with iterative r_max refinement.

    Hyperparameters
    ---------------
    r_max:
        Starting push threshold of the refinement schedule.

    Parameters
    ----------
    k:
        Number of results per query.
    max_rounds:
        Cap on refinement rounds (each round halves r_max).
    """

    name = "FORA-TopK"
    is_index_based = False
    hyperparameter_names = ("r_max",)

    def __init__(
        self,
        graph: DynamicGraph,
        params: PPRParams | None = None,
        r_max: float | None = None,
        k: int = 10,
        max_rounds: int = 4,
    ) -> None:
        super().__init__(graph, params)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.max_rounds = max_rounds
        self.r_max = r_max if r_max is not None else self.default_r_max()

    def default_r_max(self) -> float:
        """Start coarse: 4x FORA's balancing threshold."""
        view = self.view
        num_walks = self.params.num_walks(view.n)
        m = max(view.m, 1)
        return clip_unit(4.0 / math.sqrt(self.params.alpha * m * num_walks))

    def default_hyperparameters(self) -> dict[str, float]:
        return {"r_max": self.default_r_max()}

    # ------------------------------------------------------------------
    def _estimate(self, source: int, r_max: float, stats: QueryStats) -> np.ndarray:
        view = self.view
        with self.timers.measure("Forward Push"):
            push = forward_push(
                view, view.to_index(source), self.params.alpha, r_max
            )
            stats.pushes += push.pushes
        with self.timers.measure("Random Walk"):
            walk = add_walk_estimates(
                view,
                push.reserve,
                push.residue,
                self.params.alpha,
                self.params.num_walks(view.n),
                self._rng,
            )
            stats.walks += walk.num_walks
        return push.reserve

    def query(self, source: int) -> PPRVector:
        """Full SSPPR vector from the final refinement round."""
        view = self.view
        stats = QueryStats()
        r_max = self.r_max
        estimate = self._estimate(source, r_max, stats)
        previous_topk: list[int] | None = None
        for _ in range(1, self.max_rounds):
            topk = self._topk_nodes(estimate)
            if previous_topk == topk:
                break  # ranking stabilized
            previous_topk = topk
            r_max /= 2.0
            estimate = self._estimate(source, r_max, stats)
        stats.extra["final_r_max"] = r_max
        self.last_query_stats = stats
        return PPRVector(estimate, view, source)

    def query_topk(self, source: int) -> list[tuple[int, float]]:
        """The (node, score) list of the k best nodes."""
        return self.query(source).top_k(self.k)

    def _topk_nodes(self, estimate: np.ndarray) -> list[int]:
        k = min(self.k, estimate.size)
        idx = np.argpartition(-estimate, k - 1)[:k]
        idx = idx[np.argsort(-estimate[idx], kind="stable")]
        return [int(i) for i in idx]

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        with self.timers.measure("Graph Update"):
            resolved = update.apply(self.graph)
            self.view
        return resolved


class TopPPR(DynamicPPRAlgorithm):
    """TopPPR: forward push + walks + candidate reverse-push refinement.

    Hyperparameters
    ---------------
    r_max:
        Forward-push threshold.
    r_max_b:
        Reverse-push threshold used to refine candidate scores.

    Parameters
    ----------
    k:
        Number of results per query.
    candidate_factor:
        The refinement examines ``candidate_factor * k`` provisional
        winners (the paper's gamma-margin candidate set).
    """

    name = "TopPPR"
    is_index_based = False
    hyperparameter_names = ("r_max", "r_max_b")

    def __init__(
        self,
        graph: DynamicGraph,
        params: PPRParams | None = None,
        r_max: float | None = None,
        r_max_b: float | None = None,
        k: int = 10,
        candidate_factor: float = 2.0,
    ) -> None:
        super().__init__(graph, params)
        if k < 1:
            raise ValueError("k must be >= 1")
        if candidate_factor < 1.0:
            raise ValueError("candidate_factor must be >= 1")
        self.k = k
        self.candidate_factor = candidate_factor
        defaults = self.default_hyperparameters()
        self.r_max = r_max if r_max is not None else defaults["r_max"]
        self.r_max_b = r_max_b if r_max_b is not None else defaults["r_max_b"]

    def default_hyperparameters(self) -> dict[str, float]:
        view = self.view
        num_walks = self.params.num_walks(view.n)
        m = max(view.m, 1)
        return {
            "r_max": clip_unit(1.0 / math.sqrt(self.params.alpha * m * num_walks)),
            "r_max_b": clip_unit(
                math.sqrt(self.params.alpha / max(view.n, 2))
            ),
        }

    # ------------------------------------------------------------------
    def query(self, source: int) -> PPRVector:
        """SSPPR vector whose top candidates carry refined scores."""
        view = self.view
        stats = QueryStats()
        with self.timers.measure("Forward Push"):
            push = forward_push(
                view, view.to_index(source), self.params.alpha, self.r_max
            )
            stats.pushes = push.pushes
        with self.timers.measure("Random Walk"):
            walk = add_walk_estimates(
                view,
                push.reserve,
                push.residue,
                self.params.alpha,
                self.params.num_walks(view.n),
                self._rng,
            )
            stats.walks = walk.num_walks
        estimate = push.reserve
        with self.timers.measure("Reverse Push"):
            candidates = self._candidate_set(estimate)
            source_index = view.to_index(source)
            for c in candidates:
                back = reverse_push(
                    view, int(c), self.params.alpha, self.r_max_b
                )
                # pi(s, c) = reserve_b(s) + sum_v pi(s, v) residue_b(v);
                # plugging the Monte-Carlo estimate in for pi(s, .) gives
                # a second, backward estimator — average the two.
                refined = float(
                    back.reserve[source_index]
                    + np.dot(estimate, back.residue)
                )
                estimate[c] = 0.5 * (estimate[c] + refined)
            stats.extra["candidates"] = len(candidates)
        self.last_query_stats = stats
        return PPRVector(estimate, view, source)

    def query_topk(self, source: int) -> list[tuple[int, float]]:
        return self.query(source).top_k(self.k)

    def _candidate_set(self, estimate: np.ndarray) -> np.ndarray:
        count = min(
            int(math.ceil(self.candidate_factor * self.k)), estimate.size
        )
        if count == 0:
            return np.empty(0, dtype=np.int64)
        idx = np.argpartition(-estimate, count - 1)[:count]
        return idx

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        with self.timers.measure("Graph Update"):
            resolved = update.apply(self.graph)
            self.view
        return resolved
