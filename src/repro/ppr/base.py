"""Shared abstractions for the PPR algorithms.

* :class:`PPRParams` — the (alpha, epsilon, delta, p_f) accuracy setting
  of Definition 1 plus the derived walk count K.
* :class:`PPRVector` — a dense single-source PPR estimate with node-id
  accessors and top-k extraction.
* :class:`SubProcessTimers` — wall-clock accounting per sub-process
  (Forward Push, Random Walk, ...), feeding both the tau-calibration of
  Quota (Step 1) and the Table VIII cost-balance experiment.
* :class:`DynamicPPRAlgorithm` — the query/update interface every base
  algorithm implements and Quota configures.
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.ppr.csr import CSRView, csr_view

# Default cap on the walk-count parameter K.  The paper's theoretical K
# with delta = p_f = 1/n is Theta(n log n), far beyond what pure Python
# sustains at interactive rates; capping K preserves every push/walk
# trade-off Quota tunes (see DESIGN.md, substitutions table).
DEFAULT_WALK_CAP = 20_000


@dataclass(frozen=True, slots=True)
class PPRParams:
    """Accuracy configuration of an SSPPR query (Definition 1).

    Parameters
    ----------
    alpha:
        Teleport (termination) probability of the random walk.
    epsilon:
        Relative error bound of Eq. 1.
    delta:
        PPR threshold above which the guarantee applies.  ``None``
        means the paper's default 1/n, resolved against the live graph.
    p_f:
        Failure probability.  ``None`` means 1/n.
    walk_cap:
        Upper cap applied to the derived walk count K (reproduction
        substitution; see DESIGN.md).
    """

    alpha: float = 0.2
    epsilon: float = 0.5
    delta: float | None = None
    p_f: float | None = None
    walk_cap: int = DEFAULT_WALK_CAP

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")
        for name in ("delta", "p_f"):
            value = getattr(self, name)
            if value is not None and not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")
        if self.walk_cap < 1:
            raise ValueError("walk_cap must be >= 1")

    def resolved_delta(self, n: int) -> float:
        """delta, defaulting to 1/n as in the paper's experiments."""
        return self.delta if self.delta is not None else 1.0 / max(n, 2)

    def resolved_p_f(self, n: int) -> float:
        """p_f, defaulting to 1/n as in the paper's experiments."""
        return self.p_f if self.p_f is not None else 1.0 / max(n, 2)

    def num_walks(self, n: int) -> int:
        """The FORA walk count K = (2eps/3 + 2) ln(2/p_f) / (eps^2 delta).

        Capped at ``walk_cap`` (see class docstring).
        """
        delta = self.resolved_delta(n)
        p_f = self.resolved_p_f(n)
        k = (2 * self.epsilon / 3 + 2) * math.log(2 / p_f) / (self.epsilon**2 * delta)
        return max(1, min(int(math.ceil(k)), self.walk_cap))


class PPRVector:
    """Single-source PPR estimate over a graph snapshot.

    Wraps the dense estimate array together with the CSR snapshot it was
    computed on, so callers can address entries by node id.
    """

    __slots__ = ("values", "_view", "source")

    def __init__(self, values: np.ndarray, view: CSRView, source: int) -> None:
        self.values = values
        self._view = view
        self.source = source

    def __getitem__(self, node: int) -> float:
        return float(self.values[self._view.to_index(node)])

    def __len__(self) -> int:
        return int(self.values.size)

    def __iter__(self) -> Iterator[int]:
        return iter(int(v) for v in self._view.nodes)

    def get(self, node: int, default: float = 0.0) -> float:
        try:
            return self[node]
        except KeyError:
            return default

    def as_dict(self, threshold: float = 0.0) -> dict[int, float]:
        """Materialize {node: estimate} for entries > ``threshold``."""
        mask = self.values > threshold
        nodes = self._view.nodes[mask]
        vals = self.values[mask]
        return {int(v): float(p) for v, p in zip(nodes, vals)}

    def top_k(self, k: int) -> list[tuple[int, float]]:
        """The k largest (node, estimate) pairs, descending by estimate."""
        k = min(k, self.values.size)
        if k == 0:
            return []
        idx = np.argpartition(-self.values, k - 1)[:k]
        idx = idx[np.argsort(-self.values[idx], kind="stable")]
        return [(int(self._view.nodes[i]), float(self.values[i])) for i in idx]

    def total_mass(self) -> float:
        return float(self.values.sum())


class SubProcessTimers:
    """Accumulates wall time and invocation counts per sub-process.

    The paper's cost model (Table VI) is built from exactly these
    measurements: "the values of tau are easy to be gauged as we can
    independently time the actual sub-process costs".
    """

    def __init__(self) -> None:
        self._total: dict[str, float] = {}
        self._count: dict[str, int] = {}

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager charging elapsed wall time to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._total[name] = self._total.get(name, 0.0) + elapsed
            self._count[name] = self._count.get(name, 0) + 1

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Charge a pre-measured duration (used by vectorized paths)."""
        self._total[name] = self._total.get(name, 0.0) + seconds
        self._count[name] = self._count.get(name, 0) + count

    def total(self, name: str) -> float:
        return self._total.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._count.get(name, 0)

    def mean(self, name: str) -> float:
        count = self._count.get(name, 0)
        return self._total.get(name, 0.0) / count if count else 0.0

    def names(self) -> list[str]:
        return sorted(self._total)

    def snapshot(self) -> dict[str, float]:
        """Copy of the accumulated totals (seconds per sub-process)."""
        return dict(self._total)

    def reset(self) -> None:
        self._total.clear()
        self._count.clear()


@dataclass(slots=True)
class QueryStats:
    """Bookkeeping for the most recent query (exposed for tests/benches)."""

    pushes: int = 0
    walks: int = 0
    walk_steps: int = 0
    refreshed_nodes: int = 0
    extra: dict = field(default_factory=dict)


class DynamicPPRAlgorithm(ABC):
    """A PPR algorithm serving interleaved queries and edge updates.

    Subclasses implement :meth:`query` and :meth:`apply_update` and
    declare their tunable hyperparameters.  Quota treats instances
    uniformly through this interface: it reads/writes hyperparameters,
    reads the sub-process timers for calibration, and replays workloads.
    """

    #: short name used in reports ("Agenda", "FORA+", ...)
    name: str = "base"
    #: True when updates must maintain a precomputed walk index
    is_index_based: bool = False
    #: names of tunable hyperparameters, in beta-vector order
    hyperparameter_names: tuple[str, ...] = ()
    #: kernel engines this algorithm can execute (subset of
    #: ``repro.ppr.kernels.ENGINES``); algorithms opt in per engine
    supported_engines: tuple[str, ...] = ("scalar",)

    def __init__(
        self, graph: DynamicGraph, params: PPRParams | None = None
    ) -> None:
        self.graph = graph
        self.params = params or PPRParams()
        self.timers = SubProcessTimers()
        self.last_query_stats = QueryStats()
        self.engine = "scalar"
        self._rng = np.random.default_rng()

    def seed(self, seed: int) -> None:
        """Reseed the algorithm's internal randomness (reproducibility).

        Index-based algorithms also rebuild their walk index from the
        new generator (via the hyperparameter-change hook) so that two
        identically seeded instances produce identical estimates.
        """
        self._rng = np.random.default_rng(seed)
        self._on_hyperparameters_changed()

    # -- hyperparameters ------------------------------------------------
    def get_hyperparameters(self) -> dict[str, float]:
        """Current values of the tunable hyperparameters."""
        return {name: getattr(self, name) for name in self.hyperparameter_names}

    def set_hyperparameters(self, **values: float) -> None:
        """Set tunable hyperparameters; unknown names raise ValueError.

        As in the paper, tuning these never affects the worst-case
        accuracy guarantee — only the split of work between
        sub-processes.
        """
        for name, value in values.items():
            if name not in self.hyperparameter_names:
                raise ValueError(
                    f"{self.name} has no hyperparameter {name!r}; "
                    f"tunable: {self.hyperparameter_names}"
                )
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")
            setattr(self, name, float(value))
        self._on_hyperparameters_changed()

    def _on_hyperparameters_changed(self) -> None:
        """Hook for index-based algorithms to resize their index."""

    # -- kernel engine ----------------------------------------------------
    def set_engine(self, engine: str) -> None:
        """Select the push-kernel engine for this algorithm instance.

        ``engine`` must be ``"auto"`` or a valid kernel name this
        algorithm supports (:attr:`supported_engines`).  ``"auto"``
        hands each call to the :mod:`repro.ppr.dispatch` cost-model
        router; on algorithms without vectorized paths it degrades to
        ``"scalar"`` (there is nothing to route).
        """
        from repro.ppr.dispatch import AUTO, resolve_engine_choice

        resolve_engine_choice(engine)
        if engine == AUTO:
            self.engine = AUTO if len(self.supported_engines) > 1 else "scalar"
            return
        if engine not in self.supported_engines:
            raise ValueError(
                f"{self.name} does not support engine {engine!r}; "
                f"supported: {self.supported_engines}"
            )
        self.engine = engine

    # -- views -----------------------------------------------------------
    @property
    def view(self) -> CSRView:
        """CSR snapshot of the current graph (cached per version)."""
        return csr_view(self.graph)

    # -- the core interface ----------------------------------------------
    @abstractmethod
    def query(self, source: int) -> PPRVector:
        """Answer an SSPPR query from ``source`` on the current graph."""

    @abstractmethod
    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        """Apply one edge arrival (graph + any index maintenance).

        Returns the resolved update (insert/delete).
        """

    def query_batch(self, sources: Sequence[int]) -> list[PPRVector]:
        """Answer B same-snapshot queries (one result per source).

        The default loops :meth:`query`; algorithms with a ``batched``
        engine override this to run all sources through one shared
        ``(B, n)`` kernel sweep.  Callers must not interleave updates
        within a batch — the serving runtime flushes updates between
        batches to keep every row on one snapshot.
        """
        return [self.query(source) for source in sources]

    # -- defaults shared by Push+Walk algorithms --------------------------
    def default_hyperparameters(self) -> dict[str, float]:
        """Paper-default hyperparameter values for the current graph."""
        return {}

    def reset_to_defaults(self) -> None:
        defaults = self.default_hyperparameters()
        if defaults:
            self.set_hyperparameters(**defaults)

    def __repr__(self) -> str:
        hps = ", ".join(
            f"{k}={v:.3g}" for k, v in self.get_hyperparameters().items()
        )
        return f"{type(self).__name__}({hps})"


def clip_unit(value: float, lo: float = 1e-12, hi: float = 1.0 - 1e-12) -> float:
    """Clamp a hyperparameter into the open unit interval."""
    return min(max(value, lo), hi)
