"""Incrementally maintained CSR views of a dynamic graph.

All inner loops of the PPR algorithms — forward/reverse push,
vectorized random walks, power iteration — run over flat numpy arrays
rather than Python adjacency dicts.  :class:`CSRView` exposes a graph
as those arrays.

The seed implementation rebuilt the whole snapshot in pure-Python
loops on *every* version bump, so the paper's update service time t̃u
(the quantity Quota's Table I cost model is calibrated against) was
dominated by an O(n + m) artifact of the reproduction.  This module
instead keeps one mutable :class:`_CSRStore` per graph and patches it
in O(deg) amortized per edge arrival, consuming the structural update
log :class:`~repro.graph.DynamicGraph` publishes:

* **Slack-slot layout** — each adjacency row owns a capacity ≥ its
  degree inside one flat array.  An insert appends into the row's
  spare slots; a full row is relocated to the array tail with doubled
  capacity (classic amortized growth), abandoning its old slots as
  *slack*.  A delete swap-removes within the row.
* **Lazy catch-up** — :func:`csr_view` replays only the log entries
  since the store's version, at query (or update) time.  Between
  updates, repeated calls are pure cache hits.
* **Threshold rebuild** — when accumulated slack exceeds
  ``REBUILD_SLACK_RATIO`` × live entries the store compacts via a full
  rebuild, as do rare non-incremental events (node removal,
  :meth:`~repro.graph.DynamicGraph.restore`, log-window overflow).

Array contract (changed from the seed): the out-row of node index
``i`` occupies ``indices[indptr[i] : indptr[i] + out_deg[i]]`` (same
for in-rows).  ``indptr[i + 1]`` is **not** the end of row ``i``
unless :attr:`CSRView.is_packed` is true; consumers needing strictly
packed arrays (e.g. scipy matrix construction) use
:meth:`CSRView.packed_out` / :meth:`CSRView.packed_in`.

Every :func:`csr_view` call returns a *new lightweight facade* when
the graph changed (so object identity remains a valid staleness probe
for downstream caches such as walk indexes), but facades share the
store's arrays.  A facade is guaranteed consistent only until the
graph's next mutation is caught up; after that, adjacency reads
through an old facade are undefined — only its node-id mapping stays
valid (node slots are append-only between full rebuilds), which is
what :class:`~repro.ppr.base.PPRVector` needs.

Instrumentation: the module records ``csr_cache_hits``,
``csr_cache_misses``, ``csr_delta_applies``, ``csr_rebuilds`` and
``csr_compactions`` in the default :mod:`repro.obs` registry.
"""

from __future__ import annotations

import numpy as np

from repro.graph import digraph as _digraph
from repro.graph.digraph import DynamicGraph
from repro.obs import get_metrics

#: compact (full rebuild) once slack exceeds this fraction of the live
#: entries in either direction's adjacency array
REBUILD_SLACK_RATIO = 0.5

#: slack is never considered excessive below this absolute floor, so
#: small graphs do not thrash rebuilds
SLACK_FLOOR = 256

_hits = get_metrics().counter("csr_cache_hits")
_misses = get_metrics().counter("csr_cache_misses")
_delta_applies = get_metrics().counter("csr_delta_applies")
_rebuilds = get_metrics().counter("csr_rebuilds")
_compactions = get_metrics().counter("csr_compactions")


class CSRView:
    """Array view of a graph at one version.

    Attributes
    ----------
    nodes:
        Node ids in index order; ``nodes[i]`` is the id of index ``i``.
    index:
        Mapping node id -> dense index (None on the identity fast path).
    indptr, indices:
        Out-adjacency: the out-neighbors (as dense indices) of node
        index ``i`` are ``indices[indptr[i] : indptr[i] + out_deg[i]]``.
    in_indptr, in_indices:
        In-adjacency in the same form (for reverse push).
    out_deg, in_deg:
        Degree arrays.
    is_packed:
        True when both adjacency arrays are strictly packed (row ends
        coincide with the next row's start and ``indptr[n] == m``).
        Fresh builds are packed; delta-patched views generally are not.
    """

    __slots__ = (
        "nodes",
        "index",
        "indptr",
        "indices",
        "in_indptr",
        "in_indices",
        "out_deg",
        "in_deg",
        "n",
        "m",
        "version",
        "identity_ids",
        "is_packed",
    )

    def __init__(self, graph: DynamicGraph | None = None) -> None:
        if graph is not None:
            _build_packed(graph, self)

    # ------------------------------------------------------------------
    def to_index(self, node: int) -> int:
        """Dense index of a node id."""
        if self.identity_ids:
            if not 0 <= node < self.n:
                raise KeyError(f"node {node} not in graph snapshot")
            return node
        return self.index[node]

    def to_node(self, i: int) -> int:
        """Node id of a dense index."""
        return int(self.nodes[i])

    def out_neighbors_of(self, i: int) -> np.ndarray:
        """Out-neighbor indices of node index ``i``."""
        start = self.indptr[i]
        return self.indices[start:start + self.out_deg[i]]

    def in_neighbors_of(self, i: int) -> np.ndarray:
        """In-neighbor indices of node index ``i``."""
        start = self.in_indptr[i]
        return self.in_indices[start:start + self.in_deg[i]]

    # ------------------------------------------------------------------
    def packed_out(self) -> tuple[np.ndarray, np.ndarray]:
        """Out-adjacency as strictly packed ``(indptr, indices)``.

        Zero-copy when :attr:`is_packed`; otherwise a vectorized gather
        producing fresh arrays of exactly ``m`` entries.
        """
        if self.is_packed:
            return self.indptr, self.indices
        return _pack_rows(self.indptr, self.indices, self.out_deg, self.n)

    def packed_in(self) -> tuple[np.ndarray, np.ndarray]:
        """In-adjacency as strictly packed ``(indptr, indices)``."""
        if self.is_packed:
            return self.in_indptr, self.in_indices
        return _pack_rows(self.in_indptr, self.in_indices, self.in_deg, self.n)


def _pack_rows(
    starts: np.ndarray, data: np.ndarray, lens: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Gather slack-slot rows into packed (indptr, indices) arrays."""
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    total = int(indptr[-1])
    offsets = np.arange(total, dtype=np.int64) - np.repeat(indptr[:-1], lens)
    src = np.repeat(starts[:n], lens) + offsets
    return indptr, data[src]


def _build_packed(graph: DynamicGraph, view: CSRView) -> None:
    """Populate ``view`` with a packed snapshot of ``graph``."""
    view.version = graph.version
    view.nodes = np.fromiter(
        graph.nodes(), dtype=np.int64, count=graph.num_nodes
    )
    view.n = int(view.nodes.size)
    view.m = graph.num_edges
    view.is_packed = True
    # Fast path: contiguous ids 0..n-1 need no dict lookups.
    view.identity_ids = bool(
        view.n == 0
        or (
            view.nodes[0] == 0
            and view.nodes[-1] == view.n - 1
            and np.all(np.diff(view.nodes) == 1)
        )
    )
    if view.identity_ids:
        view.index = None
    else:
        view.index = {int(v): i for i, v in enumerate(view.nodes)}

    out_deg = np.empty(view.n, dtype=np.int64)
    in_deg = np.empty(view.n, dtype=np.int64)
    for i in range(view.n):
        v = int(view.nodes[i])
        out_deg[i] = graph.out_degree(v)
        in_deg[i] = graph.in_degree(v)
    view.out_deg = out_deg
    view.in_deg = in_deg

    view.indptr = np.zeros(view.n + 1, dtype=np.int64)
    np.cumsum(out_deg, out=view.indptr[1:])
    view.indices = np.empty(int(view.indptr[-1]), dtype=np.int64)
    view.in_indptr = np.zeros(view.n + 1, dtype=np.int64)
    np.cumsum(in_deg, out=view.in_indptr[1:])
    view.in_indices = np.empty(int(view.in_indptr[-1]), dtype=np.int64)

    to_index = view.to_index
    pos = view.indptr[:-1].copy()
    in_pos = view.in_indptr[:-1].copy()
    for i in range(view.n):
        v = int(view.nodes[i])
        for w in graph.out_neighbors(v):
            j = to_index(w)
            view.indices[pos[i]] = j
            pos[i] += 1
        for w in graph.in_neighbors(v):
            j = to_index(w)
            view.in_indices[in_pos[i]] = j
            in_pos[i] += 1


class _Adjacency:
    """One direction's slack-slot adjacency: rows with spare capacity
    inside a flat array, O(deg) amortized insert and delete."""

    __slots__ = ("starts", "lens", "caps", "data", "tail", "live")

    def __init__(
        self, starts: np.ndarray, data: np.ndarray, lens: np.ndarray
    ) -> None:
        # from packed arrays: capacity == length, no slack
        self.starts = starts
        self.lens = lens
        self.caps = lens.copy()
        self.data = data
        self.tail = int(data.size)
        self.live = int(lens.sum())

    @property
    def slack(self) -> int:
        """Dead + spare slots below the high-water mark."""
        return self.tail - self.live

    def insert(self, i: int, j: int) -> None:
        if self.lens[i] == self.caps[i]:
            self._relocate(i)
        self.data[self.starts[i] + self.lens[i]] = j
        self.lens[i] += 1
        self.live += 1

    def _relocate(self, i: int) -> None:
        """Move row ``i`` to the tail with doubled capacity."""
        new_cap = max(4, 2 * int(self.caps[i]))
        if self.tail + new_cap > self.data.size:
            grow = max(self.data.size, new_cap, 64)
            self.data = np.concatenate(
                [self.data, np.empty(grow, dtype=np.int64)]
            )
        start, length = int(self.starts[i]), int(self.lens[i])
        self.data[self.tail:self.tail + length] = self.data[
            start:start + length
        ]
        self.starts[i] = self.tail
        self.caps[i] = new_cap
        self.tail += new_cap

    def remove(self, i: int, j: int) -> None:
        start, length = int(self.starts[i]), int(self.lens[i])
        row = self.data[start:start + length]
        pos = int(np.nonzero(row == j)[0][0])
        row[pos] = row[length - 1]
        self.lens[i] -= 1
        self.live -= 1

    def append_row(self) -> None:
        """Add an empty row (capacity 0; first insert relocates it)."""
        n = self.lens.size
        starts = np.empty(n + 2, dtype=np.int64)
        starts[:n] = self.starts[:n]
        starts[n] = self.tail
        starts[n + 1] = self.tail
        self.starts = starts
        self.lens = np.append(self.lens, 0)
        self.caps = np.append(self.caps, 0)


class _CSRStore:
    """Per-graph mutable CSR state plus the facade-view factory."""

    __slots__ = (
        "nodes",
        "index",
        "identity",
        "n",
        "m",
        "out",
        "inc",
        "packed",
        "version",
        "view",
    )

    def __init__(self, graph: DynamicGraph) -> None:
        self._full_build(graph)

    # ------------------------------------------------------------------
    def _full_build(self, graph: DynamicGraph) -> None:
        _rebuilds.inc()
        view = CSRView(graph)
        self.nodes = view.nodes
        self.index = view.index
        self.identity = view.identity_ids
        self.n = view.n
        self.m = view.m
        self.out = _Adjacency(view.indptr, view.indices, view.out_deg)
        self.inc = _Adjacency(view.in_indptr, view.in_indices, view.in_deg)
        self.packed = True
        self.version = graph.version
        self.view = view

    def _make_view(self) -> CSRView:
        """O(1) facade over the store's current arrays."""
        view = CSRView()
        view.nodes = self.nodes
        view.index = self.index
        view.identity_ids = self.identity
        view.n = self.n
        view.m = self.m
        view.indptr = self.out.starts
        view.indices = self.out.data
        view.out_deg = self.out.lens
        view.in_indptr = self.inc.starts
        view.in_indices = self.inc.data
        view.in_deg = self.inc.lens
        view.version = self.version
        view.is_packed = self.packed
        return view

    # ------------------------------------------------------------------
    def catch_up(self, graph: DynamicGraph) -> CSRView:
        """Bring the store to ``graph.version`` and return a fresh view."""
        if graph.version == self.version:
            _hits.inc()
            return self.view
        _misses.inc()
        entries = graph.updates_since(self.version)
        ok = entries is not None
        applied = 0
        if ok:
            for op, u, v in entries:
                if not self._apply_entry(op, u, v):
                    ok = False
                    break
                applied += 1
        if ok and self._excess_slack():
            _compactions.inc()
            ok = False
        if ok:
            _delta_applies.inc(applied)
            self.version = graph.version
            self.view = self._make_view()
        else:
            self._full_build(graph)
        return self.view

    def _excess_slack(self) -> bool:
        floor = max(int(REBUILD_SLACK_RATIO * max(self.m, 1)), SLACK_FLOOR)
        return self.out.slack > floor or self.inc.slack > floor

    # ------------------------------------------------------------------
    def _dense(self, node: int) -> int | None:
        if self.identity:
            return node if 0 <= node < self.n else None
        return self.index.get(node)

    def _apply_entry(self, op: str, u: int, v: int) -> bool:
        """Patch one logged mutation; False forces a full rebuild."""
        if op == _digraph.ADD_EDGE:
            ui = self._dense(u)
            vi = self._dense(v)
            if ui is None or vi is None:
                return False
            self.out.insert(ui, vi)
            self.inc.insert(vi, ui)
            self.m += 1
            self.packed = False
            return True
        if op == _digraph.REMOVE_EDGE:
            ui = self._dense(u)
            vi = self._dense(v)
            if ui is None or vi is None:
                return False
            self.out.remove(ui, vi)
            self.inc.remove(vi, ui)
            self.m -= 1
            self.packed = False
            return True
        if op == _digraph.ADD_NODE:
            return self._append_node(u)
        # REMOVE_NODE / RESET (and anything unknown): not incremental
        return False

    def _append_node(self, node: int) -> bool:
        new_index = self.n
        if self.identity and node != new_index:
            # non-contiguous id breaks the identity fast path; fall back
            # to an explicit mapping built once
            self.index = {int(x): i for i, x in enumerate(self.nodes)}
            self.identity = False
        if self.index is not None:
            if node in self.index:
                return False
            self.index[node] = new_index
        self.nodes = np.append(self.nodes, np.int64(node))
        self.out.append_row()
        self.inc.append_row()
        self.n += 1
        return True


def csr_view(graph: DynamicGraph) -> CSRView:
    """Return the (incrementally maintained) CSR view of ``graph``.

    The per-graph store catches up lazily on the graph's update log:
    repeated calls between updates are cache hits, a call after k edge
    arrivals patches the arrays in O(sum of the touched degrees), and
    only node removals, restores, log overflows, or slack past
    :data:`REBUILD_SLACK_RATIO` trigger a full O(n + m) rebuild.
    """
    store = graph._csr_cache
    if not isinstance(store, _CSRStore):
        _misses.inc()
        store = _CSRStore(graph)
        graph._csr_cache = store
        return store.view
    return store.catch_up(graph)
