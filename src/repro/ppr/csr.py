"""Cached CSR (compressed sparse row) views of a dynamic graph.

All inner loops of the PPR algorithms — forward/reverse push, vectorized
random walks, power iteration — run over flat numpy arrays rather than
Python adjacency dicts.  :class:`CSRView` snapshots a
:class:`~repro.graph.DynamicGraph` into those arrays and is cached per
graph *version*, so consecutive queries between updates rebuild nothing,
while any edge insert/delete transparently invalidates the view.

This is the Python analogue of the compressed adjacency arrays the
reference C++ implementations use, and is the main reason a pure-Python
reproduction of the paper's latency-sensitive experiments is feasible.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.graph.digraph import DynamicGraph


class CSRView:
    """Immutable array snapshot of a graph.

    Attributes
    ----------
    nodes:
        Node ids in index order; ``nodes[i]`` is the id of index ``i``.
    index:
        Mapping node id -> dense index.
    indptr, indices:
        Out-adjacency in CSR form: the out-neighbors (as dense indices)
        of node index ``i`` are ``indices[indptr[i]:indptr[i + 1]]``.
    in_indptr, in_indices:
        In-adjacency in the same form (for reverse push).
    out_deg, in_deg:
        Degree arrays.
    """

    __slots__ = (
        "nodes",
        "index",
        "indptr",
        "indices",
        "in_indptr",
        "in_indices",
        "out_deg",
        "in_deg",
        "n",
        "m",
        "version",
        "identity_ids",
    )

    def __init__(self, graph: DynamicGraph) -> None:
        self.version = graph.version
        self.nodes = np.fromiter(graph.nodes(), dtype=np.int64, count=graph.num_nodes)
        self.n = int(self.nodes.size)
        self.m = graph.num_edges
        # Fast path: contiguous ids 0..n-1 need no dict lookups.
        self.identity_ids = bool(
            self.n == 0 or (self.nodes[0] == 0 and self.nodes[-1] == self.n - 1
                            and np.all(np.diff(self.nodes) == 1))
        )
        if self.identity_ids:
            self.index = None
        else:
            self.index = {int(v): i for i, v in enumerate(self.nodes)}

        out_deg = np.empty(self.n, dtype=np.int64)
        in_deg = np.empty(self.n, dtype=np.int64)
        for i in range(self.n):
            v = int(self.nodes[i])
            out_deg[i] = graph.out_degree(v)
            in_deg[i] = graph.in_degree(v)
        self.out_deg = out_deg
        self.in_deg = in_deg

        self.indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(out_deg, out=self.indptr[1:])
        self.indices = np.empty(int(self.indptr[-1]), dtype=np.int64)
        self.in_indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(in_deg, out=self.in_indptr[1:])
        self.in_indices = np.empty(int(self.in_indptr[-1]), dtype=np.int64)

        to_index = self.to_index
        pos = self.indptr[:-1].copy()
        in_pos = self.in_indptr[:-1].copy()
        for i in range(self.n):
            v = int(self.nodes[i])
            for w in graph.out_neighbors(v):
                j = to_index(w)
                self.indices[pos[i]] = j
                pos[i] += 1
            for w in graph.in_neighbors(v):
                j = to_index(w)
                self.in_indices[in_pos[i]] = j
                in_pos[i] += 1

    # ------------------------------------------------------------------
    def to_index(self, node: int) -> int:
        """Dense index of a node id."""
        if self.identity_ids:
            if not 0 <= node < self.n:
                raise KeyError(f"node {node} not in graph snapshot")
            return node
        return self.index[node]

    def to_node(self, i: int) -> int:
        """Node id of a dense index."""
        return int(self.nodes[i])

    def out_neighbors_of(self, i: int) -> np.ndarray:
        """Out-neighbor indices of node index ``i``."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def in_neighbors_of(self, i: int) -> np.ndarray:
        """In-neighbor indices of node index ``i``."""
        return self.in_indices[self.in_indptr[i]:self.in_indptr[i + 1]]


_cache: "weakref.WeakKeyDictionary[DynamicGraph, CSRView]" = (
    weakref.WeakKeyDictionary()
)


def csr_view(graph: DynamicGraph) -> CSRView:
    """Return the (possibly cached) CSR snapshot of ``graph``.

    The snapshot is rebuilt only when the graph's version counter has
    moved since the last call — queries between updates share one view.
    """
    view = _cache.get(graph)
    if view is None or view.version != graph.version:
        view = CSRView(graph)
        _cache[graph] = view
    return view
