"""Agenda (Mo & Luo, TKDE 2022) — dynamic PPR with lazy index update.

Agenda keeps the FORA+ walk index across updates instead of rebuilding
it.  Each edge update (u, v):

1. mutates the graph,
2. runs a *reverse push* from u to find which nodes' stored walks pass
   through the changed edge (those are the walks the update can bias),
3. charges every such node w an *index inaccuracy* increment
   proportional to pi(w, u) / (alpha * d_out(u)) — Theorem 1 of the
   Agenda paper, quoted as Eq. 16 in this paper's appendix.

A query then performs forward push and, *only if* the accumulated
inaccuracy reachable through its residues exceeds the error budget,
lazily re-samples the walks of the dirtiest nodes ("Lazy Index Update")
before the walk phase.  This gives the Table VI cost profile:

=====================  =========================================
Sub-process            Cost
=====================  =========================================
Forward Push           tau_1 / r_max
Lazy Index Update      tau_2 * lambda_u r_max (n r_max^b + 1) / lambda_q
Random Walk            tau_3 * r_max
Reverse Push           tau_4 / r_max^b
Index Inaccuracy Upd.  tau_5 (O(n))
=====================  =========================================
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.ppr.base import (
    DynamicPPRAlgorithm,
    PPRParams,
    PPRVector,
    QueryStats,
    clip_unit,
)
from repro.ppr.forward_push import forward_push
from repro.ppr.pushwalk import add_walk_estimates
from repro.ppr.random_walk import WalkIndex
from repro.ppr.reverse_push import reverse_push


class Agenda(DynamicPPRAlgorithm):
    """Dynamic PPR with inaccuracy-tracked lazy index maintenance.

    Hyperparameters
    ---------------
    r_max:
        Forward-push threshold (default 1/(alpha K), the paper's
        r-bar_max for Agenda).
    r_max_b:
        Reverse-push threshold used during updates (default 1/n).

    Parameters
    ----------
    theta:
        Fraction of the epsilon * delta error budget that stale walks
        may consume before a query forces a lazy refresh (default 0.5).
    """

    name = "Agenda"
    is_index_based = True
    hyperparameter_names = ("r_max", "r_max_b")

    def __init__(
        self,
        graph: DynamicGraph,
        params: PPRParams | None = None,
        r_max: float | None = None,
        r_max_b: float | None = None,
        theta: float = 0.5,
    ) -> None:
        super().__init__(graph, params)
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        self.theta = theta
        defaults = self.default_hyperparameters()
        self.r_max = r_max if r_max is not None else defaults["r_max"]
        self.r_max_b = r_max_b if r_max_b is not None else defaults["r_max_b"]
        self._index: WalkIndex | None = None
        self._sigma = np.zeros(self.view.n, dtype=np.float64)
        self._ensure_index()

    # ------------------------------------------------------------------
    def default_hyperparameters(self) -> dict[str, float]:
        """Paper defaults: r_max = 1/(alpha K), r_max_b = 1/n."""
        view = self.view
        k = self.params.num_walks(view.n)
        return {
            "r_max": clip_unit(1.0 / (self.params.alpha * k)),
            "r_max_b": clip_unit(1.0 / max(view.n, 2)),
        }

    @property
    def index(self) -> WalkIndex:
        self._ensure_index()
        return self._index

    @property
    def sigma(self) -> np.ndarray:
        """Per-node index inaccuracy upper bounds (dense index order)."""
        return self._sigma

    def inaccuracy_tolerance(self) -> float:
        """Stale-walk error budget theta * epsilon * delta of a query."""
        n = max(self.view.n, 2)
        return (
            self.theta * self.params.epsilon * self.params.resolved_delta(n)
        )

    def _walks_per_unit(self) -> float:
        return self.r_max * self.params.num_walks(self.view.n)

    def _ensure_index(self) -> None:
        view = self.view
        if self._index is None:
            with self.timers.measure("Index Build"):
                self._index = WalkIndex(
                    view, self.params.alpha, self._walks_per_unit(), self._rng
                )
        if self._sigma.size != view.n:
            # Node set grew (update introduced a node): pad with zeros.
            padded = np.zeros(view.n, dtype=np.float64)
            padded[: min(self._sigma.size, view.n)] = self._sigma[: view.n]
            self._sigma = padded

    def _on_hyperparameters_changed(self) -> None:
        """r_max resizes the walk budget: rebuild the index, reset sigma."""
        with self.timers.measure("Index Build"):
            self._index = WalkIndex(
                self.view, self.params.alpha, self._walks_per_unit(), self._rng
            )
        self._sigma = np.zeros(self.view.n, dtype=np.float64)

    # ------------------------------------------------------------------
    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        """Edge arrival: mutate graph, bound the index damage (no rebuild)."""
        with self.timers.measure("Graph Update"):
            resolved = update.apply(self.graph)
        view = self.view
        self._ensure_index()
        u_index = view.to_index(resolved.u)
        with self.timers.measure("Reverse Push"):
            back = reverse_push(
                view, u_index, self.params.alpha, self.r_max_b
            )
        with self.timers.measure("Index Inaccuracy Update"):
            # Truncated reverse push guarantees, for every source w,
            #   pi(w, u) = reserve_b(w) + sum_v pi(w, v) residue_b(v)
            #           <= reserve_b(w) + r_max_b,
            # and each stored walk of w crosses the changed edge with
            # probability at most pi(w, u) / (alpha * d_out(u))
            # (appendix Eq. 16).  The + r_max_b slack applied to all n
            # nodes is precisely the (n r_max_b + 1) driver of the
            # Lazy Index Update cost in Table VI.
            d_out = max(int(view.out_deg[u_index]), 1)
            contribution = (back.reserve + self.r_max_b) / (
                self.params.alpha * d_out
            )
            self._sigma += contribution
        return resolved

    # ------------------------------------------------------------------
    def query(self, source: int) -> PPRVector:
        view = self.view
        self._ensure_index()
        stats = QueryStats()
        with self.timers.measure("Forward Push"):
            push = forward_push(
                view, view.to_index(source), self.params.alpha, self.r_max
            )
            stats.pushes = push.pushes
        with self.timers.measure("Lazy Index Update"):
            stats.refreshed_nodes = self._lazy_refresh(push.residue)
        with self.timers.measure("Random Walk"):
            walk = add_walk_estimates(
                view,
                push.reserve,
                push.residue,
                self.params.alpha,
                self.params.num_walks(view.n),
                self._rng,
                index=self._index,
            )
            stats.walks = walk.num_walks
        self.last_query_stats = stats
        return PPRVector(push.reserve, view, source)

    def _lazy_refresh(self, residue: np.ndarray) -> int:
        """Refresh the walk sets whose staleness exceeds the budget.

        A query consumes the stored walks of its residue holders.  Any
        holder v whose accumulated inaccuracy sigma(v) exceeds the
        per-node budget theta * epsilon * delta gets its walks
        re-sampled (and sigma reset); the query's total stale error is
        then at most sum_v residue(v) * budget <= theta epsilon delta,
        preserving the Eq. 1 guarantee.

        The cost of this pass is what Table VI models: the number of
        refreshed nodes grows with the sigma inflow per update — the
        (n r_max_b + 1) truncation term — times the update/query ratio,
        and each refresh re-samples ceil(r_max K d_out(v)) walks, the
        r_max term.
        """
        holders = np.flatnonzero(residue > 0.0)
        if holders.size == 0:
            return 0
        tolerance = self.inaccuracy_tolerance()
        dirty = holders[self._sigma[holders] > tolerance]
        if dirty.size == 0:
            return 0
        self._index.refresh_nodes(self.view, dirty)
        self._sigma[dirty] = 0.0
        return int(dirty.size)
