"""Multi-backend kernel dispatcher with cost-model routing.

PR 5 shipped three kernel engines (``scalar``/``frontier``/``batched``)
behind a static per-algorithm flag, and its own benchmark documented
where the static choice is wrong: the node-major ``(n, B)`` batched
state loses cache residency at ``n >= 20k``, and SpeedPPR's batched
power phase regresses at ``B = 16``.  This module replaces the flag
with a **capability-probing dispatcher** that routes every kernel call
per ``(n, nnz, frontier density estimate, B, epsilon)``:

* :data:`REGISTRY` — each backend declares its capabilities
  (:class:`BackendSpec`): which kernel *family* it serves (local push
  vs whole-graph power sweeps), whether it is batched, which **result
  class** it belongs to (see below), and an optional-dependency
  ``probe`` evaluated lazily and cached (the scipy SpMM backend is the
  probed one).
* :class:`DispatchCostModel` — cost curves calibrated from
  :class:`~repro.core.cost_models.BatchAwareCostModel`: the batched
  amortization factor ``(1 - sigma) + sigma / B`` gated by a
  cache-residency cap on the ``2 * n * B`` float state, plus a
  frontier-density floor below which batching cannot win.
* :class:`KernelDispatcher` — routing decisions with env-var override
  (``REPRO_KERNEL_BACKEND``), per-backend disabling
  (``REPRO_KERNEL_DISABLE``, used by the forced-fallback tests), and
  graceful fallback when a probe fails.  Every decision is counted in
  the ``dispatch.*`` metrics.

Result invariance
-----------------
Routing must never change answers.  Backends therefore carry a
*result class* and the dispatcher only ever routes **within** one:

* ``sync-push`` — the synchronous (Jacobi) push schedule:
  ``frontier``, ``batched`` and any split/tiling of a batch.  Row
  ``b`` of a batched push is bit-for-bit its single-source frontier
  push, so *any* partition of the sources into sub-batches — which is
  how the dispatcher restores cache residency at large ``n`` — is
  bit-for-bit invariant.  The pure-Python
  :func:`~repro.ppr.kernels.reference_frontier_push` is the scalar
  oracle of this class.
* ``power-scipy`` — power sweeps through scipy's CSR kernels.  Column
  ``b`` of an SpMM (``matrix @ (n, B)``) accumulates in the same
  ``jj``-index order as the single-vector matvec, so chunking a batch
  of sources is bit-for-bit invariant here too (property-tested).
* ``power-raw`` — :func:`~repro.ppr.kernels.power_phase` gather/
  scatter sweeps over raw (possibly slack) CSR rows; the fallback when
  the scipy probe fails.
* ``gauss-seidel`` — the scalar deque push.  It is a *different*
  schedule (results agree with sync-push only up to the r_max slack),
  so ``auto`` never silently routes to or from it; it remains
  selectable explicitly (``engine=scalar`` or the env override).

Switching *between* classes (e.g. the scipy probe failing on one
machine and not another) can change low-order bits — that is the
documented cross-environment caveat, identical to the pre-dispatcher
``engine`` flag semantics.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, replace

import numpy as np
from numpy.typing import NDArray

from repro.obs import MetricsRegistry, get_metrics
from repro.ppr.csr import CSRView
from repro.ppr.kernels import ENGINES

#: pseudo-engine accepted by algorithms and the CLI: let the
#: dispatcher choose per call.
AUTO = "auto"

#: engine names accepted at the algorithm/CLI layer: the concrete
#: kernels plus ``auto``.
ENGINE_CHOICES: tuple[str, ...] = (AUTO,) + ENGINES

#: env var forcing one backend for every routable call (an explicit
#: user override: it may cross result classes, unlike auto routing)
ENV_BACKEND = "REPRO_KERNEL_BACKEND"
#: env var with a comma-separated list of backends to treat as
#: unavailable (probe forced to fail; exercised by the fallback tests)
ENV_DISABLE = "REPRO_KERNEL_DISABLE"
#: env var overriding the cache-residency budget, in KiB
ENV_RESIDENT_KB = "REPRO_DISPATCH_RESIDENT_KB"

#: kernel families a backend can serve
PUSH = "push"
POWER = "power"

#: result classes (see module docstring)
SYNC_PUSH = "sync-push"
GAUSS_SEIDEL = "gauss-seidel"
POWER_SCIPY = "power-scipy"
POWER_RAW = "power-raw"


def _always_available() -> bool:
    return True


def scipy_probe() -> bool:
    """Optional-dependency probe for the scipy sparse kernels."""
    try:
        from scipy import sparse  # noqa: F401
    except Exception:  # pragma: no cover - import environment dependent
        return False
    return True


@dataclass(frozen=True, slots=True)
class BackendSpec:
    """Declared capabilities of one kernel backend.

    Attributes
    ----------
    name:
        Registry key (also the ``REPRO_KERNEL_BACKEND`` value).
    family:
        Kernel family served: :data:`PUSH` or :data:`POWER`.
    result_class:
        Bit-for-bit equivalence class; auto routing stays inside one.
    batched:
        Whether the backend executes multi-source batches natively.
    probe:
        Zero-arg availability check (optional-dependency import,
        hardware feature, ...).  Evaluated lazily, cached per
        dispatcher.
    description:
        One line for ``python -m repro.cli`` / docs.
    """

    name: str
    family: str
    result_class: str
    batched: bool
    probe: Callable[[], bool]
    description: str


#: the backend registry.  Order matters only for documentation; the
#: dispatcher picks by (family, availability, cost model).
REGISTRY: dict[str, BackendSpec] = {}


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Register (or replace) a backend declaration."""
    REGISTRY[spec.name] = spec
    return spec


register_backend(
    BackendSpec(
        name="scalar",
        family=PUSH,
        result_class=GAUSS_SEIDEL,
        batched=False,
        probe=_always_available,
        description="deque-based Gauss-Seidel push (algorithm oracle; "
        "never auto-routed, results differ from sync-push)",
    )
)
register_backend(
    BackendSpec(
        name="frontier",
        family=PUSH,
        result_class=SYNC_PUSH,
        batched=False,
        probe=_always_available,
        description="vectorized whole-frontier synchronous push",
    )
)
register_backend(
    BackendSpec(
        name="batched",
        family=PUSH,
        result_class=SYNC_PUSH,
        batched=True,
        probe=_always_available,
        description="node-major (n, B) multi-source synchronous push",
    )
)
register_backend(
    BackendSpec(
        name="power",
        family=POWER,
        result_class=POWER_RAW,
        batched=False,
        probe=_always_available,
        description="gather/scatter power sweeps on raw CSR rows "
        "(no packed-matrix rebuild; scipy-free fallback)",
    )
)
register_backend(
    BackendSpec(
        name="spmm",
        family=POWER,
        result_class=POWER_SCIPY,
        batched=True,
        probe=scipy_probe,
        description="scipy-sparse SpMM power sweeps (packed matrix, "
        "one (n, B) product per sweep)",
    )
)


def frontier_density(n: int, r_max: float, alpha: float) -> float:
    """Estimated fraction of nodes active per synchronous sweep.

    Forward push performs ~``1 / (alpha * r_max)`` pushes total; with
    sweeps touching disjoint frontier slices the per-sweep active
    fraction is bounded by total pushes spread over the node set.  The
    estimate is deliberately crude — it only gates the *batching*
    decision (a near-empty frontier has nothing to amortize), never
    correctness.
    """
    if n <= 0:
        return 0.0
    pushes = 1.0 / max(alpha * r_max, 1e-300)
    return float(min(1.0, pushes / n))


@dataclass(frozen=True, slots=True)
class DispatchCostModel:
    """Cost curves behind the routing decisions.

    The batched-vs-sequential trade is the
    :class:`~repro.core.cost_models.BatchAwareCostModel` amortization
    curve ``t_batch(B) = t_seq * ((1 - sigma) + sigma / B)`` — valid
    while the batch's ``2 * n * B`` float residue/reserve state stays
    cache-resident — with batching declared lost (factor > 1) once the
    state spills.  :meth:`effective_batch` inverts this into the
    largest sub-batch worth running, which is how the dispatcher fixes
    the two documented PR-5 performance bugs: ``(n, B)`` push batches
    at ``n >= 20k`` route to sequential frontier pushes (and oversize
    batches on small/mid graphs split into resident locality-sorted
    chunks), and SpeedPPR's power phase gets an adaptive ``B`` cap
    instead of honoring a constant ``max_batch``.

    Parameters
    ----------
    sigma:
        Shared-work fraction of a batch (the BatchAwareCostModel
        ``shared_fraction``; calibrate via :meth:`from_batch_model`).
    resident_bytes:
        Cache budget for the ``2 * n * B * 8``-byte batch state.  The
        default is L2-sized; override per deployment or with
        ``REPRO_DISPATCH_RESIDENT_KB``.
    min_batch:
        Smallest sub-batch worth the (n, B) bookkeeping.
    min_push_work:
        Expected push count below which batching cannot win (the
        frontier-density floor: nothing to amortize).
    min_resident_rows:
        Profitability floor for *push* batching: how many batch rows
        must fit the resident budget before batching can win at all.
        What batching amortizes is the fixed per-sweep numpy dispatch
        overhead; on graphs large enough that only a few rows stay
        resident, per-sweep memory traffic dwarfs that overhead and
        sequential pushes (one cache-hot ``(n,)`` state each) win at
        *every* batch size — measured on the PR-5 bench, ``n = 20k``
        loses even at ``B = 2``.  Splitting such a batch into resident
        chunks narrows the loss but cannot flip the sign, so the
        router goes fully sequential below this floor.  With the
        default 1 MiB budget, 8 rows ~= the ``n <= 8k`` win region the
        bench measures.  (Power-family routing ignores this floor:
        SpMM sweeps amortize a whole matrix traversal per column, so
        chunked SpMM wins even at small caps.)
    """

    sigma: float = 0.5
    resident_bytes: int = 1 << 20
    min_batch: int = 2
    min_push_work: float = 64.0
    min_resident_rows: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.sigma <= 1.0:
            raise ValueError(f"sigma must be in [0, 1], got {self.sigma}")
        if self.resident_bytes < 1:
            raise ValueError("resident_bytes must be >= 1")
        if self.min_batch < 2:
            raise ValueError("min_batch must be >= 2")
        if self.min_resident_rows < 1:
            raise ValueError("min_resident_rows must be >= 1")

    @classmethod
    def from_batch_model(
        cls,
        model: "object",
        resident_bytes: int | None = None,
    ) -> "DispatchCostModel":
        """Calibrate the curves from a live BatchAwareCostModel.

        Reads ``shared_fraction`` (the sigma of the amortization
        curve); the model's measured ``batch_size()`` distribution
        stays with the *admission* side (the serving runtime reads it
        to tune ``max_batch``/``batch_window_s`` online).
        """
        sigma = float(getattr(model, "shared_fraction", 0.5))
        kwargs: dict[str, object] = {"sigma": sigma}
        if resident_bytes is not None:
            kwargs["resident_bytes"] = resident_bytes
        return cls(**kwargs)  # type: ignore[arg-type]

    def with_env(self, env: Mapping[str, str]) -> "DispatchCostModel":
        """Apply ``REPRO_DISPATCH_RESIDENT_KB`` if set (and valid)."""
        raw = env.get(ENV_RESIDENT_KB)
        if not raw:
            return self
        try:
            kb = int(raw)
        except ValueError:
            return self
        if kb < 1:
            return self
        return replace(self, resident_bytes=kb * 1024)

    # ------------------------------------------------------------------
    def batch_speedup(self, b: float) -> float:
        """Predicted sequential/batched time ratio at sub-batch ``b``
        (cache-resident regime): ``1 / ((1 - sigma) + sigma / b)``."""
        if b < 1.0:
            b = 1.0
        return 1.0 / ((1.0 - self.sigma) + self.sigma / b)

    def resident_cap(self, n: int) -> int:
        """Largest B whose ``2 * n * B`` float state stays resident."""
        if n <= 0:
            return 1 << 30
        return max(int(self.resident_bytes // (2 * 8 * n)), 1)

    def effective_batch(
        self,
        n: int,
        b: int,
        density: float | None = None,
        alpha: float = 0.2,
        r_max: float | None = None,
    ) -> int:
        """Largest sub-batch size predicted to beat sequential pushes.

        Returns 1 when batching is predicted to lose: fewer than
        ``min_resident_rows`` rows fit the resident budget (the graph
        is too large for dispatch amortization to matter — see the
        field docs), or the expected push work (from
        ``r_max``/``density``) is too small to amortize anything.
        """
        if b <= 1:
            return 1
        if r_max is not None and n > 0:
            pushes = 1.0 / max(alpha * r_max, 1e-300)
            if pushes < self.min_push_work:
                return 1
        elif density is not None and density * n < 1.0:
            return 1
        cap = self.resident_cap(n)
        if cap < max(self.min_batch, self.min_resident_rows):
            return 1
        b_eff = min(b, cap)
        if b_eff < self.min_batch:
            return 1
        if self.batch_speedup(b_eff) <= 1.0:
            return 1
        return b_eff


@dataclass(frozen=True, slots=True)
class RoutingDecision:
    """One routing outcome.

    Attributes
    ----------
    backend:
        Chosen backend name (a :data:`REGISTRY` key).
    effective_batch:
        Sub-batch size the call should execute at (1 = sequential).
    chunks:
        Positions of the input sources per sub-batch, in execution
        order, when the decision splits a batch; ``None`` when the
        batch runs whole (or the call is single-source).
    reason:
        Human-readable routing rationale (also useful in test output).
    fallback:
        True when the preferred backend's probe failed and the
        decision is the graceful degradation.
    overridden:
        True when ``REPRO_KERNEL_BACKEND`` forced the choice.
    """

    backend: str
    effective_batch: int = 1
    chunks: tuple[NDArray[np.int64], ...] | None = None
    reason: str = ""
    fallback: bool = False
    overridden: bool = False


def plan_chunks(
    source_indices: NDArray[np.int64], b_eff: int
) -> tuple[NDArray[np.int64], ...]:
    """Partition batch positions into locality-sorted sub-batches.

    Sources are ordered by node index before slicing, so each
    sub-batch touches a (roughly) contiguous slice of the adjacency
    arrays — rows pushing neighboring nodes share cache lines, which
    is where the batched kernel's win comes from.  Returns arrays of
    *positions into the input batch* (results must be scattered back
    to input order); any partition is bit-for-bit result-invariant
    because every batched row equals its single-source push.
    """
    b = int(source_indices.size)
    if b_eff >= b:
        return (np.arange(b, dtype=np.int64),)
    order = np.argsort(source_indices, kind="stable").astype(np.int64)
    return tuple(
        order[start:start + b_eff] for start in range(0, b, b_eff)
    )


class KernelDispatcher:
    """Routes kernel calls to registered backends via the cost model.

    Parameters
    ----------
    cost_model:
        Routing cost curves; defaults to :class:`DispatchCostModel`
        with the ``REPRO_DISPATCH_RESIDENT_KB`` override applied.
    env:
        Environment mapping (injectable for tests); defaults to
        ``os.environ``, re-read per decision so tests using
        ``monkeypatch.setenv`` behave naturally.
    metrics:
        Observability registry for the ``dispatch.*`` metrics.
    disabled:
        Extra backends to treat as unavailable (union of the
        ``REPRO_KERNEL_DISABLE`` env list; forced-fallback testing).
    """

    def __init__(
        self,
        cost_model: DispatchCostModel | None = None,
        env: Mapping[str, str] | None = None,
        metrics: MetricsRegistry | None = None,
        disabled: Iterable[str] = (),
    ) -> None:
        self._env = env
        base_env = env if env is not None else os.environ
        self.cost_model = (
            cost_model if cost_model is not None else DispatchCostModel()
        ).with_env(base_env)
        self.metrics = metrics if metrics is not None else get_metrics()
        self._disabled = frozenset(disabled)
        self._probe_cache: dict[str, bool] = {}

    # ------------------------------------------------------------------
    def _environ(self) -> Mapping[str, str]:
        return self._env if self._env is not None else os.environ

    def _env_disabled(self) -> frozenset[str]:
        raw = self._environ().get(ENV_DISABLE, "")
        names = {part.strip() for part in raw.split(",") if part.strip()}
        return self._disabled | frozenset(names)

    def available(self, name: str) -> bool:
        """Availability of one backend: registered, not disabled, and
        its (cached) probe passed."""
        spec = REGISTRY.get(name)
        if spec is None or name in self._env_disabled():
            return False
        cached = self._probe_cache.get(name)
        if cached is None:
            try:
                cached = bool(spec.probe())
            except Exception:  # pragma: no cover - defensive probe guard
                cached = False
            self._probe_cache[name] = cached
        return cached

    def clear_probe_cache(self) -> None:
        """Forget cached probe results (tests / dependency hot-plug)."""
        self._probe_cache.clear()

    def _override(self, family: str) -> str | None:
        """The env-forced backend for ``family``, if usable."""
        forced = self._environ().get(ENV_BACKEND, "").strip()
        if not forced:
            return None
        spec = REGISTRY.get(forced)
        if spec is None or spec.family != family:
            return None
        if not self.available(forced):
            # forced backend unusable: count it and fall back to auto
            self.metrics.counter("dispatch.fallbacks").inc()
            return None
        return forced

    def _count(self, decision: RoutingDecision) -> RoutingDecision:
        self.metrics.counter("dispatch.decisions").inc()
        if decision.overridden:
            self.metrics.counter("dispatch.overrides").inc()
        if decision.fallback:
            self.metrics.counter("dispatch.fallbacks").inc()
        if decision.chunks is not None and len(decision.chunks) > 1:
            self.metrics.counter("dispatch.splits").inc()
        self.metrics.histogram("dispatch.effective_batch").observe(
            float(decision.effective_batch)
        )
        return decision

    # ------------------------------------------------------------------
    def route_push(
        self,
        view: CSRView,
        b: int,
        r_max: float,
        alpha: float = 0.2,
        epsilon: float | None = None,
        source_indices: NDArray[np.int64] | None = None,
    ) -> RoutingDecision:
        """Route one push-family call of batch size ``b``.

        ``epsilon`` is the per-request accuracy class of the multi-eps
        direction: when given (and ``r_max`` is not already resolved
        per-request), a looser epsilon scales the effective push
        threshold the density estimate sees, keeping routing
        parameterized by request accuracy.  Routing stays inside the
        sync-push result class — ``scalar`` is never auto-chosen.
        """
        n = view.n
        effective_r_max = r_max
        if epsilon is not None and epsilon > 0.0:
            # looser accuracy => proportionally coarser push threshold
            effective_r_max = r_max * max(epsilon, 1e-12) / 0.5
        override = self._override(PUSH)
        if override is not None:
            b_eff = b if REGISTRY[override].batched else 1
            return self._count(
                RoutingDecision(
                    backend=override,
                    effective_batch=max(b_eff, 1),
                    chunks=None,
                    reason=f"env override {ENV_BACKEND}={override}",
                    overridden=True,
                )
            )
        density = frontier_density(n, effective_r_max, alpha)
        if b <= 1:
            return self._count(
                RoutingDecision(
                    backend="frontier",
                    effective_batch=1,
                    reason="single source: whole-frontier kernel",
                )
            )
        b_eff = self.cost_model.effective_batch(
            n, b, density=density, alpha=alpha, r_max=effective_r_max
        )
        if b_eff <= 1 or not self.available("batched"):
            return self._count(
                RoutingDecision(
                    backend="frontier",
                    effective_batch=1,
                    reason=(
                        f"B={b} at n={n}: batch state not cache-resident "
                        f"(cap {self.cost_model.resident_cap(n)}) or too "
                        f"little push work; sequential frontier pushes"
                    ),
                )
            )
        chunks: tuple[NDArray[np.int64], ...] | None = None
        if source_indices is not None:
            chunks = plan_chunks(
                np.asarray(source_indices, dtype=np.int64), b_eff
            )
        return self._count(
            RoutingDecision(
                backend="batched",
                effective_batch=b_eff,
                chunks=chunks,
                reason=(
                    f"B={b} at n={n}: resident sub-batches of {b_eff} "
                    f"(predicted speedup "
                    f"{self.cost_model.batch_speedup(b_eff):.2f}x)"
                ),
            )
        )

    def route_power(
        self,
        view: CSRView,
        b: int,
        epsilon: float | None = None,
    ) -> RoutingDecision:
        """Route one power-family call (SpeedPPR's PowerPush stage).

        Prefers the scipy SpMM backend when its probe passes — packed
        matrix, one ``(n, B)`` product per sweep — with the raw-row
        :func:`~repro.ppr.kernels.power_phase` as the graceful
        fallback.  Batches are capped at the cost model's resident
        sub-batch size (the adaptive ``B`` that fixes the ``B = 16``
        regression).
        """
        del epsilon  # accuracy does not change the power-backend choice
        n = view.n
        override = self._override(POWER)
        if override is not None:
            b_eff = b if REGISTRY[override].batched else 1
            return self._count(
                RoutingDecision(
                    backend=override,
                    effective_batch=max(b_eff, 1),
                    reason=f"env override {ENV_BACKEND}={override}",
                    overridden=True,
                )
            )
        if not self.available("spmm"):
            return self._count(
                RoutingDecision(
                    backend="power",
                    effective_batch=1,
                    reason="scipy probe failed: raw-row power sweeps",
                    fallback=True,
                )
            )
        if b <= 1:
            return self._count(
                RoutingDecision(
                    backend="spmm",
                    effective_batch=1,
                    reason="single source: scipy matvec power sweeps",
                )
            )
        # power sweeps touch the whole graph every sweep, so the whole
        # (n, B) state streams regardless; the residency cap still
        # bounds the live write-set (the B=16 regression's cause)
        cap = self.cost_model.resident_cap(n)
        b_eff = max(min(b, cap), 1)
        return self._count(
            RoutingDecision(
                backend="spmm",
                effective_batch=b_eff,
                chunks=(
                    tuple(
                        np.arange(start, min(start + b_eff, b), dtype=np.int64)
                        for start in range(0, b, b_eff)
                    )
                    if b_eff < b
                    else None
                ),
                reason=(
                    f"SpMM sub-batches of {b_eff} (resident cap {cap} "
                    f"at n={n})"
                ),
            )
        )

    # ------------------------------------------------------------------
    def describe(self) -> list[tuple[str, str, bool, str]]:
        """(name, family, available, description) per backend."""
        return [
            (
                spec.name,
                spec.family,
                self.available(spec.name),
                spec.description,
            )
            for spec in REGISTRY.values()
        ]

    def __repr__(self) -> str:
        avail = ",".join(
            name for name in REGISTRY if self.available(name)
        )
        return f"KernelDispatcher(available=[{avail}], {self.cost_model!r})"


_default_dispatcher: KernelDispatcher | None = None


def get_dispatcher() -> KernelDispatcher:
    """The process-wide default dispatcher (created on first use)."""
    global _default_dispatcher
    if _default_dispatcher is None:
        _default_dispatcher = KernelDispatcher()
    return _default_dispatcher


def set_dispatcher(dispatcher: KernelDispatcher | None) -> None:
    """Replace the process-wide dispatcher (None resets to lazy default)."""
    global _default_dispatcher
    _default_dispatcher = dispatcher


def resolve_engine_choice(engine: str) -> str:
    """Validate an engine name against :data:`ENGINE_CHOICES`."""
    if engine not in ENGINE_CHOICES:
        raise ValueError(
            f"unknown kernel engine {engine!r}; choose one of "
            f"{ENGINE_CHOICES}"
        )
    return engine


__all__ = [
    "AUTO",
    "ENGINE_CHOICES",
    "ENV_BACKEND",
    "ENV_DISABLE",
    "ENV_RESIDENT_KB",
    "BackendSpec",
    "DispatchCostModel",
    "KernelDispatcher",
    "REGISTRY",
    "RoutingDecision",
    "frontier_density",
    "get_dispatcher",
    "plan_chunks",
    "register_backend",
    "resolve_engine_choice",
    "scipy_probe",
    "set_dispatcher",
]
