"""Vectorized frontier-batched push kernels.

The scalar :func:`~repro.ppr.forward_push.forward_push` pops one node
at a time off a FIFO deque — a Gauss–Seidel schedule whose inner loop
is pure Python.  The kernels here instead process the **whole active
frontier per sweep** (a Jacobi/synchronous schedule): gather every
active row with ``np.repeat``/``indptr`` arithmetic (honoring the
slack-slot row extents of delta-patched :class:`~repro.ppr.csr.CSRView`
arrays, where ``indptr[t + 1]`` is *not* the end of row ``t``), scatter
all shares with one ``np.add.at`` per sweep, and recompute the active
mask vectorally.  Both schedules terminate with every residue below
``r_max * d_out`` and both satisfy the FORA invariant

    pi(s, t) = reserve(t) + sum_v residue(v) * pi(v, t)

but they are *different* push orders, so their results agree only up
to the r_max-scale approximation slack — not bit-for-bit.  What **is**
bit-for-bit reproducible is the synchronous schedule itself:
:func:`reference_frontier_push` executes it with per-node Python loops
in ascending index order, and :func:`frontier_push` /
:func:`batched_frontier_push` perform the exact same IEEE-754
operations in the exact same order (``np.add.at`` applies its updates
sequentially in index-array order).  The property tests exploit this:
the pure-Python reference is the scalar oracle the vectorized kernels
must match to the last bit, on packed and slack-patched views alike.

Batched mode runs B sources as a ``(B, n)`` residue/reserve matrix over
one shared scan of the graph arrays, which is how the serving runtime
coalesces same-snapshot queries arriving within a dispatch window.
Row ``b`` of a batched push is bit-for-bit identical to
``frontier_push`` from ``sources[b]``: sweeps in which a row has no
active node touch none of its entries, so each row's trajectory is its
single-source trajectory with idle sweeps interleaved.

:func:`power_phase` is the same machinery applied to SpeedPPR's
PowerPush stage: whole-graph Jacobi sweeps straight over the (possibly
slack) CSR rows, so the frontier engine never pays the packed-matrix
rebuild that the scipy path needs after every graph delta.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ppr.csr import CSRView
from repro.ppr.forward_push import PushResult

#: kernel engines selectable on Push+Walk algorithms and the CLI.
#: ``scalar`` is the deque-based reference path (the property-test
#: oracle for algorithm-level behavior), ``frontier`` the vectorized
#: whole-frontier kernel, ``batched`` the multi-source (B, n) kernel.
ENGINES = ("scalar", "frontier", "batched")


def resolve_engine(engine: str) -> str:
    """Validate an engine name against :data:`ENGINES`."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown kernel engine {engine!r}; choose one of {ENGINES}"
        )
    return engine


@dataclass(slots=True)
class BatchPushResult:
    """Outcome of a multi-source batched push.

    Attributes
    ----------
    reserve, residue:
        ``(B, n)`` matrices; row ``b`` is the state of source ``b``.
    pushes:
        Total node-pushes across the batch (cost proxy).
    sweeps:
        Number of synchronous sweeps until every row went inactive.
    """

    reserve: np.ndarray
    residue: np.ndarray
    pushes: int
    sweeps: int


def _gather_targets(
    indptr: np.ndarray,
    indices: np.ndarray,
    nodes: np.ndarray,
    degs: np.ndarray,
) -> np.ndarray:
    """Concatenated out-neighbors of ``nodes`` honoring slack rows.

    Row ``t`` occupies ``indices[indptr[t] : indptr[t] + degs]`` —
    patched views carry slack, so ``indptr[t + 1]`` is not the row end.
    """
    total = int(degs.sum())
    prefix = np.zeros(nodes.size, dtype=np.int64)
    if nodes.size > 1:
        np.cumsum(degs[:-1], out=prefix[1:])
    offsets = np.arange(total, dtype=np.int64) - np.repeat(prefix, degs)
    return indices[np.repeat(indptr[nodes], degs) + offsets]


def frontier_push(
    view: CSRView,
    source_index: int,
    alpha: float,
    r_max: float,
    residue: np.ndarray | None = None,
    reserve: np.ndarray | None = None,
) -> PushResult:
    """Whole-frontier (synchronous-schedule) forward push.

    Same contract as :func:`~repro.ppr.forward_push.forward_push`
    (including warm-start ``residue``/``reserve`` arrays, mutated in
    place) but each iteration pushes *every* currently active node at
    once.  Bit-for-bit equal to :func:`reference_frontier_push`.
    """
    n = view.n
    if n == 0:
        empty = np.zeros(0, dtype=np.float64)
        return PushResult(
            reserve if reserve is not None else empty,
            residue if residue is not None else empty.copy(),
            0,
        )
    if residue is None:
        residue = np.zeros(n, dtype=np.float64)
        residue[source_index] = 1.0
    if reserve is None:
        reserve = np.zeros(n, dtype=np.float64)

    indptr = view.indptr
    indices = view.indices
    out_deg = view.out_deg
    one_minus_alpha = 1.0 - alpha
    thresholds = r_max * np.maximum(out_deg, 1)

    pushes = 0
    while True:
        frontier = np.flatnonzero(residue > thresholds)
        if frontier.size == 0:
            break
        pushes += int(frontier.size)
        r = residue[frontier]
        reserve[frontier] += alpha * r
        residue[frontier] = 0.0
        degs = out_deg[frontier]
        dangling = degs == 0
        if dangling.any():
            # Implicit self loop: the non-teleport share stays put.
            residue[frontier[dangling]] = one_minus_alpha * r[dangling]
        spreading = ~dangling
        if spreading.any():
            nodes = frontier[spreading]
            d = degs[spreading]
            share = one_minus_alpha * r[spreading] / d
            targets = _gather_targets(indptr, indices, nodes, d)
            np.add.at(residue, targets, np.repeat(share, d))
    return PushResult(reserve, residue, pushes)


def batched_frontier_push(
    view: CSRView,
    source_indices: np.ndarray,
    alpha: float,
    r_max: float,
) -> BatchPushResult:
    """Push B sources simultaneously over one shared graph scan.

    Residue/reserve live in ``(B, n)`` matrices; every sweep gathers
    the active (row, node) pairs of the whole batch and scatters their
    shares with a single ``np.add.at`` on the flattened residue.  Row
    ``b`` is bit-for-bit the :func:`frontier_push` result for
    ``source_indices[b]`` (see module docstring).
    """
    src = np.asarray(source_indices, dtype=np.int64)
    n = view.n
    b_count = int(src.size)
    if b_count == 0 or n == 0:
        empty = np.zeros((b_count, n), dtype=np.float64)
        return BatchPushResult(empty, empty.copy(), 0, 0)

    # State lives NODE-major — (n, B), entry (t, b) is row b's value at
    # node t — so the B rows' entries for one node share cache lines: a
    # sweep in which several rows push (or receive mass at) the same
    # node touches one line instead of B distant ones, which is where
    # the batch's wall-clock win comes from.  Sorted flat indices are
    # (node, row)-ordered, whose per-row subsequence is ascending by
    # node — exactly the single-source push order, keeping every row
    # bit-for-bit equal to ``frontier_push``.
    residue_t = np.zeros((n, b_count), dtype=np.float64)
    reserve_t = np.zeros((n, b_count), dtype=np.float64)
    residue_t[src, np.arange(b_count)] = 1.0

    indptr = view.indptr
    indices = view.indices
    out_deg = view.out_deg
    one_minus_alpha = 1.0 - alpha
    flat_residue = residue_t.reshape(-1)
    flat_reserve = reserve_t.reshape(-1)
    flat_thresholds = np.repeat(r_max * np.maximum(out_deg, 1), b_count)

    pushes = 0
    sweeps = 0
    while True:
        active = np.flatnonzero(flat_residue > flat_thresholds)
        if active.size == 0:
            break
        sweeps += 1
        pushes += int(active.size)
        t_idx = active // b_count
        r = flat_residue[active]
        flat_reserve[active] += alpha * r
        flat_residue[active] = 0.0
        degs = out_deg[t_idx]
        dangling = degs == 0
        if dangling.any():
            # Implicit self loop: the non-teleport share stays put.
            flat_residue[active[dangling]] = one_minus_alpha * r[dangling]
        spreading = ~dangling
        if spreading.any():
            flat_spreading = active[spreading]
            nodes = t_idx[spreading]
            rows = flat_spreading - nodes * b_count
            d = degs[spreading]
            share = one_minus_alpha * r[spreading] / d
            # ``nodes`` is non-decreasing (node-major order), so runs of
            # rows pushing the same node gather its adjacency once and
            # fan it out, instead of re-reading it per row.
            first = np.empty(nodes.size, dtype=bool)
            first[0] = True
            np.not_equal(nodes[1:], nodes[:-1], out=first[1:])
            uniq_nodes = nodes[first]
            if uniq_nodes.size < nodes.size:
                uniq_degs = out_deg[uniq_nodes]
                uniq_targets = _gather_targets(
                    indptr, indices, uniq_nodes, uniq_degs
                )
                uniq_starts = np.zeros(uniq_nodes.size, dtype=np.int64)
                if uniq_nodes.size > 1:
                    np.cumsum(uniq_degs[:-1], out=uniq_starts[1:])
                starts = uniq_starts[np.cumsum(first) - 1]
                total = int(d.sum())
                prefix = np.zeros(nodes.size, dtype=np.int64)
                if nodes.size > 1:
                    np.cumsum(d[:-1], out=prefix[1:])
                within = np.arange(total, dtype=np.int64) - np.repeat(
                    prefix, d
                )
                targets = uniq_targets[np.repeat(starts, d) + within]
            else:
                targets = _gather_targets(indptr, indices, nodes, d)
            flat_targets = targets * b_count + np.repeat(rows, d)
            np.add.at(flat_residue, flat_targets, np.repeat(share, d))
    return BatchPushResult(
        np.ascontiguousarray(reserve_t.T),
        np.ascontiguousarray(residue_t.T),
        pushes,
        sweeps,
    )


def reference_frontier_push(
    view: CSRView,
    source_index: int,
    alpha: float,
    r_max: float,
    residue: np.ndarray | None = None,
    reserve: np.ndarray | None = None,
) -> PushResult:
    """Pure-Python scalar oracle of the synchronous push schedule.

    Executes exactly the operations of :func:`frontier_push`, one node
    at a time in ascending index order, with Python-float (IEEE-754
    double) arithmetic.  The vectorized kernels must match this
    function bit-for-bit — the property-test contract that pins the
    gather/scatter index arithmetic, including on slack-slot rows.
    """
    n = view.n
    if n == 0:
        empty = np.zeros(0, dtype=np.float64)
        return PushResult(
            reserve if reserve is not None else empty,
            residue if residue is not None else empty.copy(),
            0,
        )
    if residue is None:
        residue = np.zeros(n, dtype=np.float64)
        residue[source_index] = 1.0
    if reserve is None:
        reserve = np.zeros(n, dtype=np.float64)

    indptr = view.indptr
    indices = view.indices
    out_deg = view.out_deg
    one_minus_alpha = 1.0 - alpha

    pushes = 0
    while True:
        frontier = [
            t
            for t in range(n)
            if float(residue[t]) > r_max * max(int(out_deg[t]), 1)
        ]
        if not frontier:
            break
        pushes += len(frontier)
        r = {t: float(residue[t]) for t in frontier}
        for t in frontier:
            reserve[t] = float(reserve[t]) + alpha * r[t]
            residue[t] = 0.0
        for t in frontier:
            if int(out_deg[t]) == 0:
                residue[t] = one_minus_alpha * r[t]
        for t in frontier:
            deg = int(out_deg[t])
            if deg == 0:
                continue
            share = one_minus_alpha * r[t] / deg
            start = int(indptr[t])
            for v in indices[start:start + deg]:
                residue[v] = float(residue[v]) + share
    return PushResult(reserve, residue, pushes)


def power_phase(
    view: CSRView,
    residue: np.ndarray,
    reserve: np.ndarray,
    alpha: float,
    stop_mass: float,
    max_sweeps: int = 200,
) -> tuple[np.ndarray, np.ndarray, int]:
    """SpeedPPR's PowerPush stage on raw (possibly slack) CSR rows.

    Runs whole-graph Jacobi sweeps — ``reserve += alpha * residue;
    residue = (1 - alpha) * P^T residue`` with the repository-wide
    dangling-self-loop convention — until the residue mass drops below
    ``stop_mass`` or ``max_sweeps`` is hit.  Equivalent to the scipy
    ``transition_matrix`` path up to summation order, but needs no
    packed-matrix (re)build on delta-patched views.

    Returns ``(reserve, residue, sweeps)``; ``reserve`` is mutated in
    place, ``residue`` is replaced each sweep.
    """
    indptr = view.indptr
    indices = view.indices
    out_deg = view.out_deg
    one_minus_alpha = 1.0 - alpha

    sweeps = 0
    while float(residue.sum()) > stop_mass and sweeps < max_sweeps:
        reserve += alpha * residue
        next_residue = np.zeros_like(residue)
        holders = np.flatnonzero(residue > 0.0)
        degs = out_deg[holders]
        dangling = degs == 0
        if dangling.any():
            kept = holders[dangling]
            next_residue[kept] += residue[kept]
        spreading = ~dangling
        if spreading.any():
            nodes = holders[spreading]
            d = degs[spreading]
            share = residue[nodes] / d
            targets = _gather_targets(indptr, indices, nodes, d)
            np.add.at(next_residue, targets, np.repeat(share, d))
        residue = one_minus_alpha * next_residue
        sweeps += 1
    return reserve, residue, sweeps
