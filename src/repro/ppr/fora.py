"""FORA and FORA+ (Wang et al., KDD 2017) adapted to dynamic graphs.

Both answer SSPPR queries with the Push+Walk framework: forward push
with threshold ``r_max`` followed by K-scaled random walks on the
remaining residues.

* :class:`Fora` (index-free) simulates walks online; an edge update only
  mutates the graph, so its update cost is a small constant — the
  ``t_u = tau_3`` row of Table I.
* :class:`ForaPlus` (index-based) reads walk terminals from a
  precomputed :class:`~repro.ppr.random_walk.WalkIndex`; an edge update
  must regenerate the index (O(m r_max K) walks) — the
  ``t_u = r_max * tau_3`` row of Table I.

The paper's default threshold r_max = 1/sqrt(alpha m K) equalizes the
two complexity terms; Quota's whole point is that this is generally
*not* the response-time optimum.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.ppr.base import (
    DynamicPPRAlgorithm,
    PPRParams,
    PPRVector,
    QueryStats,
    clip_unit,
)
from repro.ppr.csr import CSRView
from repro.ppr.forward_push import forward_push
from repro.ppr.kernels import BatchPushResult, batched_frontier_push
from repro.ppr.pushwalk import add_walk_estimates, add_walk_estimates_batch
from repro.ppr.random_walk import WalkIndex


class Fora(DynamicPPRAlgorithm):
    """Index-free FORA.

    Hyperparameters
    ---------------
    r_max:
        Forward-push threshold; smaller means more push work and fewer
        walks.  Default 1/sqrt(alpha m K).
    """

    name = "FORA"
    is_index_based = False
    hyperparameter_names = ("r_max",)
    supported_engines = ("scalar", "frontier", "batched")

    def __init__(
        self,
        graph: DynamicGraph,
        params: PPRParams | None = None,
        r_max: float | None = None,
        engine: str = "scalar",
    ) -> None:
        super().__init__(graph, params)
        self.r_max = r_max if r_max is not None else self.default_r_max()
        if engine != "scalar":
            self.set_engine(engine)

    def default_r_max(self) -> float:
        """The paper's complexity-balancing default 1/sqrt(alpha m K)."""
        view = self.view
        k = self.params.num_walks(view.n)
        m = max(view.m, 1)
        return clip_unit(1.0 / math.sqrt(self.params.alpha * m * k))

    def default_hyperparameters(self) -> dict[str, float]:
        return {"r_max": self.default_r_max()}

    # ------------------------------------------------------------------
    def query(self, source: int) -> PPRVector:
        view = self.view
        stats = QueryStats()
        with self.timers.measure("Forward Push"):
            push = forward_push(
                view,
                view.to_index(source),
                self.params.alpha,
                self.r_max,
                engine=self.engine,
            )
            stats.pushes = push.pushes
        with self.timers.measure("Random Walk"):
            walk = add_walk_estimates(
                view,
                push.reserve,
                push.residue,
                self.params.alpha,
                self.params.num_walks(view.n),
                self._rng,
                index=self._walk_index(),
            )
            stats.walks = walk.num_walks
        self.last_query_stats = stats
        return PPRVector(push.reserve, view, source)

    def query_batch(self, sources: Sequence[int]) -> list[PPRVector]:
        """Same-snapshot batch through the batched push kernel.

        ``engine="batched"`` keeps the legacy single ``(B, n)`` sweep;
        ``engine="auto"`` asks the dispatcher, which splits the batch
        into locality-sorted cache-resident sub-batches when the whole
        ``(n, B)`` state would spill (the documented ``n >= 20k``
        losing cells), or falls back to sequential frontier pushes
        when batching cannot win.  Every split is bit-for-bit
        result-invariant: each batched row equals its single-source
        frontier push.
        """
        if self.engine not in ("batched", "auto") or len(sources) <= 1:
            return super().query_batch(sources)
        view = self.view
        source_indices = np.array(
            [view.to_index(s) for s in sources], dtype=np.int64
        )
        if self.engine == "auto":
            from repro.ppr.dispatch import get_dispatcher

            decision = get_dispatcher().route_push(
                view,
                len(sources),
                self.r_max,
                alpha=self.params.alpha,
                source_indices=source_indices,
            )
            if decision.backend != "batched":
                return super().query_batch(sources)
            chunks = decision.chunks
        else:
            decision = None
            chunks = None
        stats = QueryStats()
        with self.timers.measure("Forward Push"):
            if chunks is not None and len(chunks) > 1:
                push = self._chunked_batch_push(view, source_indices, chunks)
            else:
                push = batched_frontier_push(
                    view, source_indices, self.params.alpha, self.r_max
                )
            stats.pushes = push.pushes
        if decision is not None:
            stats.extra["backend"] = decision.backend
            stats.extra["effective_batch"] = decision.effective_batch
        with self.timers.measure("Random Walk"):
            walk = add_walk_estimates_batch(
                view,
                push.reserve,
                push.residue,
                self.params.alpha,
                self.params.num_walks(view.n),
                self._rng,
                index=self._walk_index(),
            )
            stats.walks = walk.num_walks
        stats.extra["batch_size"] = len(sources)
        stats.extra["sweeps"] = push.sweeps
        self.last_query_stats = stats
        return [
            PPRVector(push.reserve[b], view, source)
            for b, source in enumerate(sources)
        ]

    def _chunked_batch_push(
        self,
        view: "CSRView",
        source_indices: np.ndarray,
        chunks: Sequence[np.ndarray],
    ) -> BatchPushResult:
        """Run the batch as locality-sorted sub-batches.

        ``chunks`` holds positions into ``source_indices`` (from
        :func:`repro.ppr.dispatch.plan_chunks`); results scatter back
        to input order.  Bit-for-bit identical to one whole-batch call
        because every batched row equals its single-source push.
        """
        b = int(source_indices.size)
        reserve = np.zeros((b, view.n), dtype=np.float64)
        residue = np.zeros((b, view.n), dtype=np.float64)
        pushes = 0
        sweeps = 0
        for chunk in chunks:
            part = batched_frontier_push(
                view, source_indices[chunk], self.params.alpha, self.r_max
            )
            reserve[chunk] = part.reserve
            residue[chunk] = part.residue
            pushes += part.pushes
            sweeps = max(sweeps, part.sweeps)
        return BatchPushResult(reserve, residue, pushes, sweeps)

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        with self.timers.measure("Graph Update"):
            resolved = update.apply(self.graph)
            self.view  # refresh the CSR snapshot inside the update cost
        return resolved

    def _walk_index(self) -> WalkIndex | None:
        """Index-free FORA samples online."""
        return None


#: valid WalkIndex maintenance policies for the index-based methods
INDEX_MAINTENANCE_MODES = ("rebuild", "incremental")


class ForaPlus(Fora):
    """Index-based FORA+ — fast queries, index maintained per update.

    ``index_maintenance`` selects the update policy:

    * ``"rebuild"`` (default) — regenerate the whole walk index on the
      new snapshot, the paper's O(m r_max K) update cost.  This is the
      distributional oracle the incremental path is tested against.
    * ``"incremental"`` — FIRM-style suffix resampling of only the
      walks the edge mutation affects (:mod:`repro.ppr.incremental`),
      charged through ``ForaPlusIncrementalCostModel``.
    """

    name = "FORA+"
    is_index_based = True

    def __init__(
        self,
        graph: DynamicGraph,
        params: PPRParams | None = None,
        r_max: float | None = None,
        engine: str = "scalar",
        index_maintenance: str = "rebuild",
    ) -> None:
        if index_maintenance not in INDEX_MAINTENANCE_MODES:
            raise ValueError(
                f"index_maintenance must be one of "
                f"{INDEX_MAINTENANCE_MODES}, got {index_maintenance!r}"
            )
        self.index_maintenance = index_maintenance
        super().__init__(graph, params, r_max, engine)
        self._index: WalkIndex | None = None
        self._ensure_index()

    @property
    def index(self) -> WalkIndex:
        self._ensure_index()
        return self._index

    def _walks_per_unit(self) -> float:
        view = self.view
        return self.r_max * self.params.num_walks(view.n)

    def _build_index(self) -> None:
        with self.timers.measure("Index Build"):
            self._index = WalkIndex(
                self.view,
                self.params.alpha,
                self._walks_per_unit(),
                self._rng,
                track_edges=self.index_maintenance == "incremental",
            )

    def _ensure_index(self) -> None:
        # keyed on the snapshot *version*, not view object identity: a
        # slack-slot compaction yields a fresh view object at the same
        # version and must not trigger an O(m r_max K) rebuild.
        if (
            self._index is None
            or self._index.view.version != self.view.version
        ):
            self._build_index()

    def _on_hyperparameters_changed(self) -> None:
        """Changing r_max changes the index budget; rebuild it."""
        self._build_index()

    def _walk_index(self) -> WalkIndex:
        self._ensure_index()
        return self._index

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        if self.index_maintenance == "incremental" and self._index is not None:
            with self.timers.measure("Graph Update"):
                resolved = update.apply(self.graph)
                view = self.view
            with self.timers.measure("Index Update"):
                # resample only the affected walks; runs inside the
                # caller's writer critical section (serving runtime)
                self._index.apply_edge_update(
                    view,
                    view.to_index(resolved.u),
                    view.to_index(resolved.v),
                    resolved.kind,
                )
            return resolved
        with self.timers.measure("Graph Update"):
            resolved = update.apply(self.graph)
        with self.timers.measure("Index Build"):
            # rebuild policy: regenerate the walk index on the new
            # snapshot (the O(m r_max K) update cost).
            self._index = WalkIndex(
                self.view, self.params.alpha, self._walks_per_unit(), self._rng
            )
        return resolved


class ForaPlusIncremental(ForaPlus):
    """FORA+ with incremental walk-index maintenance by default.

    Registered as its own algorithm ("FORA+inc") so the Quota
    optimizer can weigh its much smaller t̃_u against plain FORA+ and
    the index-free methods.
    """

    name = "FORA+inc"

    def __init__(
        self,
        graph: DynamicGraph,
        params: PPRParams | None = None,
        r_max: float | None = None,
        engine: str = "scalar",
        index_maintenance: str = "incremental",
    ) -> None:
        super().__init__(graph, params, r_max, engine, index_maintenance)
