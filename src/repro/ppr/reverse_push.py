"""Reverse Push (backward push toward a target node).

Computes, for a fixed target t, estimates of pi(s, t) for *all* sources
s simultaneously [28].  Agenda uses it during updates to find which
sources' random-walk indexes an edge change can affect, and TopPPR uses
it to refine candidate scores.

Push rule (mirror of forward push): while some node v has backward
residue rb(v) > r_max_b, move alpha * rb(v) into the backward reserve of
v and give every *in*-neighbor u of v an extra
(1 - alpha) * rb(v) / d_out(u).

Invariant: pi(s, t) = reserve_b(s) + sum_v pi(s, v) * residue_b(v).

Complexity: O(d_bar / (alpha * r_max_b)) pushes on average over targets,
the bound quoted in the paper's appendix (from FAST-PPR [61]).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.ppr.csr import CSRView


@dataclass(slots=True)
class ReversePushResult:
    """Backward reserve/residue arrays and push count for one target."""

    reserve: np.ndarray
    residue: np.ndarray
    pushes: int


def reverse_push(
    view: CSRView,
    target_index: int,
    alpha: float,
    r_max_b: float,
    max_pushes: int | None = None,
) -> ReversePushResult:
    """Run Reverse Push toward ``target_index``.

    Parameters
    ----------
    view:
        CSR snapshot (needs in-adjacency).
    target_index:
        Dense index of the target node.
    alpha:
        Teleport probability.
    r_max_b:
        Backward residue threshold (the paper's r^b_max).
    max_pushes:
        Optional hard cap (defensive bound for pathological graphs).

    Returns
    -------
    ReversePushResult
        reserve[s] approximates pi(s, target) from below.
    """
    n = view.n
    reserve = np.zeros(n, dtype=np.float64)
    residue = np.zeros(n, dtype=np.float64)
    if n == 0:
        return ReversePushResult(reserve, residue, 0)
    residue[target_index] = 1.0

    in_indptr = view.in_indptr
    in_indices = view.in_indices
    in_deg = view.in_deg
    out_deg = view.out_deg
    one_minus_alpha = 1.0 - alpha

    queue: deque[int] = deque([target_index])
    in_queue = np.zeros(n, dtype=bool)
    in_queue[target_index] = True

    pushes = 0
    while queue:
        v = queue.popleft()
        in_queue[v] = False
        r_v = residue[v]
        if r_v <= r_max_b:
            continue
        if max_pushes is not None and pushes >= max_pushes:
            break
        pushes += 1
        reserve[v] += alpha * r_v
        residue[v] = 0.0
        if out_deg[v] == 0:
            # Implicit self loop of a dangling node: it is its own
            # in-neighbor, so the non-teleport share returns to v.
            residue[v] += one_minus_alpha * r_v
            if residue[v] > r_max_b and not in_queue[v]:
                queue.append(v)
                in_queue[v] = True
        # row extent is in_indptr[v] : in_indptr[v] + in_deg[v] —
        # patched views may carry slack past the row end
        row_start = in_indptr[v]
        in_neighbors = in_indices[row_start:row_start + in_deg[v]]
        if in_neighbors.size == 0:
            continue
        degs = out_deg[in_neighbors]
        # Every in-neighbor u reaches v with probability 1/d_out(u) per
        # step, hence the per-u share below.  d_out(u) >= 1 because the
        # u -> v edge exists.
        shares = one_minus_alpha * r_v / degs
        np.add.at(residue, in_neighbors, shares)
        for u in in_neighbors:
            if not in_queue[u] and residue[u] > r_max_b:
                queue.append(int(u))
                in_queue[u] = True
    return ReversePushResult(reserve, residue, pushes)
