"""Forward Push (Algorithm 3 of the paper).

Local push computation of approximate PPR: maintain a *reserve* (the
estimate) and a *residue* (unpushed probability mass) per node; while
some node t has residue(t) / out_degree(t) > r_max, convert an alpha
fraction of its residue into reserve and spread the rest over its
out-neighbors.

The implementation is array-based over a :class:`~repro.ppr.csr.CSRView`
with a FIFO frontier, the standard linear-time formulation of
Andersen et al. [26].  Dangling nodes follow the repository-wide
implicit-self-loop convention (see ``repro.graph.digraph``).

Invariant (checked by property tests): at every moment

    pi(s, t) = reserve(t) + sum_v residue(v) * pi(v, t)

so total reserve + residue mass equals 1 for a fresh source.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.ppr.csr import CSRView


@dataclass(slots=True)
class PushResult:
    """Outcome of a forward push.

    Attributes
    ----------
    reserve:
        Dense reserve array (the PPR estimate lower bound).
    residue:
        Dense residue array (unpushed mass).
    pushes:
        Number of push operations performed (cost proxy; the paper's
        Forward Push complexity is O(1 / (alpha * r_max)) pushes).
    """

    reserve: np.ndarray
    residue: np.ndarray
    pushes: int


def forward_push(
    view: CSRView,
    source_index: int,
    alpha: float,
    r_max: float,
    residue: np.ndarray | None = None,
    reserve: np.ndarray | None = None,
    engine: str = "scalar",
) -> PushResult:
    """Run Forward Push from ``source_index`` until no node is active.

    Parameters
    ----------
    view:
        CSR snapshot of the graph.
    source_index:
        Dense index of the source node (see ``CSRView.to_index``).
    alpha:
        Teleport probability.
    r_max:
        Push threshold: node t is active while residue(t)/d_out(t) > r_max.
    residue, reserve:
        Optional starting vectors (used by incremental callers such as
        SpeedPPR's power-iteration phase); fresh vectors with
        residue[source] = 1 when omitted.  Passed arrays are mutated in
        place.
    engine:
        ``"scalar"`` (this module's deque loop, the oracle path),
        ``"frontier"``/``"batched"`` for the vectorized synchronous
        kernel of :mod:`repro.ppr.kernels` (single-source, the two
        names coincide here), or ``"auto"`` to let the
        :mod:`repro.ppr.dispatch` router pick (single-source routing
        stays inside the sync-push result class unless the
        ``REPRO_KERNEL_BACKEND`` override forces ``scalar``).  The
        scalar and synchronous schedules differ, so their results
        agree only up to the r_max approximation slack (see kernels
        module docstring).

    Returns
    -------
    PushResult
        Final reserve/residue arrays and push count.
    """
    if engine == "auto":
        from repro.ppr.dispatch import get_dispatcher

        decision = get_dispatcher().route_push(view, 1, r_max, alpha=alpha)
        engine = "scalar" if decision.backend == "scalar" else "frontier"
    if engine != "scalar":
        from repro.ppr import kernels

        kernels.resolve_engine(engine)
        return kernels.frontier_push(
            view, source_index, alpha, r_max, residue=residue, reserve=reserve
        )
    n = view.n
    if n == 0:
        empty = np.zeros(0, dtype=np.float64)
        return PushResult(
            reserve if reserve is not None else empty,
            residue if residue is not None else empty.copy(),
            0,
        )
    if residue is None:
        residue = np.zeros(n, dtype=np.float64)
        residue[source_index] = 1.0
    if reserve is None:
        reserve = np.zeros(n, dtype=np.float64)

    indptr = view.indptr
    indices = view.indices
    out_deg = view.out_deg
    one_minus_alpha = 1.0 - alpha

    # Effective degree 1 for dangling nodes (implicit self loop).
    queue: deque[int] = deque()
    in_queue = np.zeros(n, dtype=bool)
    active = np.flatnonzero(residue > r_max * np.maximum(out_deg, 1))
    for i in active:
        queue.append(int(i))
        in_queue[i] = True

    pushes = 0
    while queue:
        t = queue.popleft()
        in_queue[t] = False
        r_t = residue[t]
        deg = out_deg[t]
        if r_t <= r_max * (deg if deg > 0 else 1):
            continue
        pushes += 1
        reserve[t] += alpha * r_t
        residue[t] = 0.0
        if deg == 0:
            # Implicit self loop: the non-teleport share stays on t.
            residue[t] = one_minus_alpha * r_t
            if residue[t] > r_max and not in_queue[t]:
                queue.append(t)
                in_queue[t] = True
            continue
        share = one_minus_alpha * r_t / deg
        # row extent is indptr[t] : indptr[t] + deg — patched views may
        # carry slack, so indptr[t + 1] is not the row end
        start = indptr[t]
        neighbors = indices[start:start + deg]
        # np.add.at handles repeated neighbors (parallel edges are not
        # allowed, but a node can appear from different frontier pops).
        np.add.at(residue, neighbors, share)
        for v in neighbors:
            if not in_queue[v]:
                deg_v = out_deg[v]
                if residue[v] > r_max * (deg_v if deg_v > 0 else 1):
                    queue.append(int(v))
                    in_queue[v] = True
    return PushResult(reserve, residue, pushes)
