"""Shared residue-to-walk estimation step of the Push+Walk framework.

FORA, FORA+, SpeedPPR(+), Agenda and the top-k methods all finish a
query the same way: after a (forward-push or power-iteration) phase
leaves residues r(v), each node v contributes ceil(r(v) * K) random
walks of weight r(v) / ceil(r(v) * K), whose terminals are added to the
reserve.  This preserves the FORA invariant

    pi(s, t) = reserve(t) + sum_v r(v) * pi(v, t)

in expectation, which yields the Eq. 1 guarantee with the standard
Chernoff argument for K = (2 eps/3 + 2) ln(2/p_f) / (eps^2 delta).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ppr.csr import CSRView
from repro.ppr.random_walk import WalkIndex, sample_walk_terminals


@dataclass(slots=True)
class WalkPhaseResult:
    """Walk counts of the estimation step (for cost accounting)."""

    num_walks: int
    num_source_nodes: int


def add_walk_estimates(
    view: CSRView,
    reserve: np.ndarray,
    residue: np.ndarray,
    alpha: float,
    num_walks_k: int,
    rng: np.random.Generator,
    index: WalkIndex | None = None,
) -> WalkPhaseResult:
    """Fold the residue vector into ``reserve`` via random walks.

    Parameters
    ----------
    view:
        Graph snapshot the walks run on.
    reserve:
        Estimate array, mutated in place.
    residue:
        Residue array left by the push phase (read-only).
    alpha:
        Walk termination probability (ignored when ``index`` given —
        the index was sampled with its own alpha).
    num_walks_k:
        The K parameter: walks per unit of residue.
    rng:
        Randomness for online sampling.
    index:
        When provided (index-based algorithms), terminals are read from
        the precomputed store instead of being simulated.

    Returns
    -------
    WalkPhaseResult
        Number of walks consumed and number of residue nodes.
    """
    holders = np.flatnonzero(residue > 0.0)
    if holders.size == 0:
        return WalkPhaseResult(0, 0)
    res = residue[holders]
    counts = np.ceil(res * num_walks_k).astype(np.int64)
    np.maximum(counts, 1, out=counts)
    weights = res / counts

    if index is None:
        starts = np.repeat(holders, counts)
        per_walk_weight = np.repeat(weights, counts)
        terminals = sample_walk_terminals(view, starts, alpha, rng)
        np.add.at(reserve, terminals, per_walk_weight)
    else:
        for node, count, weight in zip(holders, counts, weights):
            terminals = index.terminals_for(int(node), int(count))
            np.add.at(reserve, terminals, weight)
    return WalkPhaseResult(int(counts.sum()), int(holders.size))


def add_walk_estimates_batch(
    view: CSRView,
    reserves: np.ndarray,
    residues: np.ndarray,
    alpha: float,
    num_walks_k: int,
    rng: np.random.Generator,
    index: WalkIndex | None = None,
) -> WalkPhaseResult:
    """Walk phase over a ``(B, n)`` batch of push results.

    Residue holders of *all* rows are flattened into one
    :func:`~repro.ppr.random_walk.sample_walk_terminals` call (the
    walks are independent, so lock-step simulation across rows is
    exact), and terminals scatter into the flat reserve at
    ``row * n + terminal``.  ``reserves`` is mutated in place.

    With a precomputed ``index`` the terminals of a node are shared
    deterministic samples, so rows are served per-node from the store
    exactly as :func:`add_walk_estimates` does.
    """
    b_idx, v_idx = np.nonzero(residues > 0.0)
    if b_idx.size == 0:
        return WalkPhaseResult(0, 0)
    res = residues[b_idx, v_idx]
    counts = np.ceil(res * num_walks_k).astype(np.int64)
    np.maximum(counts, 1, out=counts)
    weights = res / counts

    n = view.n
    flat_reserves = reserves.reshape(-1)
    if index is None:
        starts = np.repeat(v_idx, counts)
        walk_rows = np.repeat(b_idx, counts)
        per_walk_weight = np.repeat(weights, counts)
        terminals = sample_walk_terminals(view, starts, alpha, rng)
        np.add.at(flat_reserves, walk_rows * n + terminals, per_walk_weight)
    else:
        for row, node, count, weight in zip(b_idx, v_idx, counts, weights):
            terminals = index.terminals_for(int(node), int(count))
            np.add.at(flat_reserves, int(row) * n + terminals, weight)
    return WalkPhaseResult(int(counts.sum()), int(b_idx.size))
