"""ResAcc (Lin et al., ICDE 2020) — index-free residue accumulation.

ResAcc improves on plain FORA by *accumulating* residues over several
push rounds before spending random walks: each round pushes with a
progressively tighter threshold, letting probability mass concentrate
on fewer, heavier residue holders, so the final walk phase needs fewer
walks for the same accuracy.

This reproduction keeps that structure (multi-round push, then walks)
with geometrically decreasing thresholds r_max, r_max/2, ...,
r_max/2^(rounds-1).  As in the paper's experiments it is used as an
index-free baseline: updates only touch the graph.
"""

from __future__ import annotations

import math

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.ppr.base import (
    DynamicPPRAlgorithm,
    PPRParams,
    PPRVector,
    QueryStats,
    clip_unit,
)
from repro.ppr.forward_push import forward_push
from repro.ppr.pushwalk import add_walk_estimates


class ResAcc(DynamicPPRAlgorithm):
    """Residue-accumulation SSPPR.

    Hyperparameters
    ---------------
    r_max:
        Threshold of the *first* push round; later rounds tighten it by
        powers of two.

    Parameters
    ----------
    rounds:
        Number of accumulation rounds (default 3, a typical setting).
    """

    name = "ResAcc"
    is_index_based = False
    hyperparameter_names = ("r_max",)

    def __init__(
        self,
        graph: DynamicGraph,
        params: PPRParams | None = None,
        r_max: float | None = None,
        rounds: int = 3,
    ) -> None:
        super().__init__(graph, params)
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds
        self.r_max = r_max if r_max is not None else self.default_r_max()

    def default_r_max(self) -> float:
        """Match FORA's balancing default, adjusted for the extra rounds."""
        view = self.view
        k = self.params.num_walks(view.n)
        m = max(view.m, 1)
        return clip_unit(
            2.0 ** (self.rounds - 1) / math.sqrt(self.params.alpha * m * k)
        )

    def default_hyperparameters(self) -> dict[str, float]:
        return {"r_max": self.default_r_max()}

    # ------------------------------------------------------------------
    def query(self, source: int) -> PPRVector:
        view = self.view
        stats = QueryStats()
        with self.timers.measure("Forward Push"):
            push = forward_push(
                view, view.to_index(source), self.params.alpha, self.r_max
            )
            stats.pushes = push.pushes
            threshold = self.r_max
            for _ in range(1, self.rounds):
                threshold /= 2.0
                push = forward_push(
                    view,
                    view.to_index(source),
                    self.params.alpha,
                    threshold,
                    residue=push.residue,
                    reserve=push.reserve,
                )
                stats.pushes += push.pushes
        with self.timers.measure("Random Walk"):
            walk = add_walk_estimates(
                view,
                push.reserve,
                push.residue,
                self.params.alpha,
                self.params.num_walks(view.n),
                self._rng,
            )
            stats.walks = walk.num_walks
        self.last_query_stats = stats
        return PPRVector(push.reserve, view, source)

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        with self.timers.measure("Graph Update"):
            resolved = update.apply(self.graph)
            self.view
        return resolved
