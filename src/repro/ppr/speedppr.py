"""SpeedPPR and SpeedPPR+ (Wu et al., SIGMOD 2021).

SpeedPPR unifies the *global* approach (whole-graph power iteration)
with the *local* one (forward push): it runs vectorized power-iteration
sweeps — which act like a simultaneous push on every node — until the
total residue drops below ``r_max * m``, then hands the remaining
residues to the random-walk estimator.

Query cost ~ m * log(1 / (r_max m)) + m * r_max * W, the Table I form
``log(1/(r_max m)) tau_1 + r_max tau_2`` once the graph-size factors are
folded into the constants.

* :class:`SpeedPPR` — index-free; O(1)-ish updates (``tau_3``).
* :class:`SpeedPPRPlus` — walk index; update regenerates the index
  (``r_max * tau_3``).

The power phase has two backend families, routed by
:mod:`repro.ppr.dispatch` when ``engine="auto"``:

* ``spmm`` — scipy-sparse matvec/SpMM sweeps on the packed transition
  matrix (optional dependency, probed at import; one ``(n, B)``
  product per sweep for batches).  Batches are executed in
  cost-model-capped sub-batches: scipy's CSR SpMM accumulates each
  output column in the same index order as the single-vector matvec,
  so chunking is bit-for-bit result-invariant while bounding the live
  ``(n, B)`` write-set (the ``B = 16`` regression fix).
* ``power`` — :func:`repro.ppr.kernels.power_phase` gather/scatter on
  the raw (possibly slack) CSR rows; no packed-matrix rebuild after
  graph deltas, and the graceful fallback when scipy is absent.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

try:  # optional dependency, probed at import (see dispatch.scipy_probe)
    from scipy import sparse
except Exception:  # pragma: no cover - import environment dependent
    sparse = None  # type: ignore[assignment]

if TYPE_CHECKING:
    from repro.ppr.dispatch import RoutingDecision

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.ppr.base import (
    DynamicPPRAlgorithm,
    PPRParams,
    PPRVector,
    QueryStats,
    clip_unit,
)
from repro.ppr.kernels import power_phase
from repro.ppr.power_iteration import transition_matrix
from repro.ppr.pushwalk import add_walk_estimates, add_walk_estimates_batch
from repro.ppr.random_walk import WalkIndex


class SpeedPPR(DynamicPPRAlgorithm):
    """Index-free SpeedPPR (PowerPush + online walks).

    Hyperparameters
    ---------------
    r_max:
        Residue-sum stopping threshold of the power-iteration phase,
        expressed per edge: sweeps stop once sum(residue) <= r_max * m.
    """

    name = "SpeedPPR"
    is_index_based = False
    hyperparameter_names = ("r_max",)
    supported_engines = ("scalar", "frontier", "batched")

    def __init__(
        self,
        graph: DynamicGraph,
        params: PPRParams | None = None,
        r_max: float | None = None,
        engine: str = "scalar",
    ) -> None:
        super().__init__(graph, params)
        self._matrix_t: Any = None
        self._matrix_view: Any = None
        self.r_max = r_max if r_max is not None else self.default_r_max()
        if engine != "scalar":
            self.set_engine(engine)

    def default_r_max(self) -> float:
        """Default that balances sweeps against walks: 1/sqrt(m W)."""
        view = self.view
        w = self._num_walks()
        m = max(view.m, 1)
        return clip_unit(1.0 / math.sqrt(m * w))

    def default_hyperparameters(self) -> dict[str, float]:
        return {"r_max": self.default_r_max()}

    def _num_walks(self) -> int:
        """SpeedPPR's W = 2 (2 eps/3 + 2) log(n) / (eps^2 delta), capped."""
        n = max(self.view.n, 2)
        params = self.params
        delta = params.resolved_delta(n)
        w = 2 * (2 * params.epsilon / 3 + 2) * math.log(n) / (
            params.epsilon**2 * delta
        )
        return max(1, min(int(math.ceil(w)), params.walk_cap))

    def _transition_t(self) -> Any:
        """Cached P^T for the current snapshot (scipy CSR)."""
        if sparse is None:  # pragma: no cover - scipy-free environments
            raise RuntimeError(
                "the spmm power backend needs scipy; the dispatcher "
                "should have routed to the raw-row power backend"
            )
        view = self.view
        if self._matrix_t is None or self._matrix_view is not view:
            self._matrix_t = transition_matrix(view).T.tocsr()
            self._matrix_view = view
        return self._matrix_t

    def _route_power(self, b: int) -> "RoutingDecision":
        """Routing decision for a power-phase call of batch size b.

        ``engine="auto"`` asks the dispatcher; the static engines are
        honored as overrides (``scalar`` = spmm family, ``frontier`` /
        ``batched`` = raw-row family for singles, spmm for batches as
        before) but still degrade to the raw-row backend when the
        scipy probe fails, and static batches still get the
        cost-model sub-batch cap — chunked SpMM is bit-for-bit equal
        to the unchunked product, so the cap is a pure perf fix.
        """
        from repro.ppr.dispatch import RoutingDecision, get_dispatcher

        dispatcher = get_dispatcher()
        if self.engine == "auto":
            return dispatcher.route_power(self.view, b)
        if self.engine == "scalar" or b > 1:
            if not dispatcher.available("spmm"):
                return RoutingDecision(
                    backend="power",
                    effective_batch=1,
                    reason="scipy probe failed: raw-row power sweeps",
                    fallback=True,
                )
            # the dispatcher applies the env override and the
            # cost-model sub-batch cap
            return dispatcher.route_power(self.view, b)
        return RoutingDecision(
            backend="power",
            effective_batch=1,
            reason=f"static engine {self.engine}: raw-row power sweeps",
        )

    def _spmm_sweeps(
        self,
        source_indices: np.ndarray,
        alpha: float,
        stop_mass: float,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Power sweeps for one sub-batch through the scipy kernels.

        Returns row-major ``(B, n)`` reserves/residues.  PowerPush is
        mass-preserving, so every column's residue mass after k sweeps
        is exactly ``(1 - alpha)^k`` — all sources cross ``stop_mass``
        on the same sweep and one matrix product per sweep serves the
        whole sub-batch.
        """
        view = self.view
        matrix_t = self._transition_t()
        b = int(source_indices.size)
        sweeps = 0
        if b == 1:
            residue = np.zeros(view.n, dtype=np.float64)
            residue[source_indices[0]] = 1.0
            reserve = np.zeros(view.n, dtype=np.float64)
            while residue.sum() > stop_mass and sweeps < 200:
                reserve += alpha * residue
                residue = (1.0 - alpha) * (matrix_t @ residue)
                sweeps += 1
            return reserve[None, :], residue[None, :], sweeps
        residues = np.zeros((view.n, b), dtype=np.float64)
        residues[source_indices, np.arange(b)] = 1.0
        reserves = np.zeros((view.n, b), dtype=np.float64)
        while residues[:, 0].sum() > stop_mass and sweeps < 200:
            reserves += alpha * residues
            residues = (1.0 - alpha) * (matrix_t @ residues)
            sweeps += 1
        return (
            np.ascontiguousarray(reserves.T),
            np.ascontiguousarray(residues.T),
            sweeps,
        )

    # ------------------------------------------------------------------
    def query(self, source: int) -> PPRVector:
        view = self.view
        stats = QueryStats()
        alpha = self.params.alpha
        stop_mass = min(self.r_max * max(view.m, 1), 0.999)
        decision = self._route_power(1)
        with self.timers.measure("Power Iteration"):
            if decision.backend == "spmm":
                reserves, residues, sweeps = self._spmm_sweeps(
                    np.array([view.to_index(source)], dtype=np.int64),
                    alpha,
                    stop_mass,
                )
                reserve, residue = reserves[0], residues[0]
            else:
                # raw-row backend: sweep the (possibly slack) CSR rows
                # directly — no packed scipy matrix to rebuild after
                # graph deltas, and the scipy-free fallback.
                residue = np.zeros(view.n, dtype=np.float64)
                residue[view.to_index(source)] = 1.0
                reserve = np.zeros(view.n, dtype=np.float64)
                reserve, residue, sweeps = power_phase(
                    view, residue, reserve, alpha, stop_mass
                )
            stats.extra["sweeps"] = sweeps
            stats.extra["backend"] = decision.backend
        with self.timers.measure("Random Walk"):
            walk = add_walk_estimates(
                view,
                reserve,
                residue,
                alpha,
                self._num_walks(),
                self._rng,
                index=self._walk_index(),
            )
            stats.walks = walk.num_walks
        self.last_query_stats = stats
        return PPRVector(reserve, view, source)

    def query_batch(self, sources: Sequence[int]) -> list[PPRVector]:
        """Same-snapshot batch through cost-model-capped SpMM sweeps.

        The batch runs in sub-batches of the dispatcher's effective
        batch size rather than all B columns at once: scipy's CSR SpMM
        accumulates each output column in the same index order as the
        single-vector matvec, so the split changes no bits while
        keeping the live ``(n, B)`` write-set cache-resident (the
        documented ``B = 16`` regression).  When the scipy probe fails
        (or an env override forces the raw-row backend) the batch
        degrades to per-source queries.
        """
        if self.engine not in ("batched", "auto") or len(sources) <= 1:
            return super().query_batch(sources)
        b_count = len(sources)
        decision = self._route_power(b_count)
        if decision.backend != "spmm":
            return super().query_batch(sources)
        view = self.view
        stats = QueryStats()
        alpha = self.params.alpha
        source_indices = np.array(
            [view.to_index(s) for s in sources], dtype=np.int64
        )
        stop_mass = min(self.r_max * max(view.m, 1), 0.999)
        with self.timers.measure("Power Iteration"):
            reserves_b = np.zeros((b_count, view.n), dtype=np.float64)
            residues_b = np.zeros((b_count, view.n), dtype=np.float64)
            sweeps = 0
            chunks = decision.chunks or (
                np.arange(b_count, dtype=np.int64),
            )
            for chunk in chunks:
                res, rem, sweeps = self._spmm_sweeps(
                    source_indices[chunk], alpha, stop_mass
                )
                reserves_b[chunk] = res
                residues_b[chunk] = rem
            stats.extra["sweeps"] = sweeps
            stats.extra["backend"] = decision.backend
            stats.extra["effective_batch"] = decision.effective_batch
        with self.timers.measure("Random Walk"):
            walk = add_walk_estimates_batch(
                view,
                reserves_b,
                residues_b,
                alpha,
                self._num_walks(),
                self._rng,
                index=self._walk_index(),
            )
            stats.walks = walk.num_walks
        stats.extra["batch_size"] = b_count
        self.last_query_stats = stats
        return [
            PPRVector(reserves_b[b], view, source)
            for b, source in enumerate(sources)
        ]

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        with self.timers.measure("Graph Update"):
            resolved = update.apply(self.graph)
            self.view  # refresh snapshot within the update cost
        return resolved

    def _walk_index(self) -> WalkIndex | None:
        return None


class SpeedPPRPlus(SpeedPPR):
    """Index-based SpeedPPR+ — precomputed walks, maintained per update.

    ``index_maintenance`` selects "rebuild" (the paper's full
    regeneration, the default and test oracle) or "incremental"
    (FIRM-style affected-walk resampling, :mod:`repro.ppr.incremental`).
    """

    name = "SpeedPPR+"
    is_index_based = True

    def __init__(
        self,
        graph: DynamicGraph,
        params: PPRParams | None = None,
        r_max: float | None = None,
        engine: str = "scalar",
        index_maintenance: str = "rebuild",
    ) -> None:
        from repro.ppr.fora import INDEX_MAINTENANCE_MODES

        if index_maintenance not in INDEX_MAINTENANCE_MODES:
            raise ValueError(
                f"index_maintenance must be one of "
                f"{INDEX_MAINTENANCE_MODES}, got {index_maintenance!r}"
            )
        self.index_maintenance = index_maintenance
        super().__init__(graph, params, r_max, engine)
        self._index: WalkIndex | None = None
        self._ensure_index()

    def _walks_per_unit(self) -> float:
        return self.r_max * self._num_walks()

    def _build_index(self) -> None:
        with self.timers.measure("Index Build"):
            self._index = WalkIndex(
                self.view,
                self.params.alpha,
                self._walks_per_unit(),
                self._rng,
                track_edges=self.index_maintenance == "incremental",
            )

    def _ensure_index(self) -> None:
        # version-keyed (not view identity): compaction must not force
        # an index rebuild — see ForaPlus._ensure_index.
        if (
            self._index is None
            or self._index.view.version != self.view.version
        ):
            self._build_index()

    def _on_hyperparameters_changed(self) -> None:
        self._build_index()

    def _walk_index(self) -> WalkIndex:
        self._ensure_index()
        return self._index

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        if self.index_maintenance == "incremental" and self._index is not None:
            with self.timers.measure("Graph Update"):
                resolved = update.apply(self.graph)
                view = self.view
            with self.timers.measure("Index Update"):
                self._index.apply_edge_update(
                    view,
                    view.to_index(resolved.u),
                    view.to_index(resolved.v),
                    resolved.kind,
                )
            return resolved
        with self.timers.measure("Graph Update"):
            resolved = update.apply(self.graph)
        with self.timers.measure("Index Build"):
            self._index = WalkIndex(
                self.view, self.params.alpha, self._walks_per_unit(), self._rng
            )
        return resolved


class SpeedPPRPlusIncremental(SpeedPPRPlus):
    """SpeedPPR+ with incremental walk-index maintenance by default."""

    name = "SpeedPPR+inc"

    def __init__(
        self,
        graph: DynamicGraph,
        params: PPRParams | None = None,
        r_max: float | None = None,
        engine: str = "scalar",
        index_maintenance: str = "incremental",
    ) -> None:
        super().__init__(graph, params, r_max, engine, index_maintenance)
