"""SpeedPPR and SpeedPPR+ (Wu et al., SIGMOD 2021).

SpeedPPR unifies the *global* approach (whole-graph power iteration)
with the *local* one (forward push): it runs vectorized power-iteration
sweeps — which act like a simultaneous push on every node — until the
total residue drops below ``r_max * m``, then hands the remaining
residues to the random-walk estimator.

Query cost ~ m * log(1 / (r_max m)) + m * r_max * W, the Table I form
``log(1/(r_max m)) tau_1 + r_max tau_2`` once the graph-size factors are
folded into the constants.

* :class:`SpeedPPR` — index-free; O(1)-ish updates (``tau_3``).
* :class:`SpeedPPRPlus` — walk index; update regenerates the index
  (``r_max * tau_3``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np
from scipy import sparse

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.ppr.base import (
    DynamicPPRAlgorithm,
    PPRParams,
    PPRVector,
    QueryStats,
    clip_unit,
)
from repro.ppr.kernels import power_phase
from repro.ppr.power_iteration import transition_matrix
from repro.ppr.pushwalk import add_walk_estimates, add_walk_estimates_batch
from repro.ppr.random_walk import WalkIndex


class SpeedPPR(DynamicPPRAlgorithm):
    """Index-free SpeedPPR (PowerPush + online walks).

    Hyperparameters
    ---------------
    r_max:
        Residue-sum stopping threshold of the power-iteration phase,
        expressed per edge: sweeps stop once sum(residue) <= r_max * m.
    """

    name = "SpeedPPR"
    is_index_based = False
    hyperparameter_names = ("r_max",)
    supported_engines = ("scalar", "frontier", "batched")

    def __init__(
        self,
        graph: DynamicGraph,
        params: PPRParams | None = None,
        r_max: float | None = None,
        engine: str = "scalar",
    ) -> None:
        super().__init__(graph, params)
        self._matrix_t: sparse.csr_matrix | None = None
        self._matrix_view = None
        self.r_max = r_max if r_max is not None else self.default_r_max()
        if engine != "scalar":
            self.set_engine(engine)

    def default_r_max(self) -> float:
        """Default that balances sweeps against walks: 1/sqrt(m W)."""
        view = self.view
        w = self._num_walks()
        m = max(view.m, 1)
        return clip_unit(1.0 / math.sqrt(m * w))

    def default_hyperparameters(self) -> dict[str, float]:
        return {"r_max": self.default_r_max()}

    def _num_walks(self) -> int:
        """SpeedPPR's W = 2 (2 eps/3 + 2) log(n) / (eps^2 delta), capped."""
        n = max(self.view.n, 2)
        params = self.params
        delta = params.resolved_delta(n)
        w = 2 * (2 * params.epsilon / 3 + 2) * math.log(n) / (
            params.epsilon**2 * delta
        )
        return max(1, min(int(math.ceil(w)), params.walk_cap))

    def _transition_t(self) -> sparse.csr_matrix:
        """Cached P^T for the current snapshot."""
        view = self.view
        if self._matrix_t is None or self._matrix_view is not view:
            self._matrix_t = transition_matrix(view).T.tocsr()
            self._matrix_view = view
        return self._matrix_t

    # ------------------------------------------------------------------
    def query(self, source: int) -> PPRVector:
        view = self.view
        stats = QueryStats()
        alpha = self.params.alpha
        with self.timers.measure("Power Iteration"):
            residue = np.zeros(view.n, dtype=np.float64)
            residue[view.to_index(source)] = 1.0
            reserve = np.zeros(view.n, dtype=np.float64)
            stop_mass = min(self.r_max * max(view.m, 1), 0.999)
            if self.engine != "scalar":
                # frontier/batched: sweep the raw (possibly slack) CSR
                # rows directly — no packed scipy matrix to rebuild
                # after graph deltas.
                reserve, residue, sweeps = power_phase(
                    view, residue, reserve, alpha, stop_mass
                )
            else:
                matrix_t = self._transition_t()
                sweeps = 0
                # Each sweep multiplies the residue mass by (1 - alpha),
                # so the loop runs ~ log(1/(r_max m)) / log(1/(1-alpha))
                # times.
                while residue.sum() > stop_mass and sweeps < 200:
                    reserve += alpha * residue
                    residue = (1.0 - alpha) * (matrix_t @ residue)
                    sweeps += 1
            stats.extra["sweeps"] = sweeps
        with self.timers.measure("Random Walk"):
            walk = add_walk_estimates(
                view,
                reserve,
                residue,
                alpha,
                self._num_walks(),
                self._rng,
                index=self._walk_index(),
            )
            stats.walks = walk.num_walks
        self.last_query_stats = stats
        return PPRVector(reserve, view, source)

    def query_batch(self, sources: Sequence[int]) -> list[PPRVector]:
        """Same-snapshot batch; engine="batched" sweeps all B columns.

        PowerPush is mass-preserving, so every column's residue mass
        after k sweeps is exactly (1 - alpha)^k — all sources cross the
        ``stop_mass`` threshold on the same sweep and a single
        ``(n, B)`` matrix product per sweep serves the whole batch.
        """
        if self.engine != "batched" or len(sources) <= 1:
            return super().query_batch(sources)
        view = self.view
        stats = QueryStats()
        alpha = self.params.alpha
        b_count = len(sources)
        source_indices = np.array(
            [view.to_index(s) for s in sources], dtype=np.int64
        )
        with self.timers.measure("Power Iteration"):
            matrix_t = self._transition_t()
            residues = np.zeros((view.n, b_count), dtype=np.float64)
            residues[source_indices, np.arange(b_count)] = 1.0
            reserves = np.zeros((view.n, b_count), dtype=np.float64)
            stop_mass = min(self.r_max * max(view.m, 1), 0.999)
            sweeps = 0
            while residues[:, 0].sum() > stop_mass and sweeps < 200:
                reserves += alpha * residues
                residues = (1.0 - alpha) * (matrix_t @ residues)
                sweeps += 1
            stats.extra["sweeps"] = sweeps
        with self.timers.measure("Random Walk"):
            # walk phase expects (B, n) row-major batches
            reserves_b = np.ascontiguousarray(reserves.T)
            residues_b = np.ascontiguousarray(residues.T)
            walk = add_walk_estimates_batch(
                view,
                reserves_b,
                residues_b,
                alpha,
                self._num_walks(),
                self._rng,
                index=self._walk_index(),
            )
            stats.walks = walk.num_walks
        stats.extra["batch_size"] = b_count
        self.last_query_stats = stats
        return [
            PPRVector(reserves_b[b], view, source)
            for b, source in enumerate(sources)
        ]

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        with self.timers.measure("Graph Update"):
            resolved = update.apply(self.graph)
            self.view  # refresh snapshot within the update cost
        return resolved

    def _walk_index(self) -> WalkIndex | None:
        return None


class SpeedPPRPlus(SpeedPPR):
    """Index-based SpeedPPR+ — precomputed walks, rebuilt per update."""

    name = "SpeedPPR+"
    is_index_based = True

    def __init__(
        self,
        graph: DynamicGraph,
        params: PPRParams | None = None,
        r_max: float | None = None,
        engine: str = "scalar",
    ) -> None:
        super().__init__(graph, params, r_max, engine)
        self._index: WalkIndex | None = None
        self._ensure_index()

    def _walks_per_unit(self) -> float:
        return self.r_max * self._num_walks()

    def _ensure_index(self) -> None:
        if self._index is None or self._index.view is not self.view:
            with self.timers.measure("Index Build"):
                self._index = WalkIndex(
                    self.view, self.params.alpha, self._walks_per_unit(), self._rng
                )

    def _on_hyperparameters_changed(self) -> None:
        with self.timers.measure("Index Build"):
            self._index = WalkIndex(
                self.view, self.params.alpha, self._walks_per_unit(), self._rng
            )

    def _walk_index(self) -> WalkIndex:
        self._ensure_index()
        return self._index

    def apply_update(self, update: EdgeUpdate) -> EdgeUpdate:
        with self.timers.measure("Graph Update"):
            resolved = update.apply(self.graph)
        with self.timers.measure("Index Build"):
            self._index = WalkIndex(
                self.view, self.params.alpha, self._walks_per_unit(), self._rng
            )
        return resolved
