"""Hyperparameter-search baselines (Table IV competitors of Quota).

Grid Search, Random Search, and Bayesian Optimization all share the
defining weakness the paper highlights: they must *evaluate* each
candidate configuration by actually running the PPR system and
measuring response time, so their cost is many full workload replays —
versus Quota's closed-form model solve.
"""

from repro.baselines.search import (
    BayesianOptimizationSearch,
    GridSearch,
    HyperparameterSearch,
    RandomSearch,
    SearchResult,
)

__all__ = [
    "BayesianOptimizationSearch",
    "GridSearch",
    "HyperparameterSearch",
    "RandomSearch",
    "SearchResult",
]
