"""Black-box hyperparameter search baselines.

All three searchers optimize an arbitrary evaluation function

    evaluate(beta: dict[str, float]) -> float      (lower is better)

over thresholds in (0, 1), sampling/optimizing in log10 space.  In the
Table IV experiment the evaluation function replays a probe workload
through the PPR system and returns the measured mean response time —
the expensive feedback loop Quota's closed-form model avoids.

The Bayesian optimizer is a compact Gaussian-process + expected-
improvement implementation (RBF kernel, scipy only), the textbook
method of Snoek et al. [44].
"""

from __future__ import annotations

import itertools
import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

Evaluator = Callable[[dict[str, float]], float]

#: log10 search box matching the Quota controller's
LOG_LO = -8.0
LOG_HI = -1e-6


@dataclass(slots=True)
class SearchResult:
    """Outcome of one hyperparameter search."""

    best_beta: dict[str, float]
    best_value: float
    evaluations: int
    elapsed_seconds: float
    history: list[tuple[dict[str, float], float]] = field(default_factory=list)


class HyperparameterSearch(ABC):
    """Common driver: subclasses yield candidate points to evaluate."""

    name: str = "search"

    def search(
        self,
        evaluate: Evaluator,
        param_names: Sequence[str],
        rng: np.random.Generator | int | None = None,
    ) -> SearchResult:
        """Run the search; returns the best candidate found."""
        if not param_names:
            raise ValueError("need at least one hyperparameter")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        started = time.perf_counter()
        history: list[tuple[dict[str, float], float]] = []

        def record(beta: dict[str, float]) -> float:
            value = float(evaluate(beta))
            history.append((beta, value))
            return value

        self._drive(record, tuple(param_names), rng)
        if not history:
            raise RuntimeError(f"{self.name} evaluated no candidates")
        best_beta, best_value = min(history, key=lambda item: item[1])
        return SearchResult(
            best_beta=best_beta,
            best_value=best_value,
            evaluations=len(history),
            elapsed_seconds=time.perf_counter() - started,
            history=history,
        )

    @abstractmethod
    def _drive(
        self,
        record: Evaluator,
        param_names: tuple[str, ...],
        rng: np.random.Generator,
    ) -> None:
        """Evaluate candidates through ``record``."""


class GridSearch(HyperparameterSearch):
    """Exhaustive evaluation of a per-parameter value grid.

    The default grid is the paper's incomplete space
    {0.1, 0.2, ..., 1.0} scaled logarithmically into the threshold
    range; a custom grid may be supplied.
    """

    name = "Grid Search"

    def __init__(self, grid: Sequence[float] | None = None) -> None:
        if grid is None:
            grid = [10.0**e for e in np.linspace(-6.0, -0.5, 10)]
        if not grid:
            raise ValueError("grid must be non-empty")
        if any(not 0 < g < 1 for g in grid):
            raise ValueError("grid values must lie in (0, 1)")
        self.grid = list(grid)

    def _drive(self, record, param_names, rng):
        for combo in itertools.product(self.grid, repeat=len(param_names)):
            record(dict(zip(param_names, combo)))


class RandomSearch(HyperparameterSearch):
    """Log-uniform random sampling of the threshold box."""

    name = "Random Search"

    def __init__(self, num_samples: int = 50) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.num_samples = num_samples

    def _drive(self, record, param_names, rng):
        for _ in range(self.num_samples):
            exponents = rng.uniform(LOG_LO, LOG_HI, size=len(param_names))
            record(dict(zip(param_names, (10.0**exponents).tolist())))


class BayesianOptimizationSearch(HyperparameterSearch):
    """GP + expected-improvement Bayesian optimization in log space.

    Parameters
    ----------
    num_initial:
        Random (log-uniform) warm-up evaluations.
    num_iterations:
        GP-guided evaluations after the warm-up.
    length_scale, noise:
        RBF kernel hyperparameters (log10 units) and observation noise.
    """

    name = "Bayesian Optimization"

    def __init__(
        self,
        num_initial: int = 5,
        num_iterations: int = 15,
        length_scale: float = 1.5,
        noise: float = 1e-6,
    ) -> None:
        if num_initial < 1 or num_iterations < 0:
            raise ValueError("need num_initial >= 1, num_iterations >= 0")
        self.num_initial = num_initial
        self.num_iterations = num_iterations
        self.length_scale = length_scale
        self.noise = noise

    # -- GP internals ----------------------------------------------------
    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = (
            np.sum(a**2, axis=1)[:, None]
            + np.sum(b**2, axis=1)[None, :]
            - 2.0 * a @ b.T
        )
        return np.exp(-0.5 * np.maximum(sq, 0.0) / self.length_scale**2)

    def _posterior(
        self, xs: np.ndarray, ys: np.ndarray, grid: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """GP posterior mean/std on ``grid`` given observations."""
        y_mean = ys.mean()
        y_std = ys.std() or 1.0
        ys_n = (ys - y_mean) / y_std
        k_xx = self._kernel(xs, xs) + self.noise * np.eye(len(xs))
        k_xg = self._kernel(xs, grid)
        chol = cho_factor(k_xx, lower=True)
        alpha = cho_solve(chol, ys_n)
        mean = k_xg.T @ alpha
        v = cho_solve(chol, k_xg)
        var = np.maximum(1.0 - np.sum(k_xg * v, axis=0), 1e-12)
        return mean * y_std + y_mean, np.sqrt(var) * y_std

    def _expected_improvement(
        self, mean: np.ndarray, std: np.ndarray, best: float
    ) -> np.ndarray:
        gap = best - mean
        z = gap / std
        return gap * norm.cdf(z) + std * norm.pdf(z)

    def _drive(self, record, param_names, rng):
        dim = len(param_names)
        xs: list[np.ndarray] = []
        ys: list[float] = []

        def observe(x: np.ndarray) -> None:
            beta = dict(zip(param_names, (10.0**x).tolist()))
            ys.append(record(beta))
            xs.append(x)

        for _ in range(self.num_initial):
            observe(rng.uniform(LOG_LO, LOG_HI, size=dim))
        for _ in range(self.num_iterations):
            grid = rng.uniform(LOG_LO, LOG_HI, size=(256, dim))
            mean, std = self._posterior(
                np.asarray(xs), np.asarray(ys), grid
            )
            ei = self._expected_improvement(mean, std, min(ys))
            observe(grid[int(np.argmax(ei))])
