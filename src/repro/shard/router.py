"""Source-id routing: which shard owns which queries.

The fabric replicates the graph and partitions the *source-id space*,
so a router is a pure function ``source -> shard_id`` plus the health
mask the manager maintains.  Two strategies ship:

* :class:`HashRouter` — multiplicative integer hash of the source id.
  Spreads any source distribution (including the Zipf hot sets the
  scenario families generate) evenly across shards; the right default.
* :class:`RangeRouter` — contiguous ranges of the id space.  Keeps
  locality (sources 0..n/k-1 on shard 0, ...), which matters once
  per-shard caches are warmed by crawl-ordered ids; degenerate under
  skew concentrated in one range.

Routing is *static*: a source always maps to the same shard, so the
per-shard result caches and Seed queues stay effective.  Health is
handled above the pure mapping — :meth:`Router.route` returns the
owning shard regardless of health, and the manager sheds (rather than
re-routes) queries for unhealthy shards: serving a source from a shard
that never saw its cache/Seed state would be correct but would lie
about steady-state latencies, and the respawn path restores the owner
within one log replay anyway.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class Router(ABC):
    """Pure, total mapping from source node id to owning shard."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    @abstractmethod
    def route(self, source: int) -> int:
        """Owning shard id of ``source`` (always in range)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class HashRouter(Router):
    """Multiplicative hash of the source id (Fibonacci hashing).

    ``source * 2654435761 mod 2^32`` scrambles consecutive ids across
    the whole 32-bit space before the modulo, so hot sets of nearby
    ids do not pile onto one shard.
    """

    _KNUTH = 2654435761  # 2^32 / golden ratio, the classic multiplier

    def route(self, source: int) -> int:
        if source < 0:
            raise ValueError(f"source must be >= 0, got {source}")
        return ((source * self._KNUTH) & 0xFFFFFFFF) % self.num_shards


class RangeRouter(Router):
    """Contiguous id ranges: shard i owns ``[i*n/k, (i+1)*n/k)``.

    ``num_nodes`` fixes the range width; ids at or beyond it fall into
    the last shard (updates may reference nodes appended later).
    """

    def __init__(self, num_shards: int, num_nodes: int) -> None:
        super().__init__(num_shards)
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        # ceil-division width so every id < num_nodes lands in range
        self._width = -(-num_nodes // num_shards)

    def route(self, source: int) -> int:
        if source < 0:
            raise ValueError(f"source must be >= 0, got {source}")
        return min(source // self._width, self.num_shards - 1)

    def __repr__(self) -> str:
        return (
            f"RangeRouter(num_shards={self.num_shards}, "
            f"num_nodes={self.num_nodes})"
        )


#: registry for CLI/bench selection by name
ROUTERS = ("hash", "range")


def make_router(name: str, num_shards: int, num_nodes: int) -> Router:
    """Instantiate a router by registry name."""
    if name == "hash":
        return HashRouter(num_shards)
    if name == "range":
        return RangeRouter(num_shards, num_nodes)
    raise ValueError(f"unknown router {name!r}; choose from {ROUTERS}")
