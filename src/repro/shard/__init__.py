"""Sharded serving fabric: scale the runtime past one process.

The concurrent :class:`~repro.serving.ServingRuntime` scales PPR
queries across threads but stays pinned inside one interpreter; this
package partitions the *source-id space* across N worker processes
that each replicate the graph — the deployment shape the paper's
multi-core allocation analysis assumes — and keeps the replicas
convergent through a fabric-wide versioned update broadcast.

Layering (each importable without the ones above it):

* :mod:`repro.shard.messages` — picklable command/reply protocol and
  the ordering contract (:class:`UpdateOrderError`).
* :mod:`repro.shard.router`   — pluggable ``source -> shard_id``
  mapping (hash or contiguous-range).
* :mod:`repro.shard.worker`   — :class:`ShardServer`, the
  transport-agnostic command loop around one ServingRuntime.
* :mod:`repro.shard.backend`  — :class:`ProcessShard` (spawned
  process, pipes) and :class:`InprocShard` (thread; deterministic
  tests) behind one future-based :class:`ShardHandle` interface.
* :mod:`repro.shard.manager`  — :class:`ShardManager`: routing,
  global admission (bounded per-shard inflight, shed with
  ``Retry-After`` hints), versioned broadcasts, crash respawn from
  the update log, fleet metrics aggregation.

The asyncio front door in :mod:`repro.api` exposes a manager over
HTTP; ``benchmarks/bench_shard_scaling.py`` drives one closed-loop.
"""

from repro.shard.backend import (
    BACKENDS,
    InprocShard,
    ProcessShard,
    ShardHandle,
    make_shard,
)
from repro.shard.manager import (
    QueryOutcome,
    ShardManager,
    UpdateOutcome,
)
from repro.shard.messages import (
    ShardReply,
    ShardSpec,
    ShardUnavailableError,
    UpdateOrderError,
)
from repro.shard.router import (
    ROUTERS,
    HashRouter,
    RangeRouter,
    Router,
    make_router,
)
from repro.shard.worker import ShardServer

__all__ = [
    "BACKENDS",
    "ROUTERS",
    "HashRouter",
    "InprocShard",
    "ProcessShard",
    "QueryOutcome",
    "RangeRouter",
    "Router",
    "ShardHandle",
    "ShardManager",
    "ShardReply",
    "ShardServer",
    "ShardSpec",
    "ShardUnavailableError",
    "UpdateOrderError",
    "UpdateOutcome",
    "make_router",
    "make_shard",
]
