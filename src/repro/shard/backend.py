"""Shard transports: the same command protocol over two substrates.

* :class:`ProcessShard` — a real worker **process** (default start
  method ``spawn``: the manager runs threads, and forking a threaded
  parent inherits lock state unsafely).  Commands go down one simplex
  pipe, replies come back on another; each pipe end is owned by
  exactly one thread.  This is the backend that escapes the GIL: every
  shard has its own interpreter, so PPR compute parallelizes across
  cores.
* :class:`InprocShard` — the identical :class:`~repro.shard.worker.ShardServer`
  on a plain thread in this process.  Deterministic (no pickling, no
  scheduler variance beyond threads), instant startup; the backend the
  unit tests and the in-memory front-door transport use.

Both present one future-based interface: ``submit(command)`` returns a
:class:`concurrent.futures.Future` resolved with the worker's
:class:`~repro.shard.messages.ShardReply`; a dead shard fails every
pending and future submission with
:class:`~repro.shard.messages.ShardUnavailableError`, and fires the
``on_death`` callback exactly once so the manager can shed the range
and respawn.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from abc import ABC, abstractmethod
from collections.abc import Callable
from concurrent.futures import Future
from typing import TYPE_CHECKING

from repro.graph.updates import EdgeUpdate
from repro.serving.rwlock import wrap_mutex
from repro.shard.messages import (
    Command,
    CrashCommand,
    HealthCommand,
    MetricsCommand,
    QueryCommand,
    ReconfigureCommand,
    ShardReply,
    ShardSpec,
    ShardUnavailableError,
    StopCommand,
    UpdateCommand,
)
from repro.shard.worker import ShardServer, shard_worker_main

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

#: default start method; ``fork`` is opt-in (threaded parent)
DEFAULT_START_METHOD = "spawn"

ReplyFuture = Future  # Future[ShardReply]; bare for runtime generics

DeathCallback = Callable[["ShardHandle", str], None]


class ShardHandle(ABC):
    """Future-based client for one shard worker."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.shard_id = spec.shard_id
        self._next_req = 0  # guarded-by: self._pending_lock
        self._pending: dict[int, ReplyFuture] = {}  # guarded-by: self._pending_lock
        self._pending_lock = wrap_mutex(
            threading.Lock(), "shard.pending"
        )
        self._dead = threading.Event()
        self._death_reason = ""
        self.on_death: DeathCallback | None = None

    # ------------------------------------------------------------------
    @property
    def healthy(self) -> bool:
        return not self._dead.is_set()

    @property
    def death_reason(self) -> str:
        return self._death_reason

    def submit(self, build: Callable[[int], Command]) -> ReplyFuture:
        """Assign a req id, register a future, send the command.

        ``build`` receives the fresh req id and returns the command —
        exposed at this level so tests can inject protocol-violating
        commands (e.g. out-of-order update versions) directly.
        """
        future: ReplyFuture = Future()
        if self._dead.is_set():
            future.set_exception(
                ShardUnavailableError(
                    f"shard {self.shard_id} is down: {self._death_reason}"
                )
            )
            return future
        with self._pending_lock:
            req_id = self._next_req
            self._next_req += 1
            self._pending[req_id] = future
        command = build(req_id)
        try:
            self._send(command)
        except ShardUnavailableError as exc:
            with self._pending_lock:
                self._pending.pop(req_id, None)
            if not future.done():
                future.set_exception(exc)
        return future

    # -- typed convenience wrappers ------------------------------------
    def query(
        self,
        source: int,
        budget_s: float | None = None,
        top_k: int | None = None,
    ) -> ReplyFuture:
        return self.submit(
            lambda rid: QueryCommand(rid, source, budget_s, top_k)
        )

    def update(self, version: int, update: EdgeUpdate) -> ReplyFuture:
        return self.submit(
            lambda rid: UpdateCommand(
                rid, version, update.u, update.v, update.kind
            )
        )

    def reconfigure(self, lambda_q: float, lambda_u: float) -> ReplyFuture:
        return self.submit(
            lambda rid: ReconfigureCommand(rid, lambda_q, lambda_u)
        )

    def metrics(self) -> ReplyFuture:
        return self.submit(lambda rid: MetricsCommand(rid))

    def health(self) -> ReplyFuture:
        return self.submit(lambda rid: HealthCommand(rid))

    def crash(self) -> None:
        """Failure injection: make the worker die without cleanup."""
        try:
            self.submit(lambda rid: CrashCommand(rid))
        except ShardUnavailableError:
            pass

    # ------------------------------------------------------------------
    def _resolve(self, reply: ShardReply) -> None:
        with self._pending_lock:
            future = self._pending.pop(reply.req_id, None)
        if future is not None and not future.done():
            future.set_result(reply)

    def _mark_dead(self, reason: str) -> None:
        if self._dead.is_set():
            return
        self._death_reason = reason
        self._dead.set()
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        error = ShardUnavailableError(
            f"shard {self.shard_id} died: {reason}"
        )
        for future in pending:
            if not future.done():
                future.set_exception(error)
        callback = self.on_death
        if callback is not None:
            try:
                callback(self, reason)
            except Exception:  # pragma: no cover - observer must not kill us
                pass

    # -- transport obligations ----------------------------------------
    @abstractmethod
    def _send(self, command: Command) -> None:
        """Deliver one command to the worker (raise ShardUnavailable)."""

    @abstractmethod
    def stop(self, timeout_s: float = 30.0) -> None:
        """Graceful shutdown; safe to call on a dead shard."""

    @abstractmethod
    def kill(self) -> None:
        """Hard teardown (no drain); used by crash handling and tests."""

    def __repr__(self) -> str:
        state = "healthy" if self.healthy else f"dead({self._death_reason})"
        return f"{type(self).__name__}(shard={self.shard_id}, {state})"


# ----------------------------------------------------------------------
class ProcessShard(ShardHandle):
    """One worker process behind two simplex pipes."""

    def __init__(
        self, spec: ShardSpec, start_method: str = DEFAULT_START_METHOD
    ) -> None:
        super().__init__(spec)
        ctx = multiprocessing.get_context(start_method)
        cmd_r, cmd_w = ctx.Pipe(duplex=False)
        reply_r, reply_w = ctx.Pipe(duplex=False)
        self._cmd: "Connection" = cmd_w
        self._reply: "Connection" = reply_r
        self._send_lock = wrap_mutex(threading.Lock(), "shard.send")
        self._process = ctx.Process(
            target=shard_worker_main,
            args=(spec, cmd_r, reply_w),
            name=f"shard-worker-{spec.shard_id}",
            daemon=True,
        )
        self._process.start()
        # close our copies of the child's ends so a dead child turns
        # into EOF on the reply pipe instead of a hang
        cmd_r.close()
        reply_w.close()
        self._receiver = threading.Thread(
            target=self._receive_loop,
            name=f"shard-{spec.shard_id}-receiver",
            daemon=True,
        )
        self._receiver.start()

    def _receive_loop(self) -> None:
        while True:
            try:
                reply = self._reply.recv()
            except (EOFError, OSError):
                exit_code = self._process.exitcode
                self._mark_dead(
                    f"worker process exited (exitcode={exit_code})"
                )
                return
            self._resolve(reply)

    def _send(self, command: Command) -> None:
        if self._dead.is_set():
            raise ShardUnavailableError(
                f"shard {self.shard_id} is down: {self._death_reason}"
            )
        try:
            with self._send_lock:
                self._cmd.send(command)
        except (BrokenPipeError, OSError) as exc:
            self._mark_dead(f"command pipe broken: {exc!r}")
            raise ShardUnavailableError(
                f"shard {self.shard_id} command pipe broke"
            ) from exc

    def stop(self, timeout_s: float = 30.0) -> None:
        if self.healthy:
            try:
                self.submit(lambda rid: StopCommand(rid)).result(timeout_s)
            except Exception:
                pass
        self._process.join(timeout_s)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join(5.0)
        self._mark_dead("stopped")

    def kill(self) -> None:
        self._process.terminate()
        self._process.join(5.0)
        self._mark_dead("killed")


# ----------------------------------------------------------------------
class InprocShard(ShardHandle):
    """The worker loop on an in-process thread (deterministic tests)."""

    def __init__(self, spec: ShardSpec) -> None:
        super().__init__(spec)
        self._commands: "queue.SimpleQueue[Command | None]" = (
            queue.SimpleQueue()
        )
        self._ready = threading.Event()
        self._server: ShardServer | None = None
        self._paused = threading.Event()
        self._unpaused = threading.Event()
        self._unpaused.set()
        self._thread = threading.Thread(
            target=self._run,
            name=f"shard-inproc-{spec.shard_id}",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=60.0)
        if self._server is None and not self._dead.is_set():
            self._mark_dead("worker thread failed to initialize")

    def _run(self) -> None:
        try:
            server = ShardServer(self.spec, reply=self._resolve)
        except Exception as exc:  # pragma: no cover - bad spec
            self._mark_dead(f"worker init failed: {exc!r}")
            self._ready.set()
            return
        self._server = server
        self._ready.set()
        try:
            while True:
                command = self._commands.get()
                self._unpaused.wait()
                if command is None:
                    return
                if not server.handle(command):
                    return
        except Exception as exc:
            # mirror the process backend: a raising worker is dead; its
            # runtime threads must not linger
            try:
                server.runtime.stop(timeout_s=5.0, flush=False)
            except Exception:  # pragma: no cover - teardown best-effort
                pass
            self._mark_dead(f"worker raised: {exc!r}")

    # -- test hooks ----------------------------------------------------
    def pause(self) -> None:
        """Stall command processing (deterministic backlog in tests)."""
        self._unpaused.clear()

    def resume(self) -> None:
        self._unpaused.set()

    @property
    def server(self) -> ShardServer | None:
        """The live server (tests probe applied_broadcasts etc.)."""
        return self._server

    # ------------------------------------------------------------------
    def _send(self, command: Command) -> None:
        if self._dead.is_set():
            raise ShardUnavailableError(
                f"shard {self.shard_id} is down: {self._death_reason}"
            )
        self._commands.put(command)

    def stop(self, timeout_s: float = 30.0) -> None:
        if self.healthy:
            try:
                self.submit(lambda rid: StopCommand(rid)).result(timeout_s)
            except Exception:
                pass
        self._commands.put(None)
        self._thread.join(timeout_s)
        self._mark_dead("stopped")

    def kill(self) -> None:
        server = self._server
        if server is not None:
            try:
                server.runtime.stop(timeout_s=5.0, flush=False)
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        self._mark_dead("killed")
        self._commands.put(None)


#: registry for CLI/bench selection by name
BACKENDS = ("process", "inproc")


def make_shard(
    spec: ShardSpec,
    backend: str = "process",
    start_method: str = DEFAULT_START_METHOD,
) -> ShardHandle:
    """Instantiate a shard handle by backend name."""
    if backend == "process":
        return ProcessShard(spec, start_method)
    if backend == "inproc":
        return InprocShard(spec)
    raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
