"""Shard worker: one ServingRuntime behind a command pipe.

:class:`ShardServer` is the transport-agnostic core — it owns the
replicated graph, the PPR algorithm, a :class:`~repro.serving.ServingRuntime`
(worker threads, Seed queue, optional :class:`~repro.cache.PPRCache`,
optional :class:`~repro.core.quota.QuotaController`), and turns
commands into replies.  Two hosts drive it:

* :func:`shard_worker_main` — the ``multiprocessing`` entry point.
  Commands arrive on a simplex pipe; replies leave through an
  unbounded in-process queue drained by a dedicated sender thread, so
  the runtime's ``on_complete`` hook (which may fire inside a writer
  critical section) never blocks on pipe backpressure.
* :class:`~repro.shard.backend.InprocShard` — the same server on a
  plain thread, used by deterministic tests and the in-memory
  transport.

Completion plumbing: every query is submitted with its network
``req_id`` as the request *tag*; the runtime's ``on_complete``
callback fires once per terminal record (ok / shed / timeout /
failed), and the server maps tagged records back into
:class:`~repro.shard.messages.ShardReply` payloads.  Updates carry no
tag — they are acked at admission (state, not answers) — and the
version-order contract is enforced *before* submission:
a gap or reordering in the broadcast sequence raises
:class:`~repro.shard.messages.UpdateOrderError` after an error reply,
killing the worker so the manager respawns it from the versioned log
instead of letting a diverged replica keep answering.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.cache import PPRCache
from repro.core.calibration import calibrated_cost_model
from repro.core.quota import QuotaController
from repro.evaluation.runner import build_algorithm
from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate
from repro.obs import MetricsRegistry
from repro.ppr.base import PPRVector
from repro.ppr.power_iteration import ppr_exact
from repro.queueing.workload import QUERY, UPDATE, Request
from repro.serving.runtime import OK, QueryFn, ServedRequest, ServingRuntime
from repro.serving.rwlock import wrap_mutex
from repro.shard.messages import (
    Command,
    CrashCommand,
    HealthCommand,
    MetricsCommand,
    QueryCommand,
    ReconfigureCommand,
    ShardReply,
    ShardSpec,
    StopCommand,
    UpdateCommand,
    UpdateOrderError,
)

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

#: how long an update retries admission before the shard declares
#: itself wedged (updates are state — dropping one would diverge)
UPDATE_ADMIT_TIMEOUT_S = 30.0


class SimulatedCrashError(RuntimeError):
    """In-process stand-in for a hard worker crash (tests)."""


def _exact_query_fn(alpha: float) -> QueryFn:
    """Deterministic power-iteration executor (equivalence oracle).

    Pure function of (graph snapshot, source): no RNG state, so two
    replicas at the same graph version answer bit-for-bit equally no
    matter how queries interleaved before this one.
    """

    def query(graph: DynamicGraph, source: int) -> object:
        return ppr_exact(graph, source, alpha)

    return query


def build_graph(spec: ShardSpec) -> DynamicGraph:
    """Materialize the replicated snapshot a spec describes."""
    graph = DynamicGraph(spec.num_nodes)
    for u, v in spec.edges:
        graph.add_edge(u, v)
    return graph


def serialize_result(result: object, top_k: int | None) -> object:
    """Reply-payload form of a query result.

    Vectors always ship as ``[[node, value], ...]`` pairs (float64
    exact under pickle, JSON-friendly at the front door): node-sorted
    strictly-positive entries for the full vector, or the ``top_k``
    largest when a truncation was requested (the HTTP default, so
    payloads stay bounded on large graphs).
    """
    if isinstance(result, PPRVector):
        if top_k is not None:
            return [[node, value] for node, value in result.top_k(top_k)]
        return [
            [node, value]
            for node, value in sorted(result.as_dict().items())
        ]
    return repr(result)


class ShardServer:
    """Command loop body for one shard (transport supplied by host).

    Parameters
    ----------
    spec:
        Shard recipe; the graph is rebuilt locally from it.
    reply:
        Sink for outbound :class:`ShardReply` envelopes.  Must be
        non-blocking (the process host hands in an unbounded queue's
        ``put``).
    hard_crash:
        Invoked by :class:`CrashCommand`; the process host passes
        ``os._exit`` so the crash skips all cleanup.  ``None`` raises
        :class:`SimulatedCrashError` instead (in-process hosts).
    """

    def __init__(
        self,
        spec: ShardSpec,
        reply: Callable[[ShardReply], None],
        hard_crash: Callable[[], None] | None = None,
    ) -> None:
        self.spec = spec
        self.metrics = MetricsRegistry()
        self._reply = reply
        self._hard_crash = hard_crash
        self._applied_broadcasts = 0
        graph = build_graph(spec)
        algorithm = build_algorithm(
            spec.algorithm,
            graph,
            spec.walk_cap,
            seed=spec.seed,
            engine=spec.engine,
        )
        controller: QuotaController | None = None
        if spec.use_controller:
            model = calibrated_cost_model(
                algorithm,
                num_queries=spec.calibration_queries,
                rng=spec.seed + 1,
            )
            controller = QuotaController(
                model, extra_starts=[algorithm.get_hyperparameters()]
            )
        cache = (
            PPRCache(epsilon_c=spec.cache_epsilon, metrics=self.metrics)
            if spec.cache_epsilon is not None
            else None
        )
        query_fn: QueryFn | None = None
        if spec.query_mode == "exact":
            query_fn = _exact_query_fn(algorithm.params.alpha)
        self.runtime = ServingRuntime(
            algorithm,
            workers=spec.workers,
            epsilon_r=spec.epsilon_r,
            queue_capacity=spec.queue_capacity,
            controller=controller,
            query_fn=query_fn,
            cache=cache,
            on_complete=self._on_record,
            metrics=self.metrics,
        )
        self._cache = cache
        # req_id -> requested top_k for queries awaiting completion
        self._meta: dict[int, int | None] = {}  # guarded-by: self._meta_lock
        self._meta_lock = wrap_mutex(threading.Lock(), "shard.meta")
        self.runtime.start()

    # ------------------------------------------------------------------
    @property
    def applied_broadcasts(self) -> int:
        """Fabric versions observed so far (gap-free by contract)."""
        return self._applied_broadcasts

    def _on_record(self, record: ServedRequest) -> None:
        """Runtime completion hook: map tagged records to replies.

        Runs on runtime worker threads, possibly inside a writer
        critical section — keep it allocation-light and never block.
        """
        tag = record.request.tag
        if tag is None or record.request.kind != QUERY:
            return
        with self._meta_lock:
            top_k = self._meta.pop(tag, None)
        payload: dict[str, object] = {
            "status": record.status,
            "version": record.version,
            "cached": record.cached,
            "shed_reason": record.shed_reason,
            "response_s": record.response_s,
        }
        if record.status == OK:
            payload["values"] = serialize_result(record.result, top_k)
        self._reply(
            ShardReply(
                tag,
                self.spec.shard_id,
                record.status == OK,
                payload,
                error=record.error,
            )
        )

    # ------------------------------------------------------------------
    def handle(self, command: Command) -> bool:
        """Process one command; False ends the host's loop."""
        if isinstance(command, QueryCommand):
            self._handle_query(command)
        elif isinstance(command, UpdateCommand):
            self._handle_update(command)
        elif isinstance(command, ReconfigureCommand):
            self._handle_reconfigure(command)
        elif isinstance(command, MetricsCommand):
            self._reply(
                ShardReply(
                    command.req_id, self.spec.shard_id, True, self._snapshot()
                )
            )
        elif isinstance(command, HealthCommand):
            self._reply(
                ShardReply(
                    command.req_id, self.spec.shard_id, True, self._health()
                )
            )
        elif isinstance(command, StopCommand):
            self.runtime.stop()
            self._reply(
                ShardReply(
                    command.req_id, self.spec.shard_id, True, {"stopped": True}
                )
            )
            return False
        elif isinstance(command, CrashCommand):
            if self._hard_crash is not None:
                self._hard_crash()
            raise SimulatedCrashError(
                f"shard {self.spec.shard_id} crashed on command"
            )
        else:  # pragma: no cover - future-proofing
            self._reply(
                ShardReply(
                    getattr(command, "req_id", -1),
                    self.spec.shard_id,
                    False,
                    {},
                    error=f"unknown command {type(command).__name__}",
                )
            )
        return True

    # ------------------------------------------------------------------
    def _handle_query(self, command: QueryCommand) -> None:
        with self._meta_lock:
            self._meta[command.req_id] = command.top_k
        request = Request(
            time.perf_counter(), QUERY, source=command.source,
            tag=command.req_id,
        )
        # a shed submission records SHED -> _on_record already replied
        self.runtime.submit(request, deadline_s=command.budget_s)

    def _handle_update(self, command: UpdateCommand) -> None:
        expected = self._applied_broadcasts + 1
        if command.version != expected:
            message = (
                f"shard {self.spec.shard_id} received update version "
                f"{command.version}, expected {expected}: broadcast order "
                "violated; refusing to diverge"
            )
            self._reply(
                ShardReply(
                    command.req_id, self.spec.shard_id, False, {},
                    error=message,
                )
            )
            raise UpdateOrderError(message)
        update = EdgeUpdate(command.u, command.v, command.kind)
        request = Request(time.perf_counter(), UPDATE, update=update)
        deadline = time.monotonic() + UPDATE_ADMIT_TIMEOUT_S
        # updates are never dropped: retry admission until the bounded
        # queue has room (shed attempts leave SHED records, tag-less)
        while not self.runtime.submit(request):
            if time.monotonic() > deadline:
                message = (
                    f"shard {self.spec.shard_id} failed to admit update "
                    f"version {command.version} within "
                    f"{UPDATE_ADMIT_TIMEOUT_S}s"
                )
                self._reply(
                    ShardReply(
                        command.req_id, self.spec.shard_id, False, {},
                        error=message,
                    )
                )
                raise UpdateOrderError(message)
            time.sleep(0.001)
        self._applied_broadcasts = command.version
        self._reply(
            ShardReply(
                command.req_id,
                self.spec.shard_id,
                True,
                {"version": command.version, "accepted": True},
            )
        )

    def _handle_reconfigure(self, command: ReconfigureCommand) -> None:
        decision = self.runtime.reconfigure(command.lambda_q, command.lambda_u)
        if decision is None:
            payload: dict[str, object] = {"applied": False}
        else:
            payload = {
                "applied": True,
                "beta": dict(decision.beta),
                "regime": decision.regime,
                "predicted_response_time": decision.predicted_response_time,
            }
        self._reply(
            ShardReply(command.req_id, self.spec.shard_id, True, payload)
        )

    # ------------------------------------------------------------------
    def _health(self) -> dict[str, object]:
        return {
            "healthy": True,
            "shard_id": self.spec.shard_id,
            "applied_broadcasts": self._applied_broadcasts,
            "graph_version": self.runtime.algorithm.graph.version,
            "queue_depth": self.runtime.queue_depth,
            "pending_updates": self.runtime.pending_updates,
            "degraded": self.runtime.degraded,
        }

    def _snapshot(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "metrics": self.metrics.snapshot(),
            "state": self._health(),
        }
        if self._cache is not None:
            payload["cache"] = self._cache.stats()
        return payload


def _drain_replies(
    outbox: "queue.SimpleQueue[ShardReply | None]", conn: "Connection"
) -> None:
    """Sender-thread body: forward replies until the None sentinel."""
    while True:
        reply = outbox.get()
        if reply is None:
            return
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # manager went away
            return


def shard_worker_main(
    spec: ShardSpec, cmd_conn: "Connection", reply_conn: "Connection"
) -> None:
    """Process entry point: loop commands until stop/EOF/crash.

    The reply pipe is written by exactly one sender thread; the
    command pipe is read by exactly this (main) thread — each
    connection end stays single-threaded, the documented safe usage.
    """
    import os

    outbox: "queue.SimpleQueue[ShardReply | None]" = queue.SimpleQueue()
    sender = threading.Thread(
        target=_drain_replies,
        args=(outbox, reply_conn),
        name=f"shard-{spec.shard_id}-sender",
        daemon=True,
    )
    sender.start()
    server = ShardServer(
        spec, reply=outbox.put, hard_crash=lambda: os._exit(13)
    )
    try:
        while True:
            try:
                command = cmd_conn.recv()
            except (EOFError, OSError):
                break
            if not server.handle(command):
                break
    finally:
        outbox.put(None)
        sender.join(timeout=5.0)
        reply_conn.close()
