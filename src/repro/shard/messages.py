"""Wire protocol of the sharded serving fabric.

Everything that crosses a process boundary lives here: the
:class:`ShardSpec` a worker is built from, the command dataclasses the
manager sends, and the :class:`ShardReply` envelope workers send back.
All types are plain frozen dataclasses of primitives so they pickle
under the ``spawn`` start method (the safe default for a parent that
already runs threads) without dragging graph or algorithm state along.

Versioned update broadcast
--------------------------
Every edge update the fabric accepts is assigned one fabric-wide,
monotonically increasing ``version`` (1-based) by the
:class:`~repro.shard.manager.ShardManager` and broadcast to every
shard.  A shard MUST observe versions as a gap-free increasing
sequence; :class:`UpdateOrderError` is raised — never papered over —
when a broadcast arrives out of order, because an out-of-order apply
would silently diverge that shard's replicated graph from the rest of
the fleet (toggle semantics make apply order load-bearing: the same
multiset of updates applied in two orders can yield different edge
sets).  A shard that raises is torn down and respawned from the
manager's update log, which restores convergence by construction.
"""

from __future__ import annotations

from dataclasses import dataclass


class UpdateOrderError(RuntimeError):
    """An update broadcast arrived out of snapshot-version order.

    Raised by the shard worker instead of applying the update: a
    divergent replica answering queries is strictly worse than a dead
    one (the manager respawns dead shards from the versioned log).
    """


class ShardUnavailableError(RuntimeError):
    """The target shard died (or stopped) before answering."""


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """Everything a worker process needs to build its serving stack.

    The graph is *replicated* (every shard holds all nodes and edges)
    while the query source-id space is *partitioned* by the router —
    the deployment shape the D&A multi-core allocation analysis
    assumes, and the one that keeps any single-source query local to
    one worker.

    ``num_nodes`` + ``edges`` snapshot the graph at fabric start;
    updates broadcast after start carry the state forward identically
    on every shard.
    """

    shard_id: int
    num_shards: int
    num_nodes: int
    edges: tuple[tuple[int, int], ...]
    algorithm: str = "FORA"
    walk_cap: int = 2_000
    seed: int = 0
    engine: str = "scalar"
    epsilon_r: float = 0.0
    workers: int = 1
    queue_capacity: int = 1_024
    cache_epsilon: float | None = None
    #: "algorithm" serves queries through the spec'd algorithm;
    #: "exact" serves them through deterministic power iteration — the
    #: mode the cross-process equivalence oracle uses (bit-for-bit
    #: reproducible regardless of per-shard RNG interleaving)
    query_mode: str = "algorithm"
    #: build a calibrated QuotaController so `/reconfigure` can
    #: re-solve per shard (costs a calibration at worker start)
    use_controller: bool = False
    calibration_queries: int = 2

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if not 0 <= self.shard_id < self.num_shards:
            raise ValueError(
                f"shard_id {self.shard_id} outside [0, {self.num_shards})"
            )
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.query_mode not in ("algorithm", "exact"):
            raise ValueError(
                f"query_mode must be algorithm|exact, got {self.query_mode!r}"
            )


# ----------------------------------------------------------------------
# commands (manager -> worker)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class QueryCommand:
    """Serve one SSPPR query; reply when the runtime resolves it."""

    req_id: int
    source: int
    #: remaining deadline budget in seconds (deadline propagation: the
    #: front door subtracts time already spent queueing upstream)
    budget_s: float | None = None
    #: truncate the reply vector to its k largest entries (None = full)
    top_k: int | None = None


@dataclass(frozen=True, slots=True)
class UpdateCommand:
    """Apply one versioned edge update; acked at admission."""

    req_id: int
    version: int
    u: int
    v: int
    kind: str = "toggle"


@dataclass(frozen=True, slots=True)
class ReconfigureCommand:
    """Re-solve the shard's QuotaController at the given rates."""

    req_id: int
    lambda_q: float
    lambda_u: float


@dataclass(frozen=True, slots=True)
class MetricsCommand:
    """Snapshot the worker's metrics registry + serving state."""

    req_id: int


@dataclass(frozen=True, slots=True)
class HealthCommand:
    """Liveness/readiness probe."""

    req_id: int


@dataclass(frozen=True, slots=True)
class StopCommand:
    """Graceful shutdown: drain, stop the runtime, exit the loop."""

    req_id: int


@dataclass(frozen=True, slots=True)
class CrashCommand:
    """Hard-exit the worker without cleanup (failure-injection tests)."""

    req_id: int


Command = (
    QueryCommand
    | UpdateCommand
    | ReconfigureCommand
    | MetricsCommand
    | HealthCommand
    | StopCommand
    | CrashCommand
)


# ----------------------------------------------------------------------
# replies (worker -> manager)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ShardReply:
    """Envelope for every worker response.

    ``payload`` is a plain dict of primitives (query payloads carry
    ``status``/``version``/``cached``/``values``); ``error`` is set —
    and ``ok`` False — when the command failed worker-side.
    """

    req_id: int
    shard_id: int
    ok: bool
    payload: dict[str, object]
    error: str | None = None
