"""ShardManager: the control plane of the sharded serving fabric.

One manager owns ``num_shards`` workers that each replicate the full
graph and own a partition of the source-id space (see
:mod:`repro.shard.router`).  The manager

* **routes** queries to the owning shard, shedding — with a
  ``retry_after_s`` hint — when the owner is unhealthy or its bounded
  inflight window is full (global admission control on top of each
  worker's own AdmissionQueue);
* **broadcasts** edge updates to every shard under one fabric-wide
  monotonic version counter, holding the update lock across the whole
  broadcast so every shard observes the same gap-free sequence (the
  ordering contract :class:`~repro.shard.messages.UpdateOrderError`
  enforces worker-side);
* keeps the full **update log** and uses it to respawn crashed
  workers: a dead shard's range is shed until a fresh worker has
  replayed the log and converged on the fleet's graph version;
* **aggregates** per-worker metrics snapshots with its own routing
  counters for the front door's ``/metrics``.

All public methods are thread-safe; queries return
:class:`concurrent.futures.Future` objects resolving to
:class:`QueryOutcome` so both the closed-loop benchmark (threads) and
the asyncio front door (``asyncio.wrap_future``) can drive the same
manager.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING

from repro.graph.updates import EdgeUpdate
from repro.obs import MetricsRegistry, get_metrics
from repro.serving.rwlock import wrap_mutex
from repro.shard.backend import ShardHandle, make_shard
from repro.shard.messages import ShardReply, ShardSpec, ShardUnavailableError
from repro.shard.router import Router, make_router

if TYPE_CHECKING:
    from repro.graph.digraph import DynamicGraph

#: retry hint when the owning shard is down — dominated by respawn
#: latency (spawn + graph rebuild + log replay), not queueing
RETRY_AFTER_UNHEALTHY_S = 1.0
#: floor/ceiling for the inflight-full retry hint derived from the
#: observed round-trip distribution
RETRY_AFTER_MIN_S = 0.05
RETRY_AFTER_MAX_S = 5.0


@dataclass(frozen=True, slots=True)
class QueryOutcome:
    """Normalized result of one routed query.

    ``status`` is ``"ok"``, a runtime verdict (``"shed"``,
    ``"timeout"``, ``"failed"``), or ``"unavailable"`` when the owning
    worker died mid-flight.  ``values`` is the serialized PPR vector
    (``[[node, score], ...]``) on success; ``retry_after_s`` is set on
    every shed so callers can map it straight onto a ``Retry-After``
    header.
    """

    status: str
    shard_id: int
    source: int
    version: int = -1
    cached: bool = False
    values: list[list[float]] | None = None
    response_s: float = 0.0
    retry_after_s: float | None = None
    shed_reason: str | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True, slots=True)
class UpdateOutcome:
    """Result of one versioned broadcast: who acked version N."""

    version: int
    update: EdgeUpdate
    acked_shards: tuple[int, ...]
    skipped_shards: tuple[int, ...] = ()


@dataclass(slots=True)
class _ShardSlot:
    """Manager-side bookkeeping for one shard id."""

    handle: ShardHandle
    inflight: int = 0  # guarded-by: lock
    lock: threading.Lock = field(default_factory=threading.Lock)
    respawning: bool = False  # guarded-by: lock


class ShardManager:
    """Route queries and broadcast updates across shard workers."""

    def __init__(
        self,
        graph: "DynamicGraph",
        num_shards: int,
        *,
        backend: str = "process",
        router: str | Router = "hash",
        algorithm: str = "FORA",
        walk_cap: int = 2_000,
        seed: int = 0,
        engine: str = "scalar",
        epsilon_r: float = 0.0,
        workers_per_shard: int = 1,
        queue_capacity: int = 1_024,
        cache_epsilon: float | None = None,
        query_mode: str = "algorithm",
        use_controller: bool = False,
        max_inflight_per_shard: int = 64,
        auto_respawn: bool = True,
        start_timeout_s: float = 120.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if max_inflight_per_shard < 1:
            raise ValueError("max_inflight_per_shard must be >= 1")
        edges = tuple(sorted(graph.edges()))
        self._base_spec = ShardSpec(
            shard_id=0,
            num_shards=num_shards,
            num_nodes=graph.num_nodes,
            edges=edges,
            algorithm=algorithm,
            walk_cap=walk_cap,
            seed=seed,
            engine=engine,
            epsilon_r=epsilon_r,
            workers=workers_per_shard,
            queue_capacity=queue_capacity,
            cache_epsilon=cache_epsilon,
            query_mode=query_mode,
            use_controller=use_controller,
        )
        self.num_shards = num_shards
        self.backend = backend
        self.max_inflight_per_shard = max_inflight_per_shard
        self.auto_respawn = auto_respawn
        self._start_timeout_s = start_timeout_s
        self.router: Router = (
            router
            if isinstance(router, Router)
            else make_router(router, num_shards, graph.num_nodes)
        )
        if self.router.num_shards != num_shards:
            raise ValueError(
                f"router covers {self.router.num_shards} shards, "
                f"manager has {num_shards}"
            )
        self.metrics = metrics if metrics is not None else get_metrics()
        self._stopped = False  # guarded-by: self._update_lock
        # fabric-wide version assignment + log; held across the whole
        # broadcast so per-shard delivery order matches version order
        self._update_lock = wrap_mutex(
            threading.RLock(), "manager.updates"
        )
        self._update_log: list[EdgeUpdate] = []  # guarded-by: self._update_lock
        self._slots: list[_ShardSlot] = []
        for shard_id in range(num_shards):
            self._slots.append(
                _ShardSlot(handle=self._spawn(shard_id))
            )
        self._await_ready()
        self._publish_health_gauge()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spec_for(self, shard_id: int) -> ShardSpec:
        base = self._base_spec
        return ShardSpec(
            shard_id=shard_id,
            num_shards=base.num_shards,
            num_nodes=base.num_nodes,
            edges=base.edges,
            algorithm=base.algorithm,
            walk_cap=base.walk_cap,
            seed=base.seed,
            engine=base.engine,
            epsilon_r=base.epsilon_r,
            workers=base.workers,
            queue_capacity=base.queue_capacity,
            cache_epsilon=base.cache_epsilon,
            query_mode=base.query_mode,
            use_controller=base.use_controller,
        )

    def _spawn(self, shard_id: int) -> ShardHandle:
        handle = make_shard(self._spec_for(shard_id), self.backend)
        handle.on_death = self._on_shard_death
        return handle

    def _await_ready(self) -> None:
        deadline = perf_counter() + self._start_timeout_s
        for slot in self._slots:
            remaining = max(0.1, deadline - perf_counter())
            reply = slot.handle.health().result(remaining)
            if not reply.ok:  # pragma: no cover - worker init bug
                raise RuntimeError(
                    f"shard {slot.handle.shard_id} unhealthy at start: "
                    f"{reply.error}"
                )

    def stop(self, timeout_s: float = 30.0) -> None:
        """Stop every worker; the manager is unusable afterwards."""
        with self._update_lock:
            self._stopped = True
        for slot in self._slots:
            slot.handle.on_death = None
            slot.handle.stop(timeout_s)
        self._publish_health_gauge()

    def __enter__(self) -> "ShardManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        deadline_s: float | None = None,
        top_k: int | None = None,
    ) -> "Future[QueryOutcome]":
        """Route one query; always resolves (sheds resolve immediately)."""
        self.metrics.counter("shard.queries_routed").inc()
        shard_id = self.router.route(source)
        slot = self._slots[shard_id]
        outcome: "Future[QueryOutcome]" = Future()
        if not slot.handle.healthy:
            self.metrics.counter("shard.shed_unhealthy").inc()
            outcome.set_result(
                QueryOutcome(
                    status="shed",
                    shard_id=shard_id,
                    source=source,
                    shed_reason="shard-unhealthy",
                    retry_after_s=RETRY_AFTER_UNHEALTHY_S,
                )
            )
            return outcome
        with slot.lock:
            if slot.inflight >= self.max_inflight_per_shard:
                admitted = False
            else:
                slot.inflight += 1
                admitted = True
        if not admitted:
            self.metrics.counter("shard.shed_inflight").inc()
            outcome.set_result(
                QueryOutcome(
                    status="shed",
                    shard_id=shard_id,
                    source=source,
                    shed_reason="inflight-full",
                    retry_after_s=self._inflight_retry_hint(),
                )
            )
            return outcome
        self._publish_inflight_gauge()
        started = perf_counter()
        reply_future = slot.handle.query(source, deadline_s, top_k)

        def _finish(done: "Future[ShardReply]") -> None:
            with slot.lock:
                slot.inflight -= 1
            self._publish_inflight_gauge()
            self.metrics.histogram("shard.roundtrip").observe(
                perf_counter() - started
            )
            outcome.set_result(
                self._reply_to_outcome(done, shard_id, source)
            )

        reply_future.add_done_callback(_finish)
        return outcome

    def query_sync(
        self,
        source: int,
        deadline_s: float | None = None,
        top_k: int | None = None,
        timeout_s: float | None = None,
    ) -> QueryOutcome:
        return self.query(source, deadline_s, top_k).result(timeout_s)

    def _reply_to_outcome(
        self,
        done: "Future[ShardReply]",
        shard_id: int,
        source: int,
    ) -> QueryOutcome:
        try:
            reply = done.result()
        except ShardUnavailableError as exc:
            return QueryOutcome(
                status="unavailable",
                shard_id=shard_id,
                source=source,
                retry_after_s=RETRY_AFTER_UNHEALTHY_S,
                error=str(exc),
            )
        except Exception as exc:  # pragma: no cover - transport bug
            return QueryOutcome(
                status="failed",
                shard_id=shard_id,
                source=source,
                error=repr(exc),
            )
        payload = reply.payload
        if not reply.ok:
            return QueryOutcome(
                status="failed",
                shard_id=shard_id,
                source=source,
                error=reply.error,
            )
        status = str(payload.get("status", "failed"))
        retry_after = (
            self._inflight_retry_hint() if status == "shed" else None
        )
        raw_values = payload.get("values")
        values = (
            [list(pair) for pair in raw_values]
            if isinstance(raw_values, list)
            else None
        )
        return QueryOutcome(
            status=status,
            shard_id=shard_id,
            source=source,
            version=int(payload.get("version", -1)),  # type: ignore[call-overload]
            cached=bool(payload.get("cached", False)),
            values=values,
            response_s=float(payload.get("response_s", 0.0)),  # type: ignore[arg-type]
            retry_after_s=retry_after,
            shed_reason=(
                str(payload["shed_reason"])
                if payload.get("shed_reason") is not None
                else None
            ),
            error=reply.error,
        )

    def _inflight_retry_hint(self) -> float:
        """Retry hint from the observed round-trip distribution."""
        mean = self.metrics.histogram("shard.roundtrip").mean()
        if mean <= 0.0:
            return RETRY_AFTER_MIN_S
        hint = mean * self.max_inflight_per_shard
        return min(RETRY_AFTER_MAX_S, max(RETRY_AFTER_MIN_S, hint))

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update(
        self, u: int, v: int, kind: str = "toggle", timeout_s: float = 60.0
    ) -> UpdateOutcome:
        """Assign the next fabric version and broadcast to all shards.

        Blocks until every *healthy* shard acked admission of this
        version.  A shard that fails its ack is killed on the spot —
        its graph can no longer be trusted to match the fleet — and
        left to the respawn path, which replays the full log.
        """
        edge_update = EdgeUpdate(u, v, kind)
        self.metrics.counter("shard.updates_broadcast").inc()
        with self._update_lock:
            if self._stopped:
                raise RuntimeError("manager is stopped")
            self._update_log.append(edge_update)
            version = len(self._update_log)
            acked: list[int] = []
            skipped: list[int] = []
            pending: list[tuple[_ShardSlot, "Future[ShardReply]"]] = []
            for slot in self._slots:
                if not slot.handle.healthy:
                    skipped.append(slot.handle.shard_id)
                    continue
                pending.append(
                    (slot, slot.handle.update(version, edge_update))
                )
            for slot, ack in pending:
                shard_id = slot.handle.shard_id
                try:
                    reply = ack.result(timeout_s)
                except Exception:
                    slot.handle.kill()
                    skipped.append(shard_id)
                    continue
                if reply.ok:
                    acked.append(shard_id)
                else:
                    # worker refused (e.g. order fault) and is dying
                    skipped.append(shard_id)
        return UpdateOutcome(
            version=version,
            update=edge_update,
            acked_shards=tuple(acked),
            skipped_shards=tuple(skipped),
        )

    @property
    def fabric_version(self) -> int:
        """Number of updates the fabric has accepted (latest version)."""
        with self._update_lock:
            return len(self._update_log)

    # ------------------------------------------------------------------
    # crash handling / respawn
    # ------------------------------------------------------------------
    def _on_shard_death(self, handle: ShardHandle, reason: str) -> None:
        """Death callback — runs on a transport thread; must not block."""
        self._publish_health_gauge()
        if "order" in reason.lower():
            self.metrics.counter("shard.order_faults").inc()
        # racy read of the stop flag is fine: a respawn that loses the
        # race with stop() sees _stopped under the update lock and bails
        if self._stopped or not self.auto_respawn:
            return
        slot = self._slots[handle.shard_id]
        with slot.lock:
            if slot.respawning or slot.handle is not handle:
                return
            slot.respawning = True
        threading.Thread(
            target=self._respawn,
            args=(handle.shard_id,),
            name=f"shard-{handle.shard_id}-respawn",
            daemon=True,
        ).start()

    def _respawn(self, shard_id: int) -> None:
        """Replace a dead worker and replay the update log into it.

        Holds the update lock for the replay so no new version can be
        assigned mid-replay; the fresh worker re-enters the routing
        table exactly converged with the fleet.
        """
        slot = self._slots[shard_id]
        try:
            with self._update_lock:
                if self._stopped:
                    return
                handle = self._spawn(shard_id)
                try:
                    handle.health().result(self._start_timeout_s)
                    for version, edge_update in enumerate(
                        self._update_log, start=1
                    ):
                        reply = handle.update(version, edge_update).result(
                            60.0
                        )
                        if not reply.ok:  # pragma: no cover - replay bug
                            raise RuntimeError(
                                f"replay of v{version} refused: {reply.error}"
                            )
                except Exception:
                    handle.kill()
                    raise
                slot.handle = handle
                with slot.lock:
                    slot.inflight = 0
            self.metrics.counter("shard.respawns").inc()
            self._publish_health_gauge()
        finally:
            with slot.lock:
                slot.respawning = False

    # ------------------------------------------------------------------
    # health / metrics / reconfigure
    # ------------------------------------------------------------------
    def healthz(self, timeout_s: float = 5.0) -> dict[str, object]:
        """Fleet health: manager view plus a live probe of each worker."""
        shards: list[dict[str, object]] = []
        probes: list[tuple[_ShardSlot, "Future[ShardReply]" | None]] = []
        for slot in self._slots:
            probe = slot.handle.health() if slot.handle.healthy else None
            probes.append((slot, probe))
        healthy = 0
        for slot, probe in probes:
            info: dict[str, object] = {
                "shard_id": slot.handle.shard_id,
                "healthy": False,
                "inflight": slot.inflight,
            }
            if probe is not None:
                try:
                    reply = probe.result(timeout_s)
                    info.update(reply.payload)
                    info["healthy"] = bool(reply.ok)
                except Exception:
                    info["error"] = slot.handle.death_reason or "probe timeout"
            else:
                info["error"] = slot.handle.death_reason
            if info["healthy"]:
                healthy += 1
            shards.append(info)
        return {
            "healthy": healthy == self.num_shards,
            "num_shards": self.num_shards,
            "healthy_shards": healthy,
            "fabric_version": self.fabric_version,
            "shards": shards,
        }

    def metrics_snapshot(self, timeout_s: float = 5.0) -> dict[str, object]:
        """Manager metrics plus every reachable worker's snapshot."""
        probes = [
            (slot.handle.shard_id, slot.handle.metrics())
            for slot in self._slots
            if slot.handle.healthy
        ]
        workers: dict[str, object] = {}
        for shard_id, probe in probes:
            try:
                reply = probe.result(timeout_s)
            except Exception:
                continue
            if reply.ok:
                workers[str(shard_id)] = reply.payload
        return {
            "manager": self.metrics.snapshot(),
            "shards": workers,
        }

    def reconfigure(
        self, lambda_q: float, lambda_u: float, timeout_s: float = 60.0
    ) -> dict[str, object]:
        """Broadcast a QuotaController re-solve to every healthy shard."""
        self.metrics.counter("shard.reconfigurations").inc()
        probes = [
            (slot.handle.shard_id, slot.handle.reconfigure(lambda_q, lambda_u))
            for slot in self._slots
            if slot.handle.healthy
        ]
        results: dict[str, object] = {}
        for shard_id, probe in probes:
            try:
                reply = probe.result(timeout_s)
            except Exception as exc:
                results[str(shard_id)] = {"ok": False, "error": repr(exc)}
                continue
            results[str(shard_id)] = (
                dict(reply.payload)
                if reply.ok
                else {"ok": False, "error": reply.error}
            )
        return results

    # ------------------------------------------------------------------
    def healthy_shard_count(self) -> int:
        return sum(1 for slot in self._slots if slot.handle.healthy)

    def shard_handle(self, shard_id: int) -> ShardHandle:
        """Direct handle access (tests and failure injection)."""
        return self._slots[shard_id].handle

    def _publish_health_gauge(self) -> None:
        self.metrics.gauge("shard.healthy").set(
            float(self.healthy_shard_count())
        )

    def _publish_inflight_gauge(self) -> None:
        self.metrics.gauge("shard.inflight").set(
            float(sum(slot.inflight for slot in self._slots))
        )

    def __repr__(self) -> str:
        return (
            f"ShardManager(num_shards={self.num_shards}, "
            f"backend={self.backend!r}, "
            f"healthy={self.healthy_shard_count()})"
        )
