"""A dynamic directed graph with O(degree) edge inserts and deletes.

The graph is the substrate every PPR algorithm in this repository runs
on.  It is deliberately simple: integer node ids, adjacency lists in
both directions, and a set of edges for O(1) membership tests.  This
mirrors the in-memory representation used by the reference C++
implementations of FORA / Agenda (compressed adjacency arrays), while
staying idiomatic Python.

Conventions
-----------
* Self loops are allowed; parallel edges are not (the edge-arrival model
  of the paper toggles an edge's existence, so multiplicity is never
  needed).
* A *dangling* node (out-degree zero) is treated as if it had an
  implicit self loop.  For random walks this means the walk terminates
  at the node; for forward push the alpha-fraction of the residue is
  converted to reserve and the rest stays on the node.  All algorithms
  and the power-iteration ground truth share this convention so their
  outputs are comparable.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

#: log entries kept before the oldest half is discarded; derived views
#: older than the retained window fall back to a full rebuild
MAX_UPDATE_LOG = 65_536

# Update-log opcodes.  Each logged entry corresponds to exactly one
# version increment, so a consumer at version v catches up by replaying
# the entries for versions v+1 .. current.
ADD_EDGE = "+e"
REMOVE_EDGE = "-e"
ADD_NODE = "+n"
REMOVE_NODE = "-n"
RESET = "!"  # structure replaced wholesale (restore); forces rebuild


class DynamicGraph:
    """Directed graph supporting dynamic edge inserts and deletes.

    Parameters
    ----------
    num_nodes:
        If given, pre-creates nodes ``0 .. num_nodes - 1``.  Nodes are
        also created implicitly by :meth:`add_edge` / :meth:`add_node`.

    Examples
    --------
    >>> g = DynamicGraph()
    >>> g.add_edge(0, 1)
    True
    >>> g.add_edge(1, 2)
    True
    >>> g.out_degree(1)
    1
    >>> sorted(g.out_neighbors(0))
    [1]
    """

    __slots__ = (
        "_out",
        "_in",
        "_edges",
        "_version",
        "_log",
        "_log_base",
        "_csr_cache",
        "__weakref__",
    )

    def __init__(self, num_nodes: int = 0) -> None:
        self._out: dict[int, list[int]] = {v: [] for v in range(num_nodes)}
        self._in: dict[int, list[int]] = {v: [] for v in range(num_nodes)}
        self._edges: set[tuple[int, int]] = set()
        self._version = 0
        # structural update log: entry k records the mutation that took
        # the graph from version _log_base + k to _log_base + k + 1
        self._log: list[tuple[str, int, int]] = []
        self._log_base = 0
        # per-graph cache slot for the incremental CSR store (owned by
        # repro.ppr.csr; opaque here so the graph layer stays view-free)
        self._csr_cache: object | None = None

    @property
    def version(self) -> int:
        """Monotonic structure-change counter.

        Incremented by every mutation; used by cached derived views
        (e.g. the CSR arrays in :mod:`repro.ppr.csr`) to detect
        staleness without holding references into the graph.  Never
        decreases — :meth:`restore` moves it strictly forward, so a
        (graph, version) pair always denotes one unique structure.
        """
        return self._version

    def _record(self, op: str, u: int, v: int) -> None:
        """Append one update-log entry and bump the version counter."""
        self._log.append((op, u, v))
        self._version += 1
        if len(self._log) > MAX_UPDATE_LOG:
            drop = len(self._log) // 2
            del self._log[:drop]
            self._log_base += drop

    def updates_since(self, version: int) -> list[tuple[str, int, int]] | None:
        """Log entries taking the graph from ``version`` to the present.

        Returns None when ``version`` predates the retained log window
        (or lies in the future), in which case an incremental consumer
        must fall back to a full rebuild.
        """
        if version == self._version:
            return []
        if version < self._log_base or version > self._version:
            return None
        return self._log[version - self._log_base:]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int]], directed: bool = True
    ) -> "DynamicGraph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        When ``directed`` is False each pair inserts both directions,
        matching how the paper's undirected datasets (DBLP, Orkut) are
        handled by directed PPR algorithms.
        """
        graph = cls()
        for u, v in edges:
            graph.add_edge(u, v)
            if not directed:
                graph.add_edge(v, u)
        return graph

    def copy(self) -> "DynamicGraph":
        """Return an independent deep copy of this graph."""
        clone = DynamicGraph()
        clone._out = {v: list(nbrs) for v, nbrs in self._out.items()}
        clone._in = {v: list(nbrs) for v, nbrs in self._in.items()}
        clone._edges = set(self._edges)
        clone._version = self._version
        # the clone starts with a fresh log window and no cached views:
        # cached CSR state is per-graph-object and never shared
        clone._log_base = clone._version
        return clone

    def snapshot(self) -> "DynamicGraph":
        """Capture the current structure for a later :meth:`restore`."""
        return self.copy()

    def restore(self, snap: "DynamicGraph") -> None:
        """Replace this graph's structure with ``snap``'s.

        The version counter moves strictly *forward* past both graphs'
        counters instead of rewinding to the snapshot's value, so a
        derived view cached at some version can never be wrongly
        revalidated after the structure is rolled back (the classic
        stale-window bug of wrap-around version schemes).
        """
        self._out = {v: list(nbrs) for v, nbrs in snap._out.items()}
        self._in = {v: list(nbrs) for v, nbrs in snap._in.items()}
        self._edges = set(snap._edges)
        self._version = max(self._version, snap._version) + 1
        self._log = [(RESET, 0, 0)]
        self._log_base = self._version - 1
        self._csr_cache = None

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(self, v: int) -> bool:
        """Ensure node ``v`` exists.  Returns True if it was created."""
        if v in self._out:
            return False
        self._out[v] = []
        self._in[v] = []
        self._record(ADD_NODE, v, v)
        return True

    def remove_node(self, v: int) -> None:
        """Remove ``v`` and all its incident edges."""
        if v not in self._out:
            raise KeyError(f"node {v} not in graph")
        for w in list(self._out[v]):
            self.remove_edge(v, w)
        for u in list(self._in[v]):
            self.remove_edge(u, v)
        del self._out[v]
        del self._in[v]
        self._record(REMOVE_NODE, v, v)

    def has_node(self, v: int) -> bool:
        return v in self._out

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids (insertion order)."""
        return iter(self._out)

    @property
    def num_nodes(self) -> int:
        return len(self._out)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``(u, v)``.  Returns False if it already exists.

        Endpoints are created on demand, matching the paper's model
        where "the insert of a new node u is linked with an update
        ``(u, v)``".
        """
        if (u, v) in self._edges:
            return False
        self.add_node(u)
        self.add_node(v)
        self._edges.add((u, v))
        self._out[u].append(v)
        self._in[v].append(u)
        self._record(ADD_EDGE, u, v)
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)``.  Raises KeyError if absent."""
        if (u, v) not in self._edges:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        self._edges.remove((u, v))
        self._out[u].remove(v)
        self._in[v].remove(u)
        self._record(REMOVE_EDGE, u, v)

    def toggle_edge(self, u: int, v: int) -> bool:
        """Apply the paper's edge-arrival semantics.

        If ``(u, v)`` exists it is deleted, otherwise inserted
        (Section II-B).  Returns True if the edge was inserted, False
        if it was deleted.
        """
        if (u, v) in self._edges:
            self.remove_edge(u, v)
            return False
        self.add_edge(u, v)
        return True

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._edges

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over directed edges in arbitrary order."""
        return iter(self._edges)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------------
    # Neighborhood queries
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> list[int]:
        """The list of out-neighbors of ``v`` (do not mutate)."""
        return self._out[v]

    def in_neighbors(self, v: int) -> list[int]:
        """The list of in-neighbors of ``v`` (do not mutate)."""
        return self._in[v]

    def out_degree(self, v: int) -> int:
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        return len(self._in[v])

    def average_degree(self) -> float:
        """Mean out-degree m/n; the d-bar of the Reverse Push bound."""
        if not self._out:
            return 0.0
        return len(self._edges) / len(self._out)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if isinstance(item, tuple) and len(item) == 2:
            return item in self._edges
        if isinstance(item, int):
            return item in self._out
        return False

    def __len__(self) -> int:
        return len(self._out)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.num_nodes}, m={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicGraph):
            return NotImplemented
        return (
            self._edges == other._edges
            and self._out.keys() == other._out.keys()
        )

    def __hash__(self) -> int:  # graphs are mutable; identity hash only
        return id(self)
