"""A dynamic directed graph with O(degree) edge inserts and deletes.

The graph is the substrate every PPR algorithm in this repository runs
on.  It is deliberately simple: integer node ids, adjacency lists in
both directions, and a set of edges for O(1) membership tests.  This
mirrors the in-memory representation used by the reference C++
implementations of FORA / Agenda (compressed adjacency arrays), while
staying idiomatic Python.

Conventions
-----------
* Self loops are allowed; parallel edges are not (the edge-arrival model
  of the paper toggles an edge's existence, so multiplicity is never
  needed).
* A *dangling* node (out-degree zero) is treated as if it had an
  implicit self loop.  For random walks this means the walk terminates
  at the node; for forward push the alpha-fraction of the residue is
  converted to reserve and the rest stays on the node.  All algorithms
  and the power-iteration ground truth share this convention so their
  outputs are comparable.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class DynamicGraph:
    """Directed graph supporting dynamic edge inserts and deletes.

    Parameters
    ----------
    num_nodes:
        If given, pre-creates nodes ``0 .. num_nodes - 1``.  Nodes are
        also created implicitly by :meth:`add_edge` / :meth:`add_node`.

    Examples
    --------
    >>> g = DynamicGraph()
    >>> g.add_edge(0, 1)
    True
    >>> g.add_edge(1, 2)
    True
    >>> g.out_degree(1)
    1
    >>> sorted(g.out_neighbors(0))
    [1]
    """

    __slots__ = ("_out", "_in", "_edges", "_version", "__weakref__")

    def __init__(self, num_nodes: int = 0) -> None:
        self._out: dict[int, list[int]] = {v: [] for v in range(num_nodes)}
        self._in: dict[int, list[int]] = {v: [] for v in range(num_nodes)}
        self._edges: set[tuple[int, int]] = set()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic structure-change counter.

        Incremented by every mutation; used by cached derived views
        (e.g. the CSR arrays in :mod:`repro.ppr.csr`) to detect
        staleness without holding references into the graph.
        """
        return self._version

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int]], directed: bool = True
    ) -> "DynamicGraph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        When ``directed`` is False each pair inserts both directions,
        matching how the paper's undirected datasets (DBLP, Orkut) are
        handled by directed PPR algorithms.
        """
        graph = cls()
        for u, v in edges:
            graph.add_edge(u, v)
            if not directed:
                graph.add_edge(v, u)
        return graph

    def copy(self) -> "DynamicGraph":
        """Return an independent deep copy of this graph."""
        clone = DynamicGraph()
        clone._out = {v: list(nbrs) for v, nbrs in self._out.items()}
        clone._in = {v: list(nbrs) for v, nbrs in self._in.items()}
        clone._edges = set(self._edges)
        clone._version = self._version
        return clone

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(self, v: int) -> bool:
        """Ensure node ``v`` exists.  Returns True if it was created."""
        if v in self._out:
            return False
        self._out[v] = []
        self._in[v] = []
        self._version += 1
        return True

    def remove_node(self, v: int) -> None:
        """Remove ``v`` and all its incident edges."""
        if v not in self._out:
            raise KeyError(f"node {v} not in graph")
        for w in list(self._out[v]):
            self.remove_edge(v, w)
        for u in list(self._in[v]):
            self.remove_edge(u, v)
        del self._out[v]
        del self._in[v]
        self._version += 1

    def has_node(self, v: int) -> bool:
        return v in self._out

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids (insertion order)."""
        return iter(self._out)

    @property
    def num_nodes(self) -> int:
        return len(self._out)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``(u, v)``.  Returns False if it already exists.

        Endpoints are created on demand, matching the paper's model
        where "the insert of a new node u is linked with an update
        ``(u, v)``".
        """
        if (u, v) in self._edges:
            return False
        self.add_node(u)
        self.add_node(v)
        self._edges.add((u, v))
        self._out[u].append(v)
        self._in[v].append(u)
        self._version += 1
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)``.  Raises KeyError if absent."""
        if (u, v) not in self._edges:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        self._edges.remove((u, v))
        self._out[u].remove(v)
        self._in[v].remove(u)
        self._version += 1

    def toggle_edge(self, u: int, v: int) -> bool:
        """Apply the paper's edge-arrival semantics.

        If ``(u, v)`` exists it is deleted, otherwise inserted
        (Section II-B).  Returns True if the edge was inserted, False
        if it was deleted.
        """
        if (u, v) in self._edges:
            self.remove_edge(u, v)
            return False
        self.add_edge(u, v)
        return True

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._edges

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over directed edges in arbitrary order."""
        return iter(self._edges)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------------
    # Neighborhood queries
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> list[int]:
        """The list of out-neighbors of ``v`` (do not mutate)."""
        return self._out[v]

    def in_neighbors(self, v: int) -> list[int]:
        """The list of in-neighbors of ``v`` (do not mutate)."""
        return self._in[v]

    def out_degree(self, v: int) -> int:
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        return len(self._in[v])

    def average_degree(self) -> float:
        """Mean out-degree m/n; the d-bar of the Reverse Push bound."""
        if not self._out:
            return 0.0
        return len(self._edges) / len(self._out)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if isinstance(item, tuple) and len(item) == 2:
            return item in self._edges
        if isinstance(item, int):
            return item in self._out
        return False

    def __len__(self) -> int:
        return len(self._out)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.num_nodes}, m={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicGraph):
            return NotImplemented
        return (
            self._edges == other._edges
            and self._out.keys() == other._out.keys()
        )

    def __hash__(self) -> int:  # graphs are mutable; identity hash only
        return id(self)
