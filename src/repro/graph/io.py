"""Plain-text edge-list I/O (SNAP-style).

Format: one ``u v`` pair per line, ``#``-prefixed comment lines
ignored — the format of the public datasets in Table II of the paper,
so a user with access to e.g. soc-Pokec can drop it straight in.
"""

from __future__ import annotations

import os

from repro.graph.digraph import DynamicGraph


def load_edge_list(
    path: str | os.PathLike[str], directed: bool = True
) -> DynamicGraph:
    """Load a graph from a whitespace-separated edge list.

    Parameters
    ----------
    path:
        Text file with one ``u v`` integer pair per line.
    directed:
        When False every line also inserts the reverse edge, the way the
        paper treats its undirected datasets (DBLP, Orkut).
    """
    graph = DynamicGraph()
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_no}: expected 'u v', got {line!r}")
            u, v = int(parts[0]), int(parts[1])
            graph.add_edge(u, v)
            if not directed:
                graph.add_edge(v, u)
    return graph


def save_edge_list(graph: DynamicGraph, path: str | os.PathLike[str]) -> None:
    """Write ``graph`` as a sorted edge list with a size header comment."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u, v in sorted(graph.edges()):
            handle.write(f"{u} {v}\n")
