"""Dynamic directed graph substrate.

This subpackage implements the graph model of the paper: a directed graph
subject to a stream of edge updates, where an arriving edge ``(u, v)`` is
an *insert* if absent and a *delete* if present (Section II-B of the
paper).  It also provides synthetic generators used as stand-ins for the
paper's real datasets, and plain-text edge-list I/O.
"""

from repro.graph.digraph import DynamicGraph
from repro.graph.updates import EdgeUpdate, UpdateStream, random_update_stream
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    ring_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graph.io import load_edge_list, save_edge_list

__all__ = [
    "DynamicGraph",
    "EdgeUpdate",
    "UpdateStream",
    "random_update_stream",
    "barabasi_albert_graph",
    "complete_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "ring_graph",
    "star_graph",
    "watts_strogatz_graph",
    "load_edge_list",
    "save_edge_list",
]
