"""Synthetic graph generators.

The paper evaluates on six real graphs (Webs … Twitter, Table II).
Those datasets are not redistributable here, so the benchmarks use a
ladder of synthetic graphs with matching *relative* properties:

* ``barabasi_albert_graph`` — heavy-tailed degree distribution, the
  dominant shape of the paper's social/web graphs;
* ``erdos_renyi_graph`` — homogeneous control;
* ``watts_strogatz_graph`` — high clustering, small world;
* plus tiny deterministic graphs (star, ring, grid, complete) used by
  unit tests where exact PPR values are known or easy to reason about.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import random

from repro.graph.digraph import DynamicGraph


def erdos_renyi_graph(
    n: int,
    p: float | None = None,
    m: int | None = None,
    directed: bool = True,
    seed: int | None = None,
) -> DynamicGraph:
    """G(n, p) or G(n, m) random graph.

    Exactly one of ``p`` (edge probability) or ``m`` (edge count) must
    be given.  ``m``-mode samples edges without replacement, which is
    the natural way to hit a target |E| for a benchmark dataset.
    """
    if (p is None) == (m is None):
        raise ValueError("specify exactly one of p or m")
    rng = random.Random(seed)
    graph = DynamicGraph(num_nodes=n)
    if p is not None:
        for u in range(n):
            for v in range(n):
                if u != v and rng.random() < p:
                    graph.add_edge(u, v)
                    if not directed:
                        graph.add_edge(v, u)
        return graph
    max_edges = n * (n - 1)
    if m > max_edges:
        raise ValueError(f"m={m} exceeds the maximum {max_edges}")
    while graph.num_edges < (m if directed else 2 * m):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        graph.add_edge(u, v)
        if not directed:
            graph.add_edge(v, u)
    return graph


def barabasi_albert_graph(
    n: int,
    attach: int = 3,
    directed: bool = True,
    seed: int | None = None,
) -> DynamicGraph:
    """Preferential-attachment graph with ``attach`` edges per new node.

    Produces the power-law out/in-degree mix characteristic of the
    paper's datasets.  Directed mode points each new node at ``attach``
    existing nodes chosen preferentially and also adds the reverse edge
    with probability 0.5, giving a realistic (partially reciprocal)
    social-network shape.
    """
    if attach < 1:
        raise ValueError("attach must be >= 1")
    if n <= attach:
        raise ValueError("n must exceed attach")
    rng = random.Random(seed)
    graph = DynamicGraph(num_nodes=n)
    # Seed clique among the first attach+1 nodes.
    targets_pool: list[int] = []
    for u in range(attach + 1):
        for v in range(attach + 1):
            if u != v:
                graph.add_edge(u, v)
        targets_pool.extend([u] * attach)
    for u in range(attach + 1, n):
        chosen: set[int] = set()
        while len(chosen) < attach:
            chosen.add(rng.choice(targets_pool))
        for v in chosen:
            graph.add_edge(u, v)
            targets_pool.extend([u, v])
            if not directed or rng.random() < 0.5:
                graph.add_edge(v, u)
    return graph


def watts_strogatz_graph(
    n: int,
    k: int = 4,
    rewire_p: float = 0.1,
    seed: int | None = None,
) -> DynamicGraph:
    """Small-world ring lattice with random rewiring (undirected edges)."""
    if k % 2 or k >= n:
        raise ValueError("k must be even and < n")
    rng = random.Random(seed)
    graph = DynamicGraph(num_nodes=n)
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < rewire_p:
                v = rng.randrange(n)
                while v == u or graph.has_edge(u, v):
                    v = rng.randrange(n)
            graph.add_edge(u, v)
            graph.add_edge(v, u)
    return graph


def complete_graph(n: int) -> DynamicGraph:
    """K_n with both directions of every edge."""
    graph = DynamicGraph(num_nodes=n)
    for u in range(n):
        for v in range(n):
            if u != v:
                graph.add_edge(u, v)
    return graph


def star_graph(n: int) -> DynamicGraph:
    """Hub node 0 with spokes 1..n-1 (bidirectional)."""
    graph = DynamicGraph(num_nodes=n)
    for v in range(1, n):
        graph.add_edge(0, v)
        graph.add_edge(v, 0)
    return graph


def ring_graph(n: int, directed: bool = True) -> DynamicGraph:
    """Cycle 0 -> 1 -> ... -> n-1 -> 0."""
    graph = DynamicGraph(num_nodes=n)
    for u in range(n):
        graph.add_edge(u, (u + 1) % n)
        if not directed:
            graph.add_edge((u + 1) % n, u)
    return graph


def grid_graph(rows: int, cols: int) -> DynamicGraph:
    """rows x cols 4-neighbor lattice with bidirectional edges."""
    graph = DynamicGraph(num_nodes=rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                graph.add_edge(u, u + 1)
                graph.add_edge(u + 1, u)
            if r + 1 < rows:
                graph.add_edge(u, u + cols)
                graph.add_edge(u + cols, u)
    return graph
