"""Edge update streams for the paper's edge-arrival model.

Section II-B: updates ``S_u = {e_1, e_2, ...}`` arrive stochastically;
the i-th update ``e_i = (u, v)`` transforms ``G_{i-1}`` into ``G_i`` —
as a *delete* if the edge currently exists, else as an *insert*.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.graph.digraph import DynamicGraph


@dataclass(frozen=True, slots=True)
class EdgeUpdate:
    """One edge arrival.

    ``kind`` records the *resolved* operation ("insert" or "delete")
    once applied; before application it may be "toggle", the paper's
    default semantics.
    """

    u: int
    v: int
    kind: str = "toggle"

    def apply(self, graph: DynamicGraph) -> "EdgeUpdate":
        """Apply this update to ``graph`` and return the resolved update.

        * ``toggle`` — insert if absent, delete if present.
        * ``insert`` / ``delete`` — explicit; a no-op insert of an
          existing edge or delete of a missing edge raises ValueError
          so silent divergence between a workload script and the graph
          state is caught early.
        """
        if self.kind == "toggle":
            inserted = graph.toggle_edge(self.u, self.v)
            return EdgeUpdate(self.u, self.v, "insert" if inserted else "delete")
        if self.kind == "insert":
            if not graph.add_edge(self.u, self.v):
                raise ValueError(f"edge ({self.u}, {self.v}) already present")
            return self
        if self.kind == "delete":
            graph.remove_edge(self.u, self.v)
            return self
        raise ValueError(f"unknown update kind: {self.kind!r}")


class UpdateStream:
    """A replayable sequence of edge updates.

    Wraps a list of :class:`EdgeUpdate` and applies them one at a time,
    keeping a cursor so callers (e.g. the queue simulator) can interleave
    updates with queries exactly as they arrive.
    """

    def __init__(self, updates: Sequence[EdgeUpdate]):
        self._updates = list(updates)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self._updates)

    def __getitem__(self, index: int) -> EdgeUpdate:
        return self._updates[index]

    @property
    def remaining(self) -> int:
        return len(self._updates) - self._cursor

    def apply_next(self, graph: DynamicGraph) -> EdgeUpdate | None:
        """Apply the next pending update to ``graph``; None when drained."""
        if self._cursor >= len(self._updates):
            return None
        resolved = self._updates[self._cursor].apply(graph)
        self._cursor += 1
        return resolved

    def apply_all(self, graph: DynamicGraph) -> list[EdgeUpdate]:
        """Apply every remaining update; returns the resolved updates."""
        resolved = []
        while (update := self.apply_next(graph)) is not None:
            resolved.append(update)
        return resolved

    def reset(self) -> None:
        """Rewind the cursor (the caller must supply a fresh graph)."""
        self._cursor = 0


def random_update_stream(
    graph: DynamicGraph,
    count: int,
    rng: random.Random | None = None,
) -> UpdateStream:
    """Generate ``count`` toggle updates with endpoints uniform over V.

    This matches the experimental setup of Section VIII-B: "each update
    (u, v) selects the two nodes u and v randomly from V_i".  The node
    set used is the *initial* node set of ``graph`` (updates never
    introduce brand-new nodes here, as in the paper's experiments).
    """
    rng = rng or random.Random()
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise ValueError("need at least two nodes to generate updates")
    updates = []
    for _ in range(count):
        u, v = rng.sample(nodes, 2)
        updates.append(EdgeUpdate(u, v, "toggle"))
    return UpdateStream(updates)
