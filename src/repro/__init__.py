"""Quota: QoS-aware Personalized PageRank over dynamic graphs.

A from-scratch reproduction of "Personalized PageRanks over Dynamic
Graphs — The Case for Optimizing Quality of Service" (ICDE 2024).

Layout
------
``repro.graph``
    Dynamic directed graph, generators, edge-update streams.
``repro.ppr``
    Base PPR algorithms (FORA/+, SpeedPPR/+, Agenda, ResAcc,
    FORA-TopK, TopPPR) plus push primitives and the exact oracle.
``repro.queueing``
    Arrival processes, workloads, queueing theory, FCFS simulator.
``repro.core``
    The paper's contribution: cost models, tau calibration, Augmented
    Lagrangian optimization, the Quota controller, Seed reordering,
    and the end-to-end QuotaSystem.
``repro.obs``
    Observability: counters, timers, per-operation service-time
    histograms shared by the CSR layer, serving loop and benchmarks.
``repro.baselines``
    Grid / Random / Bayesian hyperparameter search competitors.
``repro.evaluation``
    Dataset recipes, the experiment runner, metrics, and report
    formatting used by the ``benchmarks/`` reproduction suite.

Quickstart
----------
>>> from repro.graph import barabasi_albert_graph
>>> from repro.ppr import Agenda, PPRParams
>>> from repro.core import QuotaController, QuotaSystem, calibrated_cost_model
>>> from repro.queueing import generate_workload
>>> graph = barabasi_albert_graph(500, attach=3, seed=7)
>>> algorithm = Agenda(graph, PPRParams(walk_cap=2000))
>>> controller = QuotaController(calibrated_cost_model(algorithm, rng=0))
>>> system = QuotaSystem(algorithm, controller)
>>> _ = system.configure_static(lambda_q=10, lambda_u=20)
>>> workload = generate_workload(graph, 10, 20, 5.0, rng=1)
>>> result = system.process(workload)
>>> result.mean_query_response_time() >= 0.0
True
"""

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "core",
    "evaluation",
    "graph",
    "obs",
    "ppr",
    "queueing",
]
