"""Exactness oracle: every cache-served answer stays within budget.

The invalidation contract promises that a cached vector served under
staleness budget ``epsilon_c`` lies within ``epsilon_c`` (normalized
L1) of a fresh recompute on the *applied-updates* graph, plus the base
algorithm's own error.  Serving through an exact power-iteration
algorithm makes the second term ~0, so any violation here indicts the
staleness accounting itself — the safety-scaled Lemma-2 charge, the
charge-inside-the-critical-section ordering, or the eviction threshold.

The fast test runs one configuration; the stress-marked sweep crosses
seeds x epsilon_c x epsilon_r (Seed deferral interleaves flush-charged
batches with direct applies, the orderings most likely to drop a
charge).
"""

import numpy as np
import pytest

from repro.cache import PPRCache
from repro.core.system import QuotaSystem
from repro.graph import erdos_renyi_graph
from repro.obs import MetricsRegistry
from repro.ppr import ppr_exact
from repro.ppr.base import DynamicPPRAlgorithm, PPRParams, PPRVector
from repro.queueing import generate_workload
from repro.queueing.workload import QUERY, Request, Workload


class ExactPPR(DynamicPPRAlgorithm):
    """Deterministic oracle algorithm: exact PPR, toggle updates."""

    name = "exact"

    def query(self, source: int) -> PPRVector:
        return ppr_exact(self.graph, source, alpha=self.params.alpha)

    def apply_update(self, update):
        return update.apply(self.graph)


def l1_distance(served: PPRVector, fresh: PPRVector) -> float:
    """Normalized L1 between two PPR vectors (each sums to ~1)."""
    nodes = set(served.as_dict()) | set(fresh.as_dict())
    return float(
        sum(abs(served.get(n, 0.0) - fresh.get(n, 0.0)) for n in nodes)
    )


def run_oracle(seed: int, epsilon_c: float, epsilon_r: float):
    """Replay a mixed workload; compare every served answer to fresh.

    Returns (violations, worst_ratio, hits) where ``worst_ratio`` is
    the largest observed drift / epsilon_c and ``hits`` the number of
    cache-served queries (the oracle is vacuous without hits).
    """
    graph = erdos_renyi_graph(60, 360, directed=True, seed=seed)
    algorithm = ExactPPR(graph, PPRParams(alpha=0.2))
    metrics = MetricsRegistry()
    cache = PPRCache(capacity=128, epsilon_c=epsilon_c, metrics=metrics)
    system = QuotaSystem(
        algorithm, epsilon_r=epsilon_r, cache=cache, metrics=metrics
    )
    # skew the query sources so the same entries get re-served while
    # the update stream charges them
    rng = np.random.default_rng(seed)
    base = generate_workload(graph, 30.0, 15.0, 4.0, rng=seed + 1)
    hot = np.arange(8)
    requests = [
        Request(r.arrival, QUERY, source=int(rng.choice(hot)))
        if r.kind == QUERY and rng.random() < 0.7
        else r
        for r in base.requests
    ]
    workload = Workload(requests, base.t_end, base.lambda_q, base.lambda_u)

    violations = []
    worst = 0.0

    def callback(request, estimate, pending):
        nonlocal worst
        fresh = ppr_exact(graph, request.source, alpha=0.2)
        drift = l1_distance(estimate, fresh)
        worst = max(worst, drift / epsilon_c)
        if drift > epsilon_c + 1e-9:
            violations.append((request.source, drift))

    system.process(workload, query_callback=callback)
    return violations, worst, metrics.counter("cache.hits").value


def test_oracle_fast():
    violations, worst, hits = run_oracle(seed=3, epsilon_c=0.3, epsilon_r=0.0)
    assert hits > 0  # the oracle actually exercised cached serves
    assert violations == []
    assert worst <= 1.0


@pytest.mark.stress
@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("epsilon_c", [0.05, 0.2, 0.5])
@pytest.mark.parametrize("epsilon_r", [0.0, 0.5])
def test_oracle_stress(seed, epsilon_c, epsilon_r):
    """Zero violations across seeds x budgets x Seed-deferral modes."""
    violations, worst, hits = run_oracle(seed, epsilon_c, epsilon_r)
    assert violations == [], (
        f"{len(violations)} answers drifted past epsilon_c={epsilon_c}: "
        f"worst ratio {worst:.2f}"
    )
